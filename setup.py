"""Setup shim: lets ``pip install -e .`` work without the wheel package
(the offline environment has setuptools but no bdist_wheel)."""

from setuptools import setup

setup()
