"""repro — a reproduction of Rosenblum & Ousterhout's log-structured file
system (SOSP 1991).

The package provides:

- ``repro.core`` — Sprite LFS itself (segments, cleaner, checkpoints,
  roll-forward) on a simulated disk;
- ``repro.disk`` — the simulated block device with a seek/rotation/transfer
  service-time model;
- ``repro.ffs`` — a Unix FFS-style baseline on the same disk;
- ``repro.simulator`` — the Section 3.5 cleaning-policy simulator;
- ``repro.workloads`` — benchmark workload generators for the paper's
  figures and tables;
- ``repro.analysis`` — figure/table regeneration helpers.

Quickstart::

    from repro import Disk, LFS

    disk = Disk()
    fs = LFS.format(disk)
    fs.write_file("/hello.txt", b"hello, log-structured world")
    print(fs.read("/hello.txt"))
"""

from repro.core import LFS, CleaningPolicy, LFSConfig
from repro.disk import Disk, DiskGeometry
from repro.vfs import FileHandle, FileSystemView

__version__ = "1.0.0"

__all__ = [
    "LFS",
    "CleaningPolicy",
    "Disk",
    "DiskGeometry",
    "FileHandle",
    "FileSystemView",
    "LFSConfig",
    "__version__",
]
