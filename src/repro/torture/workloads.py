"""Seeded workload scripts for the torture recorder.

Each script drives a :class:`~repro.torture.record.TortureRecorder` through
a deterministic sequence of operations, chosen to stress a different part
of the crash-recovery machinery:

* ``smallfile`` — the paper's metadata-heavy pattern: many small files
  across a few directories, with interleaved syncs, checkpoints,
  overwrites, deletes, and an unsynced tail.
* ``largefile`` — one big file grown by sequential appends and then hit
  with random-offset overwrites, exercising indirect blocks in recovery.
* ``andrew`` — a namespace workout: nested directories, copies, renames,
  and hard links, exercising directory-log replay.
* ``checkpoint`` — a checkpoint every couple of small operations, so a
  large share of crash points land *inside* checkpoint-region writes.
* ``cleaning`` — heavy overwrite churn against low watermarks plus
  explicit cleaner invocations, so crash points land mid-cleaning.

Every script takes only a seed, uses its own ``random.Random``, and issues
only operations that are valid in the current namespace — so the recorder's
model and the real file system never diverge.
"""

from __future__ import annotations

import random

from repro.core.config import LFSConfig
from repro.disk.geometry import DiskGeometry, FlashGeometry
from repro.torture.record import Recording, TortureRecorder

WORKLOADS = ("smallfile", "largefile", "andrew", "checkpoint", "cleaning", "syncheavy")

#: Small device (16 MB) so replaying thousands of crash points stays cheap.
_TORTURE_BLOCKS = 4096


def _config(**overrides) -> LFSConfig:
    defaults = dict(
        segment_bytes=128 * 1024,
        max_inodes=512,
        clean_low_water=4,
        clean_high_water=8,
        reserved_segments=3,
        segments_per_pass=4,
        write_buffer_blocks=16,  # flush often: more, smaller partial writes
        checkpoint_interval=0.0,
        cache_blocks=1024,
    )
    defaults.update(overrides)
    return LFSConfig(**defaults)


def _recorder(
    workload: str,
    seed: int,
    *,
    num_blocks: int = _TORTURE_BLOCKS,
    flash: bool = False,
    nvram: bool = False,
    **config_overrides,
) -> TortureRecorder:
    if flash:
        # Flash torture runs the whole flash stack: erase-block-aligned
        # layout (32-block segments, 64-block erase blocks -> 2 segments
        # per EB), hot/cold segregation, and the wear-leveling nudge —
        # so crash points land inside TRIM/erase/cold-cursor machinery.
        geometry: DiskGeometry = FlashGeometry.nand(
            num_blocks=num_blocks, erase_block_blocks=64
        )
        config_overrides.setdefault("hot_cold_segregation", True)
        config_overrides.setdefault("wear_leveling", True)
    else:
        geometry = DiskGeometry.wren4(num_blocks=num_blocks)
    return TortureRecorder(
        _config(**config_overrides),
        geometry,
        workload=workload,
        seed=seed,
        nvram=nvram,
    )


def _payload(rng: random.Random, size: int) -> bytes:
    # One random prefix byte + a counted pattern: cheap to generate, and
    # any splice of two different payloads is detectable.
    tag = rng.randrange(256)
    return bytes((tag + i) % 256 for i in range(size))


def record_smallfile(seed: int, *, flash: bool = False, nvram: bool = False) -> Recording:
    rng = random.Random(seed)
    rec = _recorder("smallfile", seed, flash=flash, nvram=nvram)
    dirs = []
    for i in range(4):
        path = f"/d{i}"
        rec.mkdir(path)
        dirs.append(path)
    live: list[str] = []
    for n in range(60):
        d = rng.choice(dirs)
        path = f"{d}/f{n}"
        rec.write(path, _payload(rng, rng.randrange(256, 3072)))
        live.append(path)
        roll = rng.random()
        if roll < 0.2 and live:
            victim = live.pop(rng.randrange(len(live)))
            rec.unlink(victim)
        elif roll < 0.4 and live:
            rec.write(rng.choice(live), _payload(rng, rng.randrange(256, 2048)))
        elif roll < 0.5 and live:
            rec.append(rng.choice(live), _payload(rng, rng.randrange(64, 512)))
        if n % 8 == 7:
            rec.sync()
        if n % 20 == 19:
            rec.checkpoint()
    # Leave an unsynced tail so late crash points exercise the
    # may-be-lost half of the oracle.
    for n in range(5):
        rec.write(f"/d0/tail{n}", _payload(rng, 512))
    return rec.finish()


def record_largefile(seed: int, *, flash: bool = False, nvram: bool = False) -> Recording:
    rng = random.Random(seed)
    rec = _recorder("largefile", seed, flash=flash, nvram=nvram)
    path = "/big"
    rec.write(path, _payload(rng, 8192))
    size = 8192
    for n in range(40):
        chunk = rng.randrange(4096, 12288)
        rec.append(path, _payload(rng, chunk))
        size += chunk
        if n % 6 == 5:
            rec.sync()
        if n % 15 == 14:
            rec.checkpoint()
    rec.sync()
    for _ in range(12):
        off = rng.randrange(0, size - 4096)
        rec.update(path, _payload(rng, rng.randrange(512, 4096)), off)
        if rng.random() < 0.4:
            rec.sync()
    rec.append(path, _payload(rng, 2048))  # unsynced tail
    return rec.finish()


def record_andrew(seed: int, *, flash: bool = False, nvram: bool = False) -> Recording:
    rng = random.Random(seed)
    rec = _recorder("andrew", seed, flash=flash, nvram=nvram)
    rec.mkdir("/src")
    rec.mkdir("/src/lib")
    rec.mkdir("/src/cmd")
    rec.mkdir("/obj")
    sources = []
    for n in range(20):
        d = rng.choice(["/src", "/src/lib", "/src/cmd"])
        path = f"{d}/file{n}.c"
        rec.write(path, _payload(rng, rng.randrange(512, 4096)))
        sources.append(path)
    rec.sync()
    # "Copy" phase: read sources, write objects, with renames and links.
    for n, src in enumerate(sources):
        rec.write(f"/obj/file{n}.o", _payload(rng, rng.randrange(256, 2048)))
        roll = rng.random()
        if roll < 0.2:
            new = f"/obj/file{n}.keep"
            rec.rename(f"/obj/file{n}.o", new)
        elif roll < 0.35:
            rec.link(src, f"/obj/file{n}.lnk")
        if n % 7 == 6:
            rec.sync()
        if n % 11 == 10:
            rec.checkpoint()
    # Scan-and-delete phase.
    for n in range(0, 20, 3):
        rec.unlink(sources[n])
    rec.checkpoint()
    rec.write("/obj/final", _payload(rng, 1024))  # unsynced tail
    return rec.finish()


def record_checkpoint(seed: int, *, flash: bool = False, nvram: bool = False) -> Recording:
    """Checkpoint every 2–3 small ops: cuts land mid-checkpoint-write."""
    rng = random.Random(seed)
    rec = _recorder("checkpoint", seed, flash=flash, nvram=nvram)
    rec.mkdir("/cp")
    since = 0
    for n in range(45):
        rec.write(f"/cp/f{n % 12}", _payload(rng, rng.randrange(128, 1024)))
        since += 1
        if since >= rng.randrange(2, 4):
            rec.checkpoint()
            since = 0
    return rec.finish()


def record_cleaning(seed: int, *, flash: bool = False, nvram: bool = False) -> Recording:
    """Overwrite churn against low watermarks, crashing mid-cleaning.

    Runs on a deliberately tiny device (15 segments) so the overwrite
    churn drives clean-segment count below the watermarks and the cleaner
    genuinely runs — both from explicit ``clean`` calls and on its own
    during flushes.
    """
    rng = random.Random(seed)
    rec = _recorder(
        "cleaning", seed, num_blocks=512, flash=flash, nvram=nvram,
        clean_low_water=4, clean_high_water=7,
    )
    rec.mkdir("/churn")
    paths = [f"/churn/f{i}" for i in range(12)]
    for path in paths:
        rec.write(path, _payload(rng, rng.randrange(4096, 8192)))
    rec.sync()
    for round_ in range(16):
        for path in rng.sample(paths, 6):
            rec.write(path, _payload(rng, rng.randrange(4096, 8192)))
        if round_ % 2 == 0:
            rec.sync()
        rec.clean()
        if round_ % 3 == 2:
            rec.checkpoint()
    rec.write("/churn/tail", _payload(rng, 1024))  # unsynced tail
    return rec.finish()


def record_syncheavy(seed: int, *, flash: bool = False, nvram: bool = True) -> Recording:
    """Mail-server / database-commit pattern: small synchronous writes.

    The paper's Section 5.1 worst case: most operations are sub-kilobyte
    overwrites inside a handful of small files, each commit acknowledged
    with an ``fsync`` — the workload NVM staging exists to absorb. Every
    namespace operation (create, unlink, rename) is fsynced immediately,
    so at most one namespace change is ever unacknowledged; content
    writes batch one to three per commit like a group-committing
    database. Records two-domain by default (``nvram=True``): crash cuts
    land between and *inside* staging-record appends as well as disk
    blocks.
    """
    rng = random.Random(seed)
    rec = _recorder("syncheavy", seed, flash=flash, nvram=nvram)
    rec.mkdir("/db")
    rec.fsync("/db")
    rec.mkdir("/mail")
    rec.fsync("/mail")
    tables = []
    for i in range(4):
        path = f"/db/table{i}"
        rec.write(path, _payload(rng, rng.randrange(2048, 6144)))
        rec.fsync(path)  # creation is a namespace op: acknowledge it now
        tables.append(path)
    mailseq = 0
    mailbox: list[str] = []
    for round_ in range(30):
        # -- database commits: 1-3 small in-place updates, then fsync
        table = rng.choice(tables)
        for _ in range(rng.randrange(1, 4)):
            size = len(rec.model.contents(table))
            off = rng.randrange(0, max(1, size - 700))
            rec.update(table, _payload(rng, rng.randrange(100, 700)), off)
        if rng.random() < 0.25:
            rec.append(table, _payload(rng, rng.randrange(100, 500)))
        rec.fsync(table)
        # -- mail delivery: new message files, fsynced per message
        roll = rng.random()
        if roll < 0.4:
            path = f"/mail/msg{mailseq}"
            mailseq += 1
            rec.write(path, _payload(rng, rng.randrange(300, 1500)))
            rec.fsync(path)
            mailbox.append(path)
        elif roll < 0.55 and mailbox:
            victim = mailbox.pop(rng.randrange(len(mailbox)))
            rec.unlink(victim)
            rec.fsync("/mail")
        elif roll < 0.65 and mailbox:
            src = mailbox.pop(rng.randrange(len(mailbox)))
            dst = src + ".read"
            rec.rename(src, dst)
            rec.fsync("/mail")
            mailbox.append(dst)
        if round_ % 10 == 9:
            rec.checkpoint()
    # Unacknowledged tail: one in-flight commit the crash may legally lose.
    rec.update(tables[0], _payload(rng, 256), 0)
    return rec.finish()


_RECORDERS = {
    "smallfile": record_smallfile,
    "largefile": record_largefile,
    "andrew": record_andrew,
    "checkpoint": record_checkpoint,
    "cleaning": record_cleaning,
    "syncheavy": record_syncheavy,
}


def record_workload(
    workload: str, seed: int, *, flash: bool = False, nvram: bool = False
) -> Recording:
    """Run one named workload under recording; returns the bundle.

    ``flash`` records the same operation script against the NAND profile
    (erase-aware device, hot/cold segregation, wear leveling) instead of
    the Wren IV. ``nvram`` attaches the NVM staging board, producing a
    two-domain recording (crash cuts then count disk blocks *and* NVM
    appends).
    """
    try:
        fn = _RECORDERS[workload]
    except KeyError:
        raise ValueError(
            f"unknown torture workload {workload!r} (want one of {WORKLOADS})"
        ) from None
    return fn(seed, flash=flash, nvram=nvram)
