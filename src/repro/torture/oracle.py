"""The durability oracle: what recovery must keep and what it may lose.

The paper's recovery contract (Section 4) splits every byte of state into
two classes at the moment of a crash:

* **guaranteed durable** — everything the file system had confirmed at the
  last completed durability barrier (a ``sync``, ``checkpoint``, or
  ``unmount`` that returned before the crash point). Recovery must
  reproduce this state exactly: checkpointed state comes back via the
  checkpoint region, synced-but-not-checkpointed state via roll-forward.
* **legally losable** — operations issued after that barrier. They lived
  (at least partly) in the write-back cache, so recovery may surface the
  pre-barrier state, the post-operation state, or any intermediate
  operation boundary — but never bytes that were *never* the file's
  content, and never files that were never created.

``ModelFS`` shadows the real file system at the operation level (paths,
hard-link identity, whole-file contents), and :func:`crash_state_bounds`
turns a recorded operation log plus a crash point into the two bounds.
:func:`verify_recovered` then flags any recovered image that violates
either bound — lost durable data, resurrected deletes older than the
barrier, fabricated contents, or phantom files.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Marker value for a directory in model views (file contents are bytes,
#: so the types can never collide).
DIR = "<dir>"

#: Marker for "path does not exist" in acceptable-state sets.
ABSENT = None


@dataclass
class OpRecord:
    """One recorded file-system operation.

    ``start_blocks`` is the device's cumulative block-write count when the
    operation began: a crash that persists ``c`` blocks can only have been
    influenced by operations with ``start_blocks < c`` (anything later had
    not issued its first write yet).
    """

    kind: str  # mkdir | write | append | update | unlink | rename | link | sync | fsync | checkpoint | clean
    path: str = ""
    path2: str = ""
    data: bytes = b""
    offset: int = 0
    start_blocks: int = 0


@dataclass
class Barrier:
    """A completed durability point in the recorded stream.

    Everything the model held when the device had persisted
    ``blocks`` writes is guaranteed to survive any crash at or past that
    count.
    """

    op_index: int  # index of the sync/checkpoint op (-1 = the format itself)
    blocks: int  # device block-write count when the barrier completed
    paths: dict[str, int] = field(default_factory=dict)
    files: dict[int, object] = field(default_factory=dict)


class ModelFS:
    """An operation-level shadow of the real file system.

    Paths map to file identities so hard links alias correctly; file
    identities map to whole contents (or the :data:`DIR` marker). The
    model is deliberately simple — the torture workloads only use
    operations it can mirror exactly.
    """

    def __init__(self) -> None:
        self.paths: dict[str, int] = {"/": 0}
        self.files: dict[int, object] = {0: DIR}
        self._next_id = 1

    @classmethod
    def from_barrier(cls, barrier: Barrier) -> "ModelFS":
        model = cls()
        model.paths = dict(barrier.paths)
        model.files = dict(barrier.files)
        model._next_id = max(model.files, default=0) + 1
        return model

    def snapshot(self, op_index: int, blocks: int) -> Barrier:
        return Barrier(
            op_index=op_index,
            blocks=blocks,
            paths=dict(self.paths),
            files=dict(self.files),
        )

    def view(self) -> dict[str, object]:
        """The namespace as ``path -> contents-or-DIR``."""
        return {p: self.files[i] for p, i in self.paths.items()}

    def contents(self, path: str) -> object:
        return self.files[self.paths[path]]

    def _aliases(self, fid: int) -> list[str]:
        return [p for p, i in self.paths.items() if i == fid]

    def apply(self, op: OpRecord) -> list[str]:
        """Apply one operation; returns every path whose view changed.

        A write through one name of a hard-linked file changes the
        contents seen through every other name, so all aliases count as
        touched.
        """
        kind = op.kind
        if kind == "mkdir":
            fid = self._next_id
            self._next_id += 1
            self.files[fid] = DIR
            self.paths[op.path] = fid
            return [op.path]
        if kind in ("write", "append", "update"):
            fid = self.paths.get(op.path)
            if fid is None:
                fid = self._next_id
                self._next_id += 1
                self.files[fid] = b""
                self.paths[op.path] = fid
            old = self.files[fid]
            if kind == "write":
                new = op.data
            elif kind == "append":
                new = old + op.data
            else:  # update: overwrite at offset, zero-extending a short file
                base = old
                if len(base) < op.offset:
                    base = base + bytes(op.offset - len(base))
                new = base[: op.offset] + op.data + base[op.offset + len(op.data) :]
            self.files[fid] = new
            return self._aliases(fid)
        if kind == "unlink":
            del self.paths[op.path]
            return [op.path]
        if kind == "rename":
            fid = self.paths.pop(op.path)
            self.paths[op.path2] = fid
            return [op.path, op.path2]
        if kind == "link":
            self.paths[op.path2] = self.paths[op.path]
            return [op.path2]
        if kind in ("sync", "fsync", "checkpoint", "clean"):
            return []
        raise ValueError(f"unknown op kind {kind!r}")


def crash_state_bounds(
    ops: list[OpRecord], barriers: list[Barrier], cut_blocks: int
) -> tuple[dict[str, object], dict[str, set], set[str]]:
    """Durability bounds for a crash that persisted ``cut_blocks`` writes.

    Returns ``(guaranteed, acceptable, touched)``:

    * ``guaranteed`` — the namespace at the last barrier whose writes all
      fall inside the persisted prefix; paths *not* in ``touched`` must
      come back exactly like this.
    * ``acceptable`` — per path, every value recovery may legally surface
      (the guaranteed value plus each post-barrier operation boundary;
      :data:`ABSENT` where a disappearance is legal).
    * ``touched`` — paths some possibly-persisted post-barrier operation
      affected.
    """
    barrier = barriers[0]
    for b in barriers:
        if b.blocks <= cut_blocks:
            barrier = b
        else:
            break
    model = ModelFS.from_barrier(barrier)
    guaranteed = model.view()
    acceptable: dict[str, set] = {p: {v} for p, v in guaranteed.items()}
    touched: set[str] = set()
    for op in ops[barrier.op_index + 1 :]:
        if op.start_blocks >= cut_blocks:
            break
        for path in model.apply(op):
            touched.add(path)
            current = (
                model.contents(path) if path in model.paths else ABSENT
            )
            acceptable.setdefault(path, set()).add(current)
    return guaranteed, acceptable, touched


def verify_recovered(
    recovered: dict[str, object],
    guaranteed: dict[str, object],
    acceptable: dict[str, set],
    touched: set[str],
) -> list[str]:
    """Check a recovered namespace against the oracle's bounds.

    Returns violation messages (empty = the recovery honored both the
    must-survive and may-be-lost bounds).
    """

    def show(value: object) -> str:
        if value is ABSENT:
            return "<absent>"
        if value == DIR:
            return "<dir>"
        assert isinstance(value, bytes)
        head = value[:16]
        return f"{len(value)} bytes {head!r}{'...' if len(value) > 16 else ''}"

    violations: list[str] = []
    for path, must in guaranteed.items():
        got = recovered.get(path, ABSENT)
        if path not in touched:
            if got is ABSENT:
                violations.append(f"durable {path} lost (was {show(must)})")
            elif got != must:
                violations.append(
                    f"durable {path} corrupted: expected {show(must)}, got {show(got)}"
                )
        else:
            allowed = acceptable.get(path, {must})
            if got is ABSENT and ABSENT not in allowed:
                violations.append(
                    f"{path} lost but no post-barrier operation removed it"
                )
            elif got is not ABSENT and got not in allowed:
                violations.append(
                    f"{path} holds {show(got)}, which was never an operation "
                    f"boundary state"
                )
    for path, allowed in acceptable.items():
        if path in guaranteed:
            continue  # already checked above
        got = recovered.get(path, ABSENT)
        # Created after the barrier: losing it is legal, but surfacing a
        # value it never held is not.
        if got is not ABSENT and got not in allowed:
            violations.append(
                f"post-barrier {path} holds {show(got)}, never a real state"
            )
    known = set(guaranteed) | set(acceptable)
    for path in recovered:
        if path not in known:
            violations.append(f"phantom path {path} surfaced by recovery")
    return violations


def snapshot_namespace(fs) -> dict[str, object]:
    """Walk a mounted file system into ``path -> contents-or-DIR``."""
    out: dict[str, object] = {"/": DIR}

    def walk(path: str) -> None:
        for name in fs.readdir(path):
            child = (path.rstrip("/") or "") + "/" + name
            if fs.stat(child).is_directory:
                out[child] = DIR
                walk(child)
            else:
                out[child] = fs.read(child)

    walk("/")
    return out
