"""Recording a workload's block-write stream for crash replay.

A torture run executes its workload exactly once, on a ``RecordingDisk``
that remembers every write request the file system issued (in order, with
full payloads). Replaying a prefix of that request stream onto a copy of
the freshly formatted image reproduces the device bit-for-bit as it stood
at any point during the run — so thousands of crash points can be explored
in parallel without re-running the workload, and every worker sees the
identical stream regardless of scheduling.

Alongside the request stream the recorder keeps the operation log for the
durability oracle: each file-system call is mirrored into a
:class:`~repro.torture.oracle.ModelFS`, tagged with the block-write count
at which it started, and every completed ``sync``/``checkpoint`` snapshots
the model as a durability barrier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import LFSConfig
from repro.core.filesystem import LFS
from repro.disk.device import Disk, DiskState
from repro.disk.geometry import DiskGeometry
from repro.disk.timing import SimClock
from repro.torture.oracle import Barrier, ModelFS, OpRecord


class RecordingDisk(Disk):
    """A :class:`Disk` that logs every write request once recording starts.

    Each request is stored as ``(addr, payloads)`` with payloads already
    padded to the block size; ``blocks_logged`` counts individual blocks,
    which is the unit crash points are expressed in.
    """

    def __init__(self, geometry: DiskGeometry | None = None, *, clock: SimClock | None = None):
        super().__init__(geometry, clock=clock)
        self.recording = False
        self.requests: list[tuple[int, tuple[bytes, ...]]] = []
        self.blocks_logged = 0

    def write_block(self, addr: int, data: bytes, *, force_latency: bool = False) -> None:
        super().write_block(addr, data, force_latency=force_latency)
        if self.recording:
            self.requests.append((addr, (self.peek(addr),)))
            self.blocks_logged += 1

    def write_blocks(self, addr: int, blocks) -> None:
        super().write_blocks(addr, blocks)
        if self.recording:
            payloads = tuple(self.peek(addr + i) for i in range(len(blocks)))
            self.requests.append((addr, payloads))
            self.blocks_logged += len(payloads)


@dataclass
class Recording:
    """Everything a replay worker needs, in one picklable bundle.

    ``base_state``/``base_clock`` capture the device right after
    ``LFS.format`` (before recording starts); ``requests`` is the write
    stream issued after that; ``total_blocks`` is the stream's length in
    blocks, so crash cuts range over ``0..total_blocks`` inclusive
    (``total_blocks`` = no crash).
    """

    geometry: DiskGeometry
    config: LFSConfig
    base_state: DiskState
    base_clock: float
    requests: list[tuple[int, tuple[bytes, ...]]]
    total_blocks: int
    ops: list[OpRecord] = field(default_factory=list)
    barriers: list[Barrier] = field(default_factory=list)
    workload: str = ""
    seed: int = 0

    def fresh_disk(self) -> Disk:
        """A device restored to the post-format image, clock included."""
        disk = Disk(self.geometry, clock=SimClock(self.base_clock))
        disk.restore_state(self.base_state)
        return disk


class TortureRecorder:
    """Drives a workload against the real FS and the oracle model in step."""

    def __init__(self, config: LFSConfig, geometry: DiskGeometry, *, workload: str, seed: int):
        self.disk = RecordingDisk(geometry)
        self.fs = LFS.format(self.disk, config)
        self.model = ModelFS()
        self.ops: list[OpRecord] = []
        self.barriers: list[Barrier] = []
        self._config = config
        self._workload = workload
        self._seed = seed
        # The formatted image itself is the first durability barrier: an
        # immediate crash must recover the empty root.
        self._base_state = self.disk.snapshot_state()
        self._base_clock = self.disk.clock.now
        self.disk.recording = True
        self.barriers.append(self.model.snapshot(-1, 0))

    # -- mirrored operations -------------------------------------------
    def _record(self, op: OpRecord) -> OpRecord:
        op.start_blocks = self.disk.blocks_logged
        self.ops.append(op)
        return op

    def mkdir(self, path: str) -> None:
        self._record(OpRecord("mkdir", path=path))
        self.fs.mkdir(path)
        self.model.apply(self.ops[-1])

    def write(self, path: str, data: bytes) -> None:
        self._record(OpRecord("write", path=path, data=data))
        self.fs.write_file(path, data)
        self.model.apply(self.ops[-1])

    def append(self, path: str, data: bytes) -> None:
        self._record(OpRecord("append", path=path, data=data))
        self.fs.append(path, data)
        self.model.apply(self.ops[-1])

    def update(self, path: str, data: bytes, offset: int) -> None:
        self._record(OpRecord("update", path=path, data=data, offset=offset))
        self.fs.write(path, data, offset)
        self.model.apply(self.ops[-1])

    def unlink(self, path: str) -> None:
        self._record(OpRecord("unlink", path=path))
        self.fs.unlink(path)
        self.model.apply(self.ops[-1])

    def rename(self, old: str, new: str) -> None:
        self._record(OpRecord("rename", path=old, path2=new))
        self.fs.rename(old, new)
        self.model.apply(self.ops[-1])

    def link(self, existing: str, new: str) -> None:
        self._record(OpRecord("link", path=existing, path2=new))
        self.fs.link(existing, new)
        self.model.apply(self.ops[-1])

    def sync(self) -> None:
        self._record(OpRecord("sync"))
        self.fs.sync()
        self._barrier()

    def checkpoint(self) -> None:
        self._record(OpRecord("checkpoint"))
        self.fs.checkpoint()
        self._barrier()

    def clean(self) -> None:
        self._record(OpRecord("clean"))
        self.fs.clean_now()
        # Each cleaning pass checkpoints before reusing segments, but a
        # pass may not run at all (nothing worth cleaning), so cleaning is
        # deliberately NOT counted as a durability barrier — the oracle
        # only under-approximates what must survive.

    def _barrier(self) -> None:
        self.barriers.append(
            self.model.snapshot(len(self.ops) - 1, self.disk.blocks_logged)
        )

    # -- finishing ------------------------------------------------------
    def finish(self) -> Recording:
        """Stop recording (leaving any unsynced tail dirty) and bundle up."""
        self.disk.recording = False
        return Recording(
            geometry=self.disk.geometry,
            config=self._config,
            base_state=self._base_state,
            base_clock=self._base_clock,
            requests=self.disk.requests,
            total_blocks=self.disk.blocks_logged,
            ops=self.ops,
            barriers=self.barriers,
            workload=self._workload,
            seed=self._seed,
        )
