"""Recording a workload's block-write stream for crash replay.

A torture run executes its workload exactly once, on a ``RecordingDisk``
that remembers every write request the file system issued (in order, with
full payloads). Replaying a prefix of that request stream onto a copy of
the freshly formatted image reproduces the device bit-for-bit as it stood
at any point during the run — so thousands of crash points can be explored
in parallel without re-running the workload, and every worker sees the
identical stream regardless of scheduling.

Alongside the request stream the recorder keeps the operation log for the
durability oracle: each file-system call is mirrored into a
:class:`~repro.torture.oracle.ModelFS`, tagged with the block-write count
at which it started, and every completed ``sync``/``checkpoint`` snapshots
the model as a durability barrier.

With ``nvram=True`` the recorder captures a *second* write stream: every
NVM staging-log append (the framed record bytes, tagged with the disk
block count at which it happened) and every truncate (tagged the same
way, with the cumulative append count it wiped). Crash points are then
expressed in **global units** — one unit per durable disk block *or* NVM
append, merged in issue order — so a single cut enumerates every
interleaving of the two domains' durable prefixes. For recordings without
NVM the global unit count equals the disk block count, so existing
recordings, oracles, and digests are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import LFSConfig
from repro.core.filesystem import LFS
from repro.disk.device import Disk, DiskState
from repro.disk.geometry import DiskGeometry
from repro.disk.timing import SimClock
from repro.torture.oracle import Barrier, ModelFS, OpRecord


class RecordingDisk(Disk):
    """A :class:`Disk` that logs every write request once recording starts.

    Each request is stored as ``(addr, payloads)`` with payloads already
    padded to the block size; ``blocks_logged`` counts individual blocks,
    which is the unit crash points are expressed in.
    """

    def __init__(self, geometry: DiskGeometry | None = None, *, clock: SimClock | None = None):
        super().__init__(geometry, clock=clock)
        self.recording = False
        self.requests: list[tuple[int, tuple[bytes, ...]]] = []
        self.blocks_logged = 0

    def write_block(self, addr: int, data: bytes, *, force_latency: bool = False) -> None:
        super().write_block(addr, data, force_latency=force_latency)
        if self.recording:
            self.requests.append((addr, (self.peek(addr),)))
            self.blocks_logged += 1

    def write_blocks(self, addr: int, blocks, *, force_latency: bool = False) -> None:
        super().write_blocks(addr, blocks, force_latency=force_latency)
        if self.recording:
            payloads = tuple(self.peek(addr + i) for i in range(len(blocks)))
            self.requests.append((addr, payloads))
            self.blocks_logged += len(payloads)


@dataclass
class Recording:
    """Everything a replay worker needs, in one picklable bundle.

    ``base_state``/``base_clock`` capture the device right after
    ``LFS.format`` (before recording starts); ``requests`` is the write
    stream issued after that; ``total_blocks`` is the stream's length in
    blocks, so crash cuts range over ``0..total_blocks`` inclusive
    (``total_blocks`` = no crash).
    """

    geometry: DiskGeometry
    config: LFSConfig
    base_state: DiskState
    base_clock: float
    requests: list[tuple[int, tuple[bytes, ...]]]
    total_blocks: int
    ops: list[OpRecord] = field(default_factory=list)
    barriers: list[Barrier] = field(default_factory=list)
    workload: str = ""
    seed: int = 0
    #: Two-domain recordings only. ``nvm_appends`` is the staging-log
    #: write stream: ``(disk_blocks_at_append, framed_record_bytes)`` in
    #: append order. ``nvm_truncates`` marks each staging-log reset as
    #: ``(disk_blocks_at_truncate, cumulative_appends_wiped)``. With
    #: ``nvram`` set, ``total_blocks`` (and every op/barrier tag) counts
    #: global units: disk blocks plus NVM appends, merged in issue order.
    nvram: bool = False
    nvm_appends: list[tuple[int, bytes]] = field(default_factory=list)
    nvm_truncates: list[tuple[int, int]] = field(default_factory=list)

    @property
    def disk_blocks(self) -> int:
        """The disk-only write count (= ``total_blocks`` without NVM)."""
        return self.total_blocks - len(self.nvm_appends)

    def fresh_disk(self) -> Disk:
        """A device restored to the post-format image, clock included."""
        disk = Disk(self.geometry, clock=SimClock(self.base_clock))
        disk.restore_state(self.base_state)
        return disk


class TortureRecorder:
    """Drives a workload against the real FS and the oracle model in step."""

    def __init__(
        self,
        config: LFSConfig,
        geometry: DiskGeometry,
        *,
        workload: str,
        seed: int,
        nvram: bool = False,
    ):
        self.disk = RecordingDisk(geometry)
        self.nvram = nvram
        self.nvm_appends: list[tuple[int, bytes]] = []
        self.nvm_truncates: list[tuple[int, int]] = []
        nvm_dev = None
        if nvram:
            from repro.disk.nvram import NVMDevice

            nvm_dev = NVMDevice(clock=self.disk.clock)
        self.fs = LFS.format(self.disk, config, nvram=nvm_dev)
        self.model = ModelFS()
        self.ops: list[OpRecord] = []
        self.barriers: list[Barrier] = []
        self._config = config
        self._workload = workload
        self._seed = seed
        # The formatted image itself is the first durability barrier: an
        # immediate crash must recover the empty root. The NVM capture
        # hooks install here too — format's own flushes never stage.
        self._base_state = self.disk.snapshot_state()
        self._base_clock = self.disk.clock.now
        self.disk.recording = True
        if nvm_dev is not None:
            nvm_dev.on_append = lambda framed: self.nvm_appends.append(
                (self.disk.blocks_logged, framed)
            )
            nvm_dev.on_truncate = lambda n: self.nvm_truncates.append(
                (self.disk.blocks_logged, len(self.nvm_appends))
            )
        self.barriers.append(self.model.snapshot(-1, 0))

    def _global_units(self) -> int:
        """Durable units issued so far: disk blocks plus NVM appends."""
        return self.disk.blocks_logged + len(self.nvm_appends)

    # -- mirrored operations -------------------------------------------
    def _record(self, op: OpRecord) -> OpRecord:
        op.start_blocks = self._global_units()
        self.ops.append(op)
        return op

    def mkdir(self, path: str) -> None:
        self._record(OpRecord("mkdir", path=path))
        self.fs.mkdir(path)
        self.model.apply(self.ops[-1])

    def write(self, path: str, data: bytes) -> None:
        self._record(OpRecord("write", path=path, data=data))
        self.fs.write_file(path, data)
        self.model.apply(self.ops[-1])

    def append(self, path: str, data: bytes) -> None:
        self._record(OpRecord("append", path=path, data=data))
        self.fs.append(path, data)
        self.model.apply(self.ops[-1])

    def update(self, path: str, data: bytes, offset: int) -> None:
        self._record(OpRecord("update", path=path, data=data, offset=offset))
        self.fs.write(path, data, offset)
        self.model.apply(self.ops[-1])

    def unlink(self, path: str) -> None:
        self._record(OpRecord("unlink", path=path))
        self.fs.unlink(path)
        self.model.apply(self.ops[-1])

    def rename(self, old: str, new: str) -> None:
        self._record(OpRecord("rename", path=old, path2=new))
        self.fs.rename(old, new)
        self.model.apply(self.ops[-1])

    def link(self, existing: str, new: str) -> None:
        self._record(OpRecord("link", path=existing, path2=new))
        self.fs.link(existing, new)
        self.model.apply(self.ops[-1])

    def sync(self) -> None:
        self._record(OpRecord("sync"))
        self.fs.sync()
        self._barrier()

    def fsync(self, path: str) -> None:
        self._record(OpRecord("fsync", path=path))
        self.fs.fsync(path)
        # fsync absorbs the whole pending set (see LFS.fsync), so the
        # oracle treats it as a full durability barrier, same as sync.
        self._barrier()

    def checkpoint(self) -> None:
        self._record(OpRecord("checkpoint"))
        self.fs.checkpoint()
        self._barrier()

    def clean(self) -> None:
        self._record(OpRecord("clean"))
        self.fs.clean_now()
        # Each cleaning pass checkpoints before reusing segments, but a
        # pass may not run at all (nothing worth cleaning), so cleaning is
        # deliberately NOT counted as a durability barrier — the oracle
        # only under-approximates what must survive.

    def _barrier(self) -> None:
        self.barriers.append(
            self.model.snapshot(len(self.ops) - 1, self._global_units())
        )

    # -- finishing ------------------------------------------------------
    def finish(self) -> Recording:
        """Stop recording (leaving any unsynced tail dirty) and bundle up."""
        self.disk.recording = False
        if self.fs.nvram is not None:
            self.fs.nvram.on_append = None
            self.fs.nvram.on_truncate = None
        return Recording(
            geometry=self.disk.geometry,
            config=self._config,
            base_state=self._base_state,
            base_clock=self._base_clock,
            requests=self.disk.requests,
            total_blocks=self._global_units(),
            ops=self.ops,
            barriers=self.barriers,
            workload=self._workload,
            seed=self._seed,
            nvram=self.nvram,
            nvm_appends=self.nvm_appends,
            nvm_truncates=self.nvm_truncates,
        )
