"""Crash-point exploration: replay, recover, verify — in parallel.

The runner takes one :class:`~repro.torture.record.Recording` and fans a
set of crash points across a process pool. A crash point is a pair
``(cut, variant)``: replay the recorded write stream onto a copy of the
post-format image with the injector armed to fail after ``cut`` durable
blocks in the given fault mode, then power the device back on, mount
(running roll-forward recovery), and check the recovered namespace against
the durability oracle plus a full ``lfsck`` of the resulting image.

Everything is deterministic: the sample of points is drawn in the parent
from the base seed, each point derives its own fault seed with
:func:`~repro.simulator.sweep.derive_point_seed`, and results come back in
spec order — so the outcome digest is bit-identical at any worker count.
"""

from __future__ import annotations

import pickle
import random
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.core.config import compute_layout
from repro.core.errors import LFSError, MediaError
from repro.core.filesystem import LFS
from repro.disk.faults import FAULT_MODES, DiskCrashed, inject_media_faults
from repro.obs import Observation, SegmentLedger, Watchdog
from repro.simulator.sweep import derive_point_seed, resolve_workers
from repro.tools.lfsck import check_filesystem
from repro.tools.scrub import scrub_filesystem
from repro.torture.oracle import (
    DIR,
    crash_state_bounds,
    snapshot_namespace,
    verify_recovered,
)
from repro.torture.record import Recording
from repro.torture.workloads import record_workload

#: Every variant the torture sweep understands: the crash-fault modes the
#: injector can arm mid-stream, plus ``media`` — replay the whole stream,
#: then age the platter with seeded bit-rot, latent sectors, and transient
#: errors before the next mount — plus the NVM damage modes for two-domain
#: recordings: ``nvm-media`` corrupts one surviving staging record and
#: ``nvm-dead`` kills the whole board before the next mount.
TORTURE_MODES = FAULT_MODES + ("media", "nvm-media", "nvm-dead")

#: Variants that only make sense against a two-domain recording.
NVM_MODES = ("nvm-media", "nvm-dead")


@dataclass
class PointResult:
    """Outcome of one crash point."""

    cut: int
    variant: str
    ok: bool = True
    violations: list[str] = field(default_factory=list)
    recovery_elapsed: float = 0.0  # simulated disk seconds spent in roll-forward
    partial_writes_replayed: int = 0
    torn_writes_dropped: int = 0
    #: where the fault surfaced: block address and operation carried by the
    #: DiskCrashed / MediaError that fired at this point (None if none did,
    #: or the error did not localize itself). Diagnostics only — these are
    #: deliberately not part of the digest.
    error_addr: int | None = None
    error_op: str | None = None
    # media-variant outcome counters (zero for the crash variants)
    damage_found: int = 0
    blocks_rescued: int = 0
    paths_degraded: int = 0
    # two-domain (NVM) outcome counters; ``nvm_active`` gates the digest
    # suffix so single-domain recordings fingerprint exactly as before
    nvm_active: bool = False
    nvm_records_replayed: int = 0
    nvm_records_dropped: int = 0
    nvm_read_only: bool = False
    #: flight-recorder samples taken during replay+recovery when the
    #: point ran with ``timeline=True``. Diagnostics only — like the
    #: error fields, deliberately not part of the digest.
    timeline_samples: int = 0

    def digest_line(self) -> str:
        """A stable one-line fingerprint (feeds the run digest)."""
        line = (
            f"{self.cut}:{self.variant}:{int(self.ok)}:"
            f"{len(self.violations)}:{self.recovery_elapsed:.9f}"
        )
        if self.variant == "media":
            # Extend (rather than change) the fingerprint so the crash
            # variants' digest stays comparable with pre-media baselines.
            line += f":{self.damage_found}:{self.blocks_rescued}:{self.paths_degraded}"
        if self.nvm_active:
            line += (
                f":{self.nvm_records_replayed}:{self.nvm_records_dropped}:"
                f"{int(self.nvm_read_only)}"
            )
        return line


def _observe(watchdog: bool, timeline: bool = False) -> Observation | None:
    """Build the opt-in per-point observatory (None when off).

    The ledger, watchdog, and timeline recorder are pure bookkeeping —
    they never touch the simulated clock — so a watchdog- or
    timeline-enabled run must produce the exact same outcome digest as a
    bare run; an invariant violation surfaces as a raised
    :class:`~repro.obs.InvariantViolation` instead.
    """
    if not (watchdog or timeline):
        return None
    obs = Observation(ring_capacity=4096)
    if watchdog:
        ledger = SegmentLedger()
        ledger.install(obs)
        Watchdog(ledger=ledger).install(obs)
    if timeline:
        from repro.obs.timeline import TimelineRecorder

        TimelineRecorder(cadence=0.01).install(obs)
    return obs


# ----------------------------------------------------------------------
# two-domain cut arithmetic
#
# A global cut ``g`` persists the first ``g`` units of the merged stream:
# disk blocks and NVM appends in issue order. NVM append ``j`` (0-based)
# occupies the merged slot ``d_j + j`` where ``d_j`` is the disk block
# count when it was issued; a truncate recorded as ``(d_t, a_t)`` sits at
# merged position ``d_t + a_t`` and, having happened before the cut, has
# wiped the first ``a_t`` appends from the board.


def _split_cut(recording: Recording, g: int) -> tuple[int, int]:
    """Map a global cut to ``(disk_cut, nvm_cut)`` durable prefixes."""
    nvm_cut = 0
    for j, (d, _) in enumerate(recording.nvm_appends):
        if d + j < g:
            nvm_cut = j + 1
        else:
            break
    return g - nvm_cut, nvm_cut


def _nvm_in_flight(recording: Recording, g: int) -> bool:
    """True when the merged unit that trips the crash is an NVM append."""
    _, nvm_cut = _split_cut(recording, g)
    if nvm_cut >= len(recording.nvm_appends):
        return False
    d, _ = recording.nvm_appends[nvm_cut]
    return d + nvm_cut == g


def _nvm_at_cut(recording: Recording, g: int, variant: str, point_seed: int):
    """The NVM board as a crash at global cut ``g`` leaves it.

    Surviving records are ``appends[T:nvm_cut]`` where ``T`` is the wipe
    count of the last truncate positioned before the cut. Under ``torn``
    with an append in flight, a seeded prefix of the dying record is left
    on the board — the frame CRC rejects it at replay, exactly like a
    torn partial write on disk. (``clean``/``reorder`` drop the in-flight
    append whole: appends are single atomic requests, so there is nothing
    to reorder.)
    """
    from repro.disk.nvram import NVMDevice, NVMState

    _, nvm_cut = _split_cut(recording, g)
    wiped = 0
    for d_t, a_t in recording.nvm_truncates:
        if d_t + a_t <= g:
            wiped = max(wiped, a_t)
    records = [framed for _, framed in recording.nvm_appends[wiped:nvm_cut]]
    nv = NVMDevice()
    nv.restore_state(
        NVMState(records=tuple(records), next_seq=len(recording.nvm_appends) + 1)
    )
    if variant == "torn" and _nvm_in_flight(recording, g):
        _, framed = recording.nvm_appends[nvm_cut]
        nv.restore_state(
            NVMState(
                records=tuple(records) + (framed,),
                next_seq=len(recording.nvm_appends) + 1,
            )
        )
        nv.tear_last_record(seed=point_seed)
    return nv


def explore_point(
    recording: Recording,
    cut: int,
    variant: str,
    point_seed: int,
    *,
    watchdog: bool = False,
    timeline: bool = False,
) -> PointResult:
    """Replay to one crash point, recover, and verify.

    ``cut == recording.total_blocks`` replays the whole stream with no
    crash (the injector never fires), which checks the oracle against an
    orderly-but-unflushed device. ``watchdog`` attaches the segment
    ledger + invariant watchdog to the point's replay and recovery;
    ``timeline`` attaches a flight recorder sampling the replay and
    recovery I/O (purely observational — the outcome digest is
    unchanged).

    For a two-domain recording ``cut`` counts global units (disk blocks
    plus NVM appends, merged in issue order): the disk injector arms at
    the cut's disk share, the reconstructed NVM board holds the cut's
    append share, and the fault mode lands on whichever domain owns the
    unit in flight.
    """
    if variant == "media":
        return _explore_media_point(recording, cut, point_seed, watchdog=watchdog)
    if variant in NVM_MODES:
        return _explore_nvm_point(recording, cut, variant, point_seed, watchdog=watchdog)
    disk = recording.fresh_disk()
    obs = _observe(watchdog, timeline)
    if obs is not None:
        obs.attach_disk(disk)
    nv = None
    if recording.nvram:
        disk_cut, _ = _split_cut(recording, cut)
        nv = _nvm_at_cut(recording, cut, variant, point_seed)
        if disk_cut < recording.disk_blocks:
            # When the dying unit is an NVM append the disk itself stops
            # at a request boundary — its share of the cut is clean.
            disk_mode = "clean" if _nvm_in_flight(recording, cut) else variant
            disk.crash(after_writes=disk_cut, mode=disk_mode, seed=point_seed)
    elif cut < recording.total_blocks:
        disk.crash(after_writes=cut, mode=variant, seed=point_seed)
    crash_exc: DiskCrashed | None = None
    replay_span = (
        obs.span("torture.replay", cut=cut, variant=variant)
        if obs is not None
        else nullcontext()
    )
    try:
        with replay_span:
            for addr, payloads in recording.requests:
                if len(payloads) == 1:
                    disk.write_block(addr, payloads[0])
                else:
                    disk.write_blocks(addr, list(payloads))
                if obs is not None:
                    obs.timeline_tick()
    except DiskCrashed as exc:
        crash_exc = exc
    disk.power_on()

    result = PointResult(cut=cut, variant=variant, nvm_active=recording.nvram)
    if crash_exc is not None:
        result.error_addr = crash_exc.addr
        result.error_op = crash_exc.op
    guaranteed, acceptable, touched = crash_state_bounds(
        recording.ops, recording.barriers, cut
    )
    try:
        fs = LFS.mount(disk, recording.config, obs=obs, nvram=nv)
    except LFSError as exc:
        result.ok = False
        result.violations.append(f"mount failed after crash: {exc}")
        return result
    report = fs.last_recovery
    if report is not None:
        result.recovery_elapsed = report.elapsed
        result.partial_writes_replayed = report.partial_writes_replayed
        result.torn_writes_dropped = report.torn_writes_dropped
        result.nvm_records_replayed = report.nvm_records_replayed
        result.nvm_records_dropped = report.nvm_records_dropped
    result.nvm_read_only = fs.read_only
    if fs.read_only:
        # A crash-variant cut never damages acknowledged NVM records, so
        # a read-only degrade here is itself a contract violation.
        result.violations.append(
            "crash cut degraded the mount to read-only (no NVM record "
            "was damaged)"
        )
    recovered = snapshot_namespace(fs)
    result.violations.extend(
        verify_recovered(recovered, guaranteed, acceptable, touched)
    )
    # Timing sanity: busy-time past elapsed simulated time means some
    # recovery path double-charged the clock (the clamped utilization
    # display would silently hide it).
    assert disk.stats.busy_time <= disk.clock.now + 1e-9, (
        f"disk busy_time {disk.stats.busy_time:.9f}s exceeds simulated "
        f"time {disk.clock.now:.9f}s after recovery at cut={cut}"
    )
    if not fs.read_only:
        fs.unmount()
        check = check_filesystem(disk)
        if not check.ok:
            result.violations.extend(f"lfsck: {msg}" for msg in check.errors)
    if obs is not None and obs.timeline is not None:
        obs.timeline.finish()
        result.timeline_samples = obs.timeline.samples_taken
    result.ok = not result.violations
    return result


def _explore_media_point(
    recording: Recording, cut: int, point_seed: int, *, watchdog: bool = False
) -> PointResult:
    """Replay the whole stream, then age the platter and remount.

    Unlike the crash variants, ``cut`` only varies the seeded fault plan
    (each point derives its own seed): the stream persists in full, then
    seeded bit-rot, a latent sector, and a transient error land on the
    written image before the next mount. The oracle question changes from
    durability to *honesty*: a read may fail with a typed error (detected
    damage) or surface an acceptable earlier value (a roll-forward write
    dropped because its summary rotted), but returned bytes matching no
    acceptable value mean the checksums let silent corruption through —
    the one outcome the defense stack promises is impossible.
    """
    disk = recording.fresh_disk()
    obs = _observe(watchdog)
    if obs is not None:
        obs.attach_disk(disk)
    replay_span = (
        obs.span("torture.replay", cut=cut, variant="media")
        if obs is not None
        else nullcontext()
    )
    with replay_span:
        for addr, payloads in recording.requests:
            if len(payloads) == 1:
                disk.write_block(addr, payloads[0])
            else:
                disk.write_blocks(addr, list(payloads))

    result = PointResult(cut=cut, variant="media")
    guaranteed, acceptable, _ = crash_state_bounds(
        recording.ops, recording.barriers, recording.total_blocks
    )
    area_start = compute_layout(
        recording.config,
        recording.geometry.num_blocks,
        align=getattr(recording.geometry, "erase_block_blocks", 1) or 1,
    ).segment_area_start
    candidates = sorted(a for a in disk.written_addresses() if a >= area_start)
    inject_media_faults(
        disk, seed=point_seed, rot=2, latent=1, transient=1, candidates=candidates
    )

    def note(exc: Exception) -> None:
        if result.error_addr is None and isinstance(exc, MediaError):
            result.error_addr = exc.addr
            result.error_op = exc.op

    try:
        fs = LFS.mount(disk, recording.config, obs=obs)
    except LFSError as exc:
        # Refusing to mount damaged metadata is the defense working, not
        # a violation; everything the image held is (detectably) lost.
        note(exc)
        result.paths_degraded = len(guaranteed)
        return result
    report = fs.last_recovery
    if report is not None:
        result.recovery_elapsed = report.elapsed
        result.partial_writes_replayed = report.partial_writes_replayed
        result.torn_writes_dropped = report.torn_writes_dropped

    try:
        scrub = scrub_filesystem(fs, rescue=True)
        result.damage_found = (
            len(scrub.corrupt_blocks)
            + len(scrub.corrupt_summaries)
            + len(scrub.unreadable_blocks)
        )
        result.blocks_rescued = scrub.blocks_rescued
    except LFSError as exc:
        note(exc)

    for path in sorted(guaranteed):
        allowed = acceptable.get(path, {guaranteed[path]})
        try:
            got = DIR if fs.stat(path).is_directory else fs.read(path)
        except LFSError as exc:
            note(exc)
            result.paths_degraded += 1
            continue
        if got not in allowed:
            result.violations.append(
                f"media: {path} returned data matching no acceptable value "
                f"(silent corruption slipped past the checksums)"
            )
    assert disk.stats.busy_time <= disk.clock.now + 1e-9, (
        f"disk busy_time {disk.stats.busy_time:.9f}s exceeds simulated "
        f"time {disk.clock.now:.9f}s after media point cut={cut}"
    )
    result.ok = not result.violations
    return result


def _all_boundary_values(recording: Recording) -> dict[str, set]:
    """Every value each path held at any operation boundary of the run.

    The honesty bound for partial-NVM-damage points: acknowledged records
    may be lost (the mount says so, loudly), so recovery may surface any
    earlier boundary state — but bytes that were never the file's content
    at any boundary mean fabrication slipped through the CRCs.
    """
    from repro.torture.oracle import ModelFS

    model = ModelFS()
    allowed: dict[str, set] = {"/": {DIR}}
    for op in recording.ops:
        for path in model.apply(op):
            value = model.contents(path) if path in model.paths else None
            allowed.setdefault(path, set()).add(value)
    return allowed


def _explore_nvm_point(
    recording: Recording,
    cut: int,
    variant: str,
    point_seed: int,
    *,
    watchdog: bool = False,
) -> PointResult:
    """Replay the whole stream, then damage the NVM board and remount.

    Like ``media``, ``cut`` only varies the seeded damage. ``nvm-media``
    corrupts one seeded surviving record: damage to any record but the
    last is indistinguishable from losing acknowledged history, so the
    mount must succeed but degrade to read-only; damage to the last
    record alone is indistinguishable from a torn unacknowledged append
    and is dropped cleanly. ``nvm-dead`` kills the whole board: the mount
    cannot even prove the staging log was empty, so it must degrade.
    Either way every recovered value must be some operation-boundary
    state — degradation is honest, fabrication never is.
    """
    if not recording.nvram:
        raise ValueError(f"variant {variant!r} needs a two-domain recording")
    disk = recording.fresh_disk()
    obs = _observe(watchdog)
    if obs is not None:
        obs.attach_disk(disk)
    replay_span = (
        obs.span("torture.replay", cut=cut, variant=variant)
        if obs is not None
        else nullcontext()
    )
    with replay_span:
        for addr, payloads in recording.requests:
            if len(payloads) == 1:
                disk.write_block(addr, payloads[0])
            else:
                disk.write_blocks(addr, list(payloads))

    result = PointResult(cut=cut, variant=variant, nvm_active=True)
    nv = _nvm_at_cut(recording, recording.total_blocks, "clean", point_seed)
    surviving = nv.record_count
    expect_read_only = False
    if variant == "nvm-dead":
        nv.fail_device()
        expect_read_only = True
    elif surviving:
        k = random.Random(point_seed).randrange(surviving)
        nv.corrupt_record(k, seed=point_seed)
        expect_read_only = k < surviving - 1

    try:
        fs = LFS.mount(disk, recording.config, obs=obs, nvram=nv)
    except LFSError as exc:
        result.ok = False
        result.violations.append(f"mount failed after NVM damage: {exc}")
        return result
    report = fs.last_recovery
    if report is not None:
        result.recovery_elapsed = report.elapsed
        result.partial_writes_replayed = report.partial_writes_replayed
        result.torn_writes_dropped = report.torn_writes_dropped
        result.nvm_records_replayed = report.nvm_records_replayed
        result.nvm_records_dropped = report.nvm_records_dropped
    result.nvm_read_only = fs.read_only
    if fs.read_only != expect_read_only:
        result.violations.append(
            f"{variant}: expected read_only={expect_read_only} "
            f"(surviving={surviving}), mount says {fs.read_only}"
        )

    allowed = _all_boundary_values(recording)
    recovered = snapshot_namespace(fs)
    for path, got in recovered.items():
        if path not in allowed:
            result.violations.append(f"{variant}: phantom path {path} surfaced")
        elif got not in allowed[path]:
            result.violations.append(
                f"{variant}: {path} holds bytes that were never an "
                f"operation-boundary state (fabricated content)"
            )
    assert disk.stats.busy_time <= disk.clock.now + 1e-9, (
        f"disk busy_time {disk.stats.busy_time:.9f}s exceeds simulated "
        f"time {disk.clock.now:.9f}s after NVM point cut={cut}"
    )
    result.ok = not result.violations
    return result


# ----------------------------------------------------------------------
# parallel plumbing: the recording ships once per worker, not per point

_WORKER_RECORDING: Recording | None = None
_WORKER_WATCHDOG: bool = False


def _init_worker(blob: bytes, watchdog: bool = False) -> None:
    global _WORKER_RECORDING, _WORKER_WATCHDOG
    _WORKER_RECORDING = pickle.loads(zlib.decompress(blob))
    _WORKER_WATCHDOG = watchdog


def _worker_point(cut: int, variant: str, point_seed: int) -> PointResult:
    assert _WORKER_RECORDING is not None, "worker initializer did not run"
    return explore_point(
        _WORKER_RECORDING, cut, variant, point_seed, watchdog=_WORKER_WATCHDOG
    )


# ----------------------------------------------------------------------
# the sweep itself


def select_points(
    recording: Recording,
    *,
    sample: int | None,
    seed: int,
    variants: tuple[str, ...] = FAULT_MODES,
    exhaustive: bool = False,
) -> list[tuple[int, str, int]]:
    """Choose the crash points to explore, in the parent, deterministically.

    The population is every cut ``0..total_blocks`` crossed with every
    fault variant. ``sample`` draws that many points with the base seed;
    ``exhaustive`` (or a sample at least the population size) takes all of
    them. Each point gets its own derived fault seed.
    """
    for v in variants:
        if v not in TORTURE_MODES:
            raise ValueError(f"unknown fault variant {v!r} (want one of {TORTURE_MODES})")
        if v in NVM_MODES and not recording.nvram:
            raise ValueError(
                f"variant {v!r} needs a two-domain recording (run with nvram=True)"
            )
    population = [
        (cut, variant)
        for cut in range(recording.total_blocks + 1)
        for variant in variants
    ]
    if exhaustive or sample is None or sample >= len(population):
        chosen = population
    else:
        chosen = random.Random(seed).sample(population, sample)
    return [
        (cut, variant, derive_point_seed(seed, recording.workload, cut, variant))
        for cut, variant in chosen
    ]


@dataclass
class TortureResult:
    """Aggregate outcome of one torture run."""

    workload: str
    base_seed: int
    total_blocks: int
    population: int
    points: list[PointResult]
    workers: int
    wall_seconds: float

    @property
    def violations(self) -> list[PointResult]:
        return [p for p in self.points if not p.ok]

    @property
    def violation_count(self) -> int:
        return sum(len(p.violations) for p in self.points)

    @property
    def mean_recovery_seconds(self) -> float:
        if not self.points:
            return 0.0
        return sum(p.recovery_elapsed for p in self.points) / len(self.points)

    @property
    def outcome_digest(self) -> str:
        """CRC32 over every point's fingerprint, in spec order.

        Identical digests across worker counts prove the sweep is
        scheduling-independent.
        """
        text = "\n".join(p.digest_line() for p in self.points)
        return f"{zlib.crc32(text.encode('utf-8')):08x}"

    def variant_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for p in self.points:
            counts[p.variant] = counts.get(p.variant, 0) + 1
        return counts


def run_torture(
    workload: str,
    *,
    sample: int | None = 200,
    seed: int = 0,
    workers: int | None = None,
    variants: tuple[str, ...] = FAULT_MODES,
    exhaustive: bool = False,
    watchdog: bool = False,
    flash: bool = False,
    nvram: bool = False,
) -> TortureResult:
    """Record one workload, then explore crash points across a pool.

    ``watchdog`` runs every point under the segment ledger + invariant
    watchdog (see :func:`_observe`); outcomes and the digest are
    unchanged unless an invariant actually breaks, which raises.
    ``flash`` records the workload on the NAND profile (erase-aware
    device, hot/cold segregation, wear leveling) so crash points land
    inside the flash machinery too. ``nvram`` records with the NVM
    staging board attached, making the run two-domain: cuts enumerate
    interleaved disk/NVM durable prefixes, and the ``nvm-media`` /
    ``nvm-dead`` variants become available.
    """
    start = time.perf_counter()
    recording = record_workload(workload, seed, flash=flash, nvram=nvram)
    specs = select_points(
        recording, sample=sample, seed=seed, variants=variants, exhaustive=exhaustive
    )
    nworkers = resolve_workers(workers, len(specs))
    if nworkers <= 1:
        points = [explore_point(recording, *spec, watchdog=watchdog) for spec in specs]
    else:
        blob = zlib.compress(pickle.dumps(recording))
        chunk = max(1, len(specs) // (nworkers * 4))
        with ProcessPoolExecutor(
            max_workers=nworkers, initializer=_init_worker, initargs=(blob, watchdog)
        ) as pool:
            points = list(
                pool.map(
                    _worker_point,
                    [s[0] for s in specs],
                    [s[1] for s in specs],
                    [s[2] for s in specs],
                    chunksize=chunk,
                )
            )
    return TortureResult(
        workload=workload,
        base_seed=seed,
        total_blocks=recording.total_blocks,
        population=(recording.total_blocks + 1) * len(variants),
        points=points,
        workers=nworkers,
        wall_seconds=time.perf_counter() - start,
    )
