"""Crash-consistency torture testing (built on Section 4's recovery design).

Record a workload's write stream once, then replay every durable prefix —
with clean cuts, torn blocks, or reordered requests — and verify that
roll-forward recovery honors the durability oracle at each point.
"""

from repro.torture.oracle import (
    ModelFS,
    OpRecord,
    crash_state_bounds,
    snapshot_namespace,
    verify_recovered,
)
from repro.torture.record import Recording, RecordingDisk, TortureRecorder
from repro.torture.runner import (
    TORTURE_MODES,
    PointResult,
    TortureResult,
    explore_point,
    run_torture,
    select_points,
)
from repro.torture.workloads import WORKLOADS, record_workload

__all__ = [
    "ModelFS",
    "OpRecord",
    "PointResult",
    "Recording",
    "RecordingDisk",
    "TortureRecorder",
    "TortureResult",
    "TORTURE_MODES",
    "WORKLOADS",
    "crash_state_bounds",
    "explore_point",
    "record_workload",
    "run_torture",
    "select_points",
    "snapshot_namespace",
    "verify_recovered",
]
