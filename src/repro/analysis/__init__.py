"""Figure and table regeneration for the paper's evaluation section.

``figures`` has one entry point per paper figure and ``tables`` one per
table; each returns a small result object whose ``render()`` produces the
terminal-friendly report the benchmark harness prints. ``ascii_chart``
holds the plotting primitives.
"""

from repro.analysis.ascii_chart import render_histogram, render_series, render_table

__all__ = ["render_histogram", "render_series", "render_table"]
