"""One entry point per paper table (Tables 2, 3, and 4).

Table 1 is a design inventory rather than an experiment; it is documented
in DESIGN.md and enforced by the structure tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.ascii_chart import render_table
from repro.core.config import LFSConfig
from repro.core.filesystem import LFS
from repro.workloads.production import (
    PAPER_TABLE2,
    ProductionConfig,
    ProductionResult,
    default_configs,
    run_production,
)
from repro.workloads.recovery_bench import PAPER_TABLE3, RecoveryCell, run_recovery_grid


@dataclass
class Table2Result:
    """Cleaning statistics for the five synthetic production systems."""

    rows: list[ProductionResult] = field(default_factory=list)

    def render(self) -> str:
        table_rows = []
        for r in self.rows:
            paper = PAPER_TABLE2.get(r.name, {})
            table_rows.append(
                [
                    r.name,
                    f"{r.disk_mb}MB",
                    f"{r.avg_file_kb:.1f}KB",
                    f"{r.in_use * 100:.0f}%",
                    r.segments_cleaned,
                    f"{r.fraction_empty * 100:.0f}%",
                    f"{r.avg_cleaned_u:.3f}",
                    f"{r.write_cost:.2f}",
                    f"{paper.get('write_cost', '-')}",
                ]
            )
        return render_table(
            [
                "file system",
                "disk",
                "avg file",
                "in use",
                "segs cleaned",
                "empty",
                "u (non-empty)",
                "write cost",
                "paper wc",
            ],
            table_rows,
            title="Table 2 — segment cleaning statistics, synthetic production workloads",
        )


def table2_production(
    configs: list[ProductionConfig] | None = None, *, obs_factory=None
) -> Table2Result:
    """Run the five Table 2 workloads (or a custom list).

    ``obs_factory``, if given, is called once per config and must return a
    :class:`repro.obs.Observation` (or None); the benchmark harness uses
    it to cross-check each row against its trace.
    """
    cfgs = configs if configs is not None else default_configs()
    rows = []
    for c in cfgs:
        obs = obs_factory(c) if obs_factory is not None else None
        rows.append(run_production(c, obs=obs))
    return Table2Result(rows=rows)


@dataclass
class Table3Result:
    """Recovery-time grid."""

    cells: list[RecoveryCell] = field(default_factory=list)

    def render(self) -> str:
        sizes = sorted({c.file_size for c in self.cells})
        mbs = sorted({c.data_mb for c in self.cells})
        rows = []
        for size in sizes:
            row: list[object] = [f"{size // 1024}KB" if size >= 1024 else f"{size}B"]
            for mb in mbs:
                cell = next(c for c in self.cells if c.file_size == size and c.data_mb == mb)
                paper = PAPER_TABLE3.get((size, mb))
                paper_txt = f" (paper {paper:.0f})" if paper is not None else ""
                row.append(f"{cell.recovery_seconds:.2f}s{paper_txt}")
            rows.append(row)
        return render_table(
            ["file size"] + [f"{mb}MB recovered" for mb in mbs],
            rows,
            title="Table 3 — recovery time by file size and data recovered",
        )


def table3_recovery(
    file_sizes: tuple[int, ...] = (1024, 10240, 102400),
    data_mbs: tuple[int, ...] = (1, 10, 50),
) -> Table3Result:
    """Run the Table 3 crash-recovery grid."""
    return Table3Result(cells=run_recovery_grid(file_sizes, data_mbs))


@dataclass
class Table4Result:
    """Live-data vs. log-bandwidth breakdown by block type."""

    live: dict[str, int]
    log: dict[str, int]

    # Paper's /user6 numbers for reference.
    PAPER = {
        "data": (98.0, 85.2),
        "indirect": (1.0, 1.6),
        "inode": (0.2, 2.7),
        "inode_map": (0.2, 7.8),
        "seg_usage": (0.0, 2.1),
        "summary": (0.6, 0.5),
        "dirop_log": (0.0, 0.1),
    }

    def render(self) -> str:
        live_total = sum(self.live.values()) or 1
        log_total = sum(self.log.values()) or 1
        rows = []
        for kind in ("data", "indirect", "inode", "inode_map", "seg_usage", "summary", "dirop_log"):
            live_pct = 100.0 * self.live.get(kind, 0) / live_total
            log_pct = 100.0 * self.log.get(kind, 0) / log_total
            paper = self.PAPER.get(kind, ("-", "-"))
            rows.append(
                [kind, f"{live_pct:.1f}%", f"{log_pct:.1f}%", f"{paper[0]}%", f"{paper[1]}%"]
            )
        return render_table(
            ["block type", "live data", "log bandwidth", "paper live", "paper log bw"],
            rows,
            title="Table 4 — disk space and log bandwidth usage by block type",
        )


def table4_block_types(
    config: ProductionConfig | None = None, *, obs=None
) -> Table4Result:
    """Run a /user6-style workload and break down the log by block type."""
    import random

    from repro.disk.device import Disk
    from repro.disk.geometry import DiskGeometry
    from repro.workloads.production import _FileChurn

    cfg = config if config is not None else ProductionConfig(disk_mb=64, traffic_mb=96)
    rng = random.Random(cfg.seed)
    disk = Disk(DiskGeometry.wren4(num_blocks=cfg.disk_mb * 256))
    num_segments = cfg.disk_mb * 2
    low_water = max(4, num_segments // 24)
    fs = LFS.format(
        disk,
        LFSConfig(
            segment_bytes=512 * 1024,
            checkpoint_interval=30.0,
            cache_blocks=4096,
            clean_low_water=low_water,
            clean_high_water=low_water * 2,
            segments_per_pass=8,
        ),
        obs=obs,
    )
    capacity = fs.layout.num_segments * fs.config.segment_bytes
    driver = _FileChurn(fs, rng, cfg, capacity)
    driver.age()
    driver.churn(cfg.traffic_mb * 1024 * 1024)
    fs.checkpoint()
    live = fs.live_data_breakdown()
    log = fs.log_bandwidth_breakdown()
    return Table4Result(live=live, log=log)
