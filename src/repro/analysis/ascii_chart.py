"""Terminal rendering primitives for figures and tables.

Benchmarks print their figures as ASCII line charts and histograms so a
run of ``pytest benchmarks/`` reproduces the paper's plots legibly in a
log file, with no plotting dependencies.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

_MARKS = "*o+x#@%&"


def render_series(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
    y_max: float | None = None,
) -> str:
    """Render named (x, y) series as an ASCII scatter/line chart."""
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo = 0.0
    y_hi = y_max if y_max is not None else max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for mark, (name, pts) in zip(_MARKS, series.items()):
        for x, y in pts:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            y_clamped = min(y, y_hi)
            row = height - 1 - int((y_clamped - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[row][col] = mark

    lines = []
    for i, row in enumerate(grid):
        y_val = y_hi - i * (y_hi - y_lo) / (height - 1)
        lines.append(f"{y_val:8.2f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(f"{'':9}{x_lo:<10.2f}{x_label:^{max(0, width - 20)}}{x_hi:>10.2f}")
    legend = "   ".join(
        f"{mark} {name}" for mark, (name, _) in zip(_MARKS, series.items())
    )
    lines.append(f"   y: {y_label}")
    lines.append(f"   {legend}")
    return "\n".join(lines)


def render_histogram(
    values: Iterable[float],
    *,
    bins: int = 20,
    lo: float = 0.0,
    hi: float = 1.0,
    width: int = 50,
    label: str = "value",
    normalize: bool = True,
) -> str:
    """Render a histogram of ``values`` over [lo, hi] as horizontal bars."""
    counts = [0] * bins
    total = 0
    for v in values:
        idx = int((min(max(v, lo), hi) - lo) / (hi - lo) * bins)
        counts[min(idx, bins - 1)] += 1
        total += 1
    if total == 0:
        return "(no data)"
    peak = max(counts)
    lines = [f"   {label} distribution ({total} samples)"]
    for i, count in enumerate(counts):
        left = lo + i * (hi - lo) / bins
        frac = count / total if normalize else count
        bar = "#" * (int(count / peak * width) if peak else 0)
        lines.append(f"{left:6.2f} |{bar:<{width}} {frac:6.3f}" if normalize else f"{left:6.2f} |{bar}")
    return "\n".join(lines)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render a fixed-width text table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in str_rows:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3g}" if abs(cell) < 1000 else f"{cell:.0f}"
    return str(cell)


#: Amplitude glyphs for :func:`render_sparkline`, lowest to highest.
#: ASCII-only so log files and CI consoles render them everywhere.
_SPARK_GLYPHS = "_.:-=+*#%@"


def render_sparkline(
    values: Sequence[float | None],
    *,
    width: int = 64,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """Render one series as a fixed-width amplitude strip.

    ``None`` entries are gaps (rendered as spaces). When the series is
    longer than ``width`` the samples are bucketed and each cell shows
    its bucket's mean; shorter series render one cell per sample. ``lo``
    and ``hi`` pin the amplitude scale (defaulting to the data range) so
    several sparklines can share an axis.
    """
    present = [v for v in values if v is not None]
    if not present:
        return " " * width
    floor = min(present) if lo is None else lo
    ceil = max(present) if hi is None else hi
    span = ceil - floor
    cells = []
    n = len(values)
    buckets = min(width, n)
    for i in range(buckets):
        start = i * n // buckets
        stop = max(start + 1, (i + 1) * n // buckets)
        window = [v for v in values[start:stop] if v is not None]
        if not window:
            cells.append(" ")
            continue
        mean = sum(window) / len(window)
        if span <= 0:
            cells.append(_SPARK_GLYPHS[-1])
            continue
        frac = (mean - floor) / span
        idx = int(max(0.0, min(1.0, frac)) * (len(_SPARK_GLYPHS) - 1))
        cells.append(_SPARK_GLYPHS[idx])
    return "".join(cells).ljust(width)


#: Utilization decile glyphs for :func:`render_heatmap`: "." is exactly
#: empty, 1-9 are deciles, "#" is (nearly) full.
_HEAT_GLYPHS = ".123456789#"


def render_heatmap(
    utils: Sequence[float],
    *,
    quarantined: Iterable[int] = (),
    clean: Iterable[int] = (),
    current: int | None = None,
    width: int = 64,
    title: str = "segment utilization",
) -> str:
    """Render per-segment utilizations as a glyph map, one cell a segment.

    Deciles render as ``.123456789#``; clean segments show ``_``,
    quarantined ones ``Q``, and the writer's current tail ``*`` — so one
    glance shows the log's shape: where live data clusters, where the
    clean pool sits, and which segments the cleaner should want.
    """
    if not utils:
        return "(no segments)"
    quarantined = set(quarantined)
    clean = set(clean)
    cells = []
    for seg_no, u in enumerate(utils):
        if seg_no == current:
            cells.append("*")
        elif seg_no in quarantined:
            cells.append("Q")
        elif seg_no in clean:
            cells.append("_")
        else:
            idx = min(len(_HEAT_GLYPHS) - 1, int(max(0.0, min(1.0, u)) * 10))
            cells.append(_HEAT_GLYPHS[idx])
    label_width = len(str(len(utils) - 1))
    lines = [f"{title} ({len(utils)} segments)"]
    for row_start in range(0, len(cells), width):
        row = "".join(cells[row_start : row_start + width])
        lines.append(f"{row_start:>{label_width}} |{row}|")
    lines.append(
        "legend: _ clean   . empty-in-log   1-9 utilization deciles   "
        "# full   Q quarantined   * log tail"
    )
    return "\n".join(lines)
