"""One entry point per paper figure.

Each ``figNN_*`` function runs the relevant experiment(s) and returns a
result object with the raw data plus a ``render()`` that prints the
paper-style figure. Benchmarks call these with their default (paper)
parameters; tests call them with scaled-down ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.ascii_chart import render_histogram, render_series, render_table
from repro.core.config import LFSConfig
from repro.core.filesystem import LFS
from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry
from repro.ffs.filesystem import FFS, FFSConfig
from repro.simulator.model import SimConfig, Simulator
from repro.simulator.policies import GroupingPolicy, SelectionPolicy
from repro.simulator.sweep import SweepPoint, run_sweep
from repro.simulator.writecost import (
    FFS_IMPROVED_WRITE_COST,
    FFS_TODAY_WRITE_COST,
    lfs_write_cost,
)
from repro.workloads.largefile import PHASES, run_largefile
from repro.workloads.production import ProductionConfig, run_production
from repro.workloads.smallfile import predicted_scaling, run_smallfile

DEFAULT_UTILS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9)


# ----------------------------------------------------------------------
# Figure 1 — disk I/O to create two small files


@dataclass
class Fig01Result:
    """Write-operation counts for creating two one-block files."""

    lfs_write_ops: int
    lfs_blocks_written: int
    ffs_write_ops: int
    ffs_blocks_written: int

    def render(self) -> str:
        return render_table(
            ["system", "disk write ops", "blocks written"],
            [
                ["Sprite LFS", self.lfs_write_ops, self.lfs_blocks_written],
                ["Unix FFS", self.ffs_write_ops, self.ffs_blocks_written],
            ],
            title=(
                "Figure 1 — creating dir1/file1 and dir2/file2 (paper: LFS does it\n"
                "in one large sequential write; FFS needs ten small ones)"
            ),
        )


def fig01_create_layout() -> Fig01Result:
    """Count the disk writes each system needs to create two files."""
    lfs_disk = Disk(DiskGeometry.wren4(num_blocks=16384))
    lfs = LFS.format(lfs_disk, LFSConfig(max_inodes=1024, checkpoint_interval=0))
    before = lfs_disk.stats.snapshot()
    lfs.mkdir("/dir1")
    lfs.mkdir("/dir2")
    f1 = lfs.create("/dir1/file1")
    lfs.write_inum(f1, b"1" * 4096)
    f2 = lfs.create("/dir2/file2")
    lfs.write_inum(f2, b"2" * 4096)
    lfs.flush()
    lfs_delta = lfs_disk.stats.delta(before)

    ffs_disk = Disk(DiskGeometry.wren4(block_size=8192, num_blocks=16384))
    ffs = FFS.format(ffs_disk, FFSConfig(max_inodes=1024))
    ffs.mkdir("/dir1")
    ffs.mkdir("/dir2")
    before = ffs_disk.stats.snapshot()
    g1 = ffs.create("/dir1/file1")
    ffs.write_inum(g1, b"1" * 8192)
    g2 = ffs.create("/dir2/file2")
    ffs.write_inum(g2, b"2" * 8192)
    ffs.sync()
    ffs_delta = ffs_disk.stats.delta(before)

    return Fig01Result(
        lfs_write_ops=lfs_delta.writes,
        lfs_blocks_written=lfs_delta.blocks_written,
        ffs_write_ops=ffs_delta.writes,
        ffs_blocks_written=ffs_delta.blocks_written,
    )


# ----------------------------------------------------------------------
# Figure 3 — the write-cost formula


@dataclass
class Fig03Result:
    """Formula (1) curve plus the FFS reference lines."""

    points: list[tuple[float, float]]

    def render(self) -> str:
        series = {
            "log-structured (formula 1)": self.points,
            "FFS today": [(u, FFS_TODAY_WRITE_COST) for u, _ in self.points],
            "FFS improved": [(u, FFS_IMPROVED_WRITE_COST) for u, _ in self.points],
        }
        chart = render_series(
            series,
            x_label="fraction alive in segment cleaned (u)",
            y_label="write cost",
            y_max=14.0,
        )
        return "Figure 3 — write cost as a function of u\n" + chart


def fig03_writecost_formula(us: tuple[float, ...] | None = None) -> Fig03Result:
    """Evaluate formula (1) over a range of cleaned-segment utilizations."""
    if us is None:
        us = tuple(i / 20 for i in range(19))
    return Fig03Result(points=[(u, lfs_write_cost(u)) for u in us])


# ----------------------------------------------------------------------
# Figures 4-7 — the cleaning simulator


def _sim_config(
    util: float, selection, grouping, *, fast: bool, seed: int = 42
) -> SimConfig:
    return SimConfig(
        utilization=util,
        selection=selection,
        grouping=grouping,
        num_segments=60 if fast else 100,
        blocks_per_segment=64 if fast else 128,
        warmup_factor=4 if fast else 8,
        measure_factor=2 if fast else 4,
        max_windows=10 if fast else 25,
        stable_tol=0.05 if fast else 0.02,
        stable_windows=2 if fast else 3,
        seed=seed,
    )


def _sim(util: float, pattern, selection, grouping, *, fast: bool, seed: int = 42) -> Simulator:
    return Simulator(_sim_config(util, selection, grouping, fast=fast, seed=seed), pattern)


@dataclass
class WriteCostCurves:
    """Write-cost vs. disk-utilization curves (Figures 4 and 7)."""

    title: str
    curves: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    sim_steps: int = 0  # total simulated steps behind the curves

    def render(self) -> str:
        series = dict(self.curves)
        utils = sorted({u for pts in self.curves.values() for u, _ in pts})
        series["no variance (formula)"] = [(u, lfs_write_cost(u)) for u in utils]
        series["FFS today"] = [(u, FFS_TODAY_WRITE_COST) for u in utils]
        series["FFS improved"] = [(u, FFS_IMPROVED_WRITE_COST) for u in utils]
        chart = render_series(
            series,
            x_label="disk capacity utilization",
            y_label="write cost",
            y_max=14.0,
        )
        rows = []
        for u in utils:
            row: list[object] = [u]
            for name in self.curves:
                val = dict(self.curves[name]).get(u)
                row.append(val if val is not None else "-")
            rows.append(row)
        table = render_table(["util"] + list(self.curves.keys()), rows)
        return f"{self.title}\n{chart}\n\n{table}"


def fig04_greedy_simulation(
    utils: tuple[float, ...] = DEFAULT_UTILS,
    *,
    fast: bool = False,
    workers: int | None = None,
) -> WriteCostCurves:
    """Figure 4: greedy cleaning under uniform and hot-and-cold access.

    All points fan out through the parallel sweep runner; seeds are
    per-point, so results match the legacy sequential loop exactly.
    """
    result = WriteCostCurves(
        title="Figure 4 — write cost vs disk utilization (greedy cleaner)"
    )
    points = [
        SweepPoint(_sim_config(u, SelectionPolicy.GREEDY, GroupingPolicy.NONE, fast=fast), "uniform")
        for u in utils
    ] + [
        SweepPoint(_sim_config(u, SelectionPolicy.GREEDY, GroupingPolicy.AGE_SORT, fast=fast), "hot-cold")
        for u in utils
    ]
    runs = run_sweep(points, workers=workers)
    n = len(utils)
    result.curves["LFS uniform"] = [(u, r.write_cost) for u, r in zip(utils, runs[:n])]
    result.curves["LFS hot-and-cold"] = [(u, r.write_cost) for u, r in zip(utils, runs[n:])]
    result.sim_steps = sum(r.total_steps for r in runs)
    return result


@dataclass
class DistributionResult:
    """Segment-utilization distributions (Figures 5, 6, and 10)."""

    title: str
    distributions: dict[str, list[float]] = field(default_factory=dict)
    sim_steps: int = 0  # total simulated steps behind the distributions

    def render(self) -> str:
        parts = [self.title]
        for name, values in self.distributions.items():
            parts.append(f"\n-- {name}")
            parts.append(render_histogram(values, label="segment utilization"))
        return "\n".join(parts)


def fig05_greedy_distributions(
    util: float = 0.75, *, fast: bool = False, workers: int | None = None
) -> DistributionResult:
    """Figure 5: distributions seen by a greedy cleaner at 75% utilization."""
    result = DistributionResult(
        title="Figure 5 — segment utilization distributions, greedy cleaner"
    )
    names_points = [
        ("uniform", SweepPoint(_sim_config(util, SelectionPolicy.GREEDY, GroupingPolicy.NONE, fast=fast), "uniform")),
        ("hot-and-cold", SweepPoint(_sim_config(util, SelectionPolicy.GREEDY, GroupingPolicy.AGE_SORT, fast=fast), "hot-cold")),
    ]
    runs = run_sweep([p for _, p in names_points], workers=workers)
    for (name, _), r in zip(names_points, runs):
        result.distributions[name] = r.utilization_histogram
    result.sim_steps = sum(r.total_steps for r in runs)
    return result


def fig06_costbenefit_distribution(
    util: float = 0.75, *, fast: bool = False, workers: int | None = None
) -> DistributionResult:
    """Figure 6: the bimodal distribution produced by cost-benefit."""
    result = DistributionResult(
        title="Figure 6 — segment utilization distribution, cost-benefit policy"
    )
    names_points = [
        ("LFS cost-benefit", SweepPoint(_sim_config(util, SelectionPolicy.COST_BENEFIT, GroupingPolicy.AGE_SORT, fast=fast), "hot-cold")),
        ("LFS greedy", SweepPoint(_sim_config(util, SelectionPolicy.GREEDY, GroupingPolicy.AGE_SORT, fast=fast), "hot-cold")),
    ]
    runs = run_sweep([p for _, p in names_points], workers=workers)
    for (name, _), r in zip(names_points, runs):
        result.distributions[name] = r.utilization_histogram
    result.sim_steps = sum(r.total_steps for r in runs)
    return result


def fig07_costbenefit_writecost(
    utils: tuple[float, ...] = DEFAULT_UTILS,
    *,
    fast: bool = False,
    workers: int | None = None,
) -> WriteCostCurves:
    """Figure 7: cost-benefit vs greedy under hot-and-cold access."""
    result = WriteCostCurves(
        title="Figure 7 — write cost including the cost-benefit policy"
    )
    points = [
        SweepPoint(_sim_config(u, SelectionPolicy.GREEDY, GroupingPolicy.AGE_SORT, fast=fast), "hot-cold")
        for u in utils
    ] + [
        SweepPoint(_sim_config(u, SelectionPolicy.COST_BENEFIT, GroupingPolicy.AGE_SORT, fast=fast), "hot-cold")
        for u in utils
    ]
    runs = run_sweep(points, workers=workers)
    n = len(utils)
    result.curves["LFS greedy"] = [(u, r.write_cost) for u, r in zip(utils, runs[:n])]
    result.curves["LFS cost-benefit"] = [(u, r.write_cost) for u, r in zip(utils, runs[n:])]
    result.sim_steps = sum(r.total_steps for r in runs)
    return result


# ----------------------------------------------------------------------
# Figure 8 — small files


@dataclass
class Fig08Result:
    """Measured phases plus the CPU-scaling prediction."""

    lfs: object
    ffs: object
    scaling: dict[str, list[tuple[float, float]]]

    def render(self) -> str:
        rows = []
        for phase in ("create", "read", "delete"):
            lp = self.lfs.phase(phase)
            fp = self.ffs.phase(phase)
            rows.append(
                [
                    phase,
                    f"{lp.files_per_second:.0f}",
                    f"{fp.files_per_second:.0f}",
                    f"{lp.files_per_second / fp.files_per_second:.1f}x",
                    f"{lp.disk_utilization * 100:.0f}%",
                    f"{fp.disk_utilization * 100:.0f}%",
                ]
            )
        table = render_table(
            ["phase", "LFS files/s", "FFS files/s", "speedup", "LFS disk busy", "FFS disk busy"],
            rows,
            title=(
                f"Figure 8(a) — {self.lfs.num_files} x {self.lfs.file_size}B files "
                "(create / read / delete)"
            ),
        )
        rows_b = []
        for speedup, _ in self.scaling["lfs"]:
            lfs_fps = dict(self.scaling["lfs"])[speedup]
            ffs_fps = dict(self.scaling["ffs"])[speedup]
            rows_b.append([f"{speedup:.0f}x CPU", f"{lfs_fps:.0f}", f"{ffs_fps:.0f}"])
        table_b = render_table(
            ["CPU speed", "LFS create files/s", "FFS create files/s"],
            rows_b,
            title="Figure 8(b) — predicted create rate vs CPU speed (same disk)",
        )
        return table + "\n\n" + table_b


def fig08_smallfile(
    num_files: int = 10000, *, scaling_files: int = 1000, speedups: tuple[float, ...] = (1.0, 2.0, 4.0)
) -> Fig08Result:
    """Figure 8: the small-file benchmark plus CPU-scaling prediction."""
    lfs = run_smallfile("lfs", num_files=num_files)
    ffs = run_smallfile("ffs", num_files=num_files)
    scaling = {
        "lfs": predicted_scaling("lfs", list(speedups), num_files=scaling_files),
        "ffs": predicted_scaling("ffs", list(speedups), num_files=scaling_files),
    }
    return Fig08Result(lfs=lfs, ffs=ffs, scaling=scaling)


# ----------------------------------------------------------------------
# Figure 9 — large files


@dataclass
class Fig09Result:
    """Five-phase bandwidths for both systems."""

    lfs: object
    ffs: object

    def render(self) -> str:
        rows = []
        for phase in PHASES:
            rows.append(
                [
                    phase,
                    f"{self.lfs.phase(phase).kb_per_second:.0f}",
                    f"{self.ffs.phase(phase).kb_per_second:.0f}",
                ]
            )
        return render_table(
            ["phase", "Sprite LFS KB/s", "SunOS (FFS) KB/s"],
            rows,
            title=(
                f"Figure 9 — {self.lfs.file_size // (1024 * 1024)}MB file, "
                f"{self.lfs.io_unit // 1024}KB transfers"
            ),
        )


def fig09_largefile(file_size: int = 100 * 1024 * 1024) -> Fig09Result:
    """Figure 9: the large-file benchmark on both systems."""
    return Fig09Result(
        lfs=run_largefile("lfs", file_size=file_size),
        ffs=run_largefile("ffs", file_size=file_size),
    )


# ----------------------------------------------------------------------
# Figure 10 — production segment-utilization snapshot


def fig10_user6_snapshot(config: ProductionConfig | None = None) -> DistributionResult:
    """Figure 10: /user6's segment utilizations after months of use."""
    cfg = config if config is not None else ProductionConfig()
    res = run_production(cfg)
    result = DistributionResult(
        title=(
            "Figure 10 — segment utilization snapshot of the synthetic "
            f"{res.name} file system (in use: {res.in_use * 100:.0f}%)"
        )
    )
    result.distributions[res.name] = res.seg_utilizations
    return result
