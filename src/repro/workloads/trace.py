"""Operation traces: record, save, load, and replay on any file system.

A trace is a list of logical operations (create/write/read/unlink/
rename/mkdir/truncate). Traces make comparisons airtight — the *same*
operation stream drives LFS and FFS — and persist as JSON lines so a
workload captured once can be replayed forever.

``generate_office_trace`` synthesizes the paper's Section 2.2 office/
engineering profile: accesses dominated by small files, metadata-heavy,
with a hot working set.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceOp:
    """One logical file-system operation.

    ``data_len``/``seed`` describe write payloads compactly: the payload
    is ``data_len`` pseudo-random bytes derived from ``seed``, so traces
    stay small but replay produces verifiable content.
    """

    op: str
    path: str
    path2: str = ""
    offset: int = 0
    data_len: int = 0
    seed: int = 0

    def payload(self) -> bytes:
        if self.data_len == 0:
            return b""
        pattern = bytes((self.seed + i) % 256 for i in range(64))
        repeats = (self.data_len + 63) // 64
        return (pattern * repeats)[: self.data_len]

    def to_json(self) -> str:
        return json.dumps(
            {
                "op": self.op,
                "path": self.path,
                "path2": self.path2,
                "offset": self.offset,
                "len": self.data_len,
                "seed": self.seed,
            }
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceOp":
        raw = json.loads(line)
        return cls(
            op=raw["op"],
            path=raw["path"],
            path2=raw.get("path2", ""),
            offset=raw.get("offset", 0),
            data_len=raw.get("len", 0),
            seed=raw.get("seed", 0),
        )


@dataclass
class Trace:
    """An ordered operation stream."""

    ops: list[TraceOp] = field(default_factory=list)

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            for op in self.ops:
                fh.write(op.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "Trace":
        with open(path) as fh:
            return cls(ops=[TraceOp.from_json(line) for line in fh if line.strip()])

    def __len__(self) -> int:
        return len(self.ops)


@dataclass
class ReplayResult:
    """Outcome of replaying a trace."""

    applied: int = 0
    skipped: int = 0
    elapsed: float = 0.0
    final_files: dict[str, bytes] = field(default_factory=dict)


def replay(fs, trace: Trace, *, verify_model: bool = True) -> ReplayResult:
    """Apply a trace to a file system; returns elapsed simulated time.

    With ``verify_model`` the replay maintains a dict model and returns
    the expected final contents so callers can assert correctness.
    """
    result = ReplayResult()
    model: dict[str, bytes] = {}
    start = fs.disk.clock.now
    for op in trace.ops:
        try:
            if op.op == "mkdir":
                fs.mkdir(op.path)
            elif op.op == "write":
                payload = op.payload()
                if not fs.exists(op.path):
                    fs.create(op.path)
                inum = fs.stat(op.path).inum
                fs.write_inum(inum, payload, op.offset)
                if verify_model:
                    old = model.get(op.path, b"")
                    if len(old) < op.offset:
                        old = old + bytes(op.offset - len(old))
                    model[op.path] = (
                        old[: op.offset] + payload + old[op.offset + len(payload) :]
                    )
            elif op.op == "read":
                fs.read(op.path)
            elif op.op == "unlink":
                fs.unlink(op.path)
                model.pop(op.path, None)
            elif op.op == "truncate":
                fs.truncate(op.path, op.offset)
                if verify_model and op.path in model:
                    model[op.path] = model[op.path][: op.offset]
            elif op.op == "rename":
                fs.rename(op.path, op.path2)
                if verify_model and op.path in model:
                    model[op.path2] = model.pop(op.path)
            else:
                result.skipped += 1
                continue
            result.applied += 1
        except Exception:
            result.skipped += 1
    result.elapsed = fs.disk.clock.now - start
    result.final_files = model
    return result


def generate_office_trace(
    *,
    num_ops: int = 2000,
    num_dirs: int = 8,
    files_per_dir: int = 20,
    mean_file_bytes: int = 8192,
    hot_fraction: float = 0.2,
    read_fraction: float = 0.45,
    seed: int = 0,
) -> Trace:
    """Synthesize an office/engineering trace (paper Section 2.2).

    Small files, lots of metadata traffic, a hot working set receiving
    most of the accesses, whole-file rewrites (editors), and periodic
    create/delete churn (build artifacts, temporaries).
    """
    rng = random.Random(seed)
    trace = Trace()
    paths = []
    for d in range(num_dirs):
        trace.ops.append(TraceOp(op="mkdir", path=f"/w{d}"))
        for f in range(files_per_dir):
            paths.append(f"/w{d}/f{f}")
    hot = paths[: max(1, int(len(paths) * hot_fraction))]

    def pick() -> str:
        return rng.choice(hot) if rng.random() < 0.8 else rng.choice(paths)

    alive: set[str] = set()
    for step in range(num_ops):
        path = pick()
        roll = rng.random()
        if roll < read_fraction and path in alive:
            trace.ops.append(TraceOp(op="read", path=path))
        elif roll < read_fraction + 0.08 and path in alive:
            trace.ops.append(TraceOp(op="unlink", path=path))
            alive.discard(path)
        elif roll < read_fraction + 0.12 and path in alive:
            other = pick()
            if other not in alive and other != path:
                trace.ops.append(TraceOp(op="rename", path=path, path2=other))
                alive.discard(path)
                alive.add(other)
        else:
            size = max(64, int(rng.expovariate(1.0 / mean_file_bytes)))
            trace.ops.append(
                TraceOp(op="write", path=path, data_len=min(size, 262144), seed=step)
            )
            alive.add(path)
    return trace
