"""The large-file benchmark (Figure 9).

Creates one large file with sequential writes, reads it sequentially,
writes the same volume randomly, reads randomly, and finally reads
sequentially again. Both systems are driven with the same transfer unit
so the comparison isolates layout policy: the random-write phase is what
turns LFS's temporal locality against its sequential reread (the one case
the paper reports SunOS winning).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.config import LFSConfig
from repro.core.filesystem import LFS
from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry
from repro.ffs.filesystem import FFS, FFSConfig


@dataclass
class PhaseBandwidth:
    """Bandwidth achieved by one phase."""

    name: str
    nbytes: int
    elapsed: float

    @property
    def kb_per_second(self) -> float:
        return (self.nbytes / 1024.0) / self.elapsed if self.elapsed > 0 else 0.0


@dataclass
class LargeFileResult:
    """All five phases of the benchmark for one system."""

    system: str
    file_size: int
    io_unit: int
    phases: list[PhaseBandwidth] = field(default_factory=list)

    def phase(self, name: str) -> PhaseBandwidth:
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(name)


PHASES = ("seq write", "seq read", "rand write", "rand read", "seq reread")


def _drive(fs, disk: Disk, file_size: int, io_unit: int, system: str, seed: int) -> LargeFileResult:
    rng = random.Random(seed)
    result = LargeFileResult(system=system, file_size=file_size, io_unit=io_unit)
    inum = fs.create("/big")
    chunk = b"a" * io_unit

    def phase(name: str, action) -> None:
        start = disk.clock.now
        action()
        result.phases.append(
            PhaseBandwidth(name=name, nbytes=file_size, elapsed=disk.clock.now - start)
        )

    seq_offsets = list(range(0, file_size, io_unit))
    rand_write_offsets = list(seq_offsets)
    rng.shuffle(rand_write_offsets)
    rand_read_offsets = list(seq_offsets)
    rng.shuffle(rand_read_offsets)

    def seq_write() -> None:
        for off in seq_offsets:
            fs.write_inum(inum, chunk, off)
        fs.sync()

    def seq_read() -> None:
        for off in seq_offsets:
            fs.read_inum(inum, off, io_unit)

    def rand_write() -> None:
        for off in rand_write_offsets:
            fs.write_inum(inum, chunk, off)
        fs.sync()

    def rand_read() -> None:
        for off in rand_read_offsets:
            fs.read_inum(inum, off, io_unit)

    phase("seq write", seq_write)
    phase("seq read", seq_read)
    phase("rand write", rand_write)
    phase("rand read", rand_read)
    phase("seq reread", seq_read)
    return result


def run_largefile(
    system: str = "lfs",
    *,
    file_size: int = 100 * 1024 * 1024,
    io_unit: int = 8192,
    cache_blocks: int | None = None,
    seed: int = 1234,
    geometry: DiskGeometry | None = None,
    config: LFSConfig | None = None,
    obs=None,
) -> LargeFileResult:
    """Run the Figure 9 benchmark on ``"lfs"`` or ``"ffs"``.

    The default cache is far smaller than the file, as on the paper's
    32 MB machine reading a 100 MB file, so reread phases hit the disk.
    ``geometry``/``config`` (LFS only) substitute a different device —
    e.g. :meth:`FlashGeometry.nand` — for what-if comparisons; the
    geometry must keep the default 4096-byte blocks.
    """
    if file_size % io_unit:
        raise ValueError("file_size must be a multiple of io_unit")
    if system == "lfs":
        blocks_needed = (file_size // 4096) * 3 + 8192
        geo = geometry or DiskGeometry.wren4(
            block_size=4096, num_blocks=max(81920, blocks_needed)
        )
        disk = Disk(geo)
        cache = cache_blocks if cache_blocks is not None else 4096  # 16 MB
        fs = LFS.format(
            disk,
            config
            or LFSConfig(
                segment_bytes=1024 * 1024,
                checkpoint_interval=0,
                cache_blocks=cache,
            ),
            obs=obs,
        )
    elif system == "ffs":
        blocks_needed = (file_size // 8192) * 2 + 8192
        geo = DiskGeometry.wren4(block_size=8192, num_blocks=max(40960, blocks_needed))
        disk = Disk(geo)
        cache = cache_blocks if cache_blocks is not None else 2048  # 16 MB
        fs = FFS.format(disk, FFSConfig(cache_blocks=cache), obs=obs)
    else:
        raise ValueError(f"unknown system {system!r} (want 'lfs' or 'ffs')")
    return _drive(fs, disk, file_size, io_unit, system, seed)
