"""A modified-Andrew-benchmark analogue (Section 5 of the paper).

The paper reports that on the modified Andrew benchmark, "Sprite LFS is
only 20% faster than SunOS ... the benchmark has a CPU utilization of
over 80%, limiting the speedup possible from changes in the disk storage
management." The point: on mixed CPU-heavy workloads the file system is
not the bottleneck, so LFS's advantage shrinks to the share of time spent
in metadata writes.

The original benchmark's five phases are modelled with the same balance
of work: make directories, copy a source tree, stat every file, read
every file, and "compile" (CPU-heavy reads plus a few writes). CPU time
dominates, exactly as on the paper's Sun-4/260.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import LFSConfig
from repro.core.filesystem import LFS
from repro.disk.device import Disk
from repro.disk.geometry import CpuModel, DiskGeometry
from repro.ffs.filesystem import FFS, FFSConfig


@dataclass
class AndrewResult:
    """Per-phase and total simulated times for one system."""

    system: str
    phase_times: dict[str, float] = field(default_factory=dict)
    total: float = 0.0
    cpu_time: float = 0.0
    disk_busy: float = 0.0

    @property
    def cpu_utilization(self) -> float:
        return self.cpu_time / self.total if self.total > 0 else 0.0


# a synthetic "source tree": (files per dir, file size) per directory
TREE = [(8, 3000), (12, 8000), (6, 1500), (10, 5000), (9, 2500)]


def _drive(fs, disk: Disk, cpu: CpuModel, system: str) -> AndrewResult:
    result = AndrewResult(system=system)
    start_all = disk.clock.now
    busy0 = disk.stats.busy_time

    def phase(name: str, action) -> None:
        t0 = disk.clock.now
        action()
        result.phase_times[name] = disk.clock.now - t0

    def charge(ops: int = 1) -> None:
        disk.clock.advance(cpu.charge(ops))

    def mkdirs() -> None:
        for d in range(len(TREE)):
            fs.mkdir(f"/src{d}")
            charge()

    def copy() -> None:
        for d, (count, size) in enumerate(TREE):
            for i in range(count):
                fs.write_file(f"/src{d}/file{i}", bytes([d * 16 + i]) * size)
                charge(2)
        fs.sync()

    def scan() -> None:  # "ScanDir": stat every file
        for d, (count, _) in enumerate(TREE):
            for i in range(count):
                fs.stat(f"/src{d}/file{i}")
                charge()

    def read_all() -> None:
        fs.cache.clear_all()
        for d, (count, _) in enumerate(TREE):
            for i in range(count):
                fs.read(f"/src{d}/file{i}")
                charge(2)

    def compile_phase() -> None:
        # heavily CPU-bound: read sources repeatedly, emit a few objects
        for d, (count, _) in enumerate(TREE):
            for i in range(count):
                fs.read(f"/src{d}/file{i}")
                charge(14)  # "compilation" burns CPU
            fs.write_file(f"/src{d}/output.o", b"o" * 12000)
            charge(4)
        fs.sync()

    phase("MakeDir", mkdirs)
    phase("Copy", copy)
    phase("ScanDir", scan)
    phase("ReadAll", read_all)
    phase("Make", compile_phase)

    result.total = disk.clock.now - start_all
    result.cpu_time = cpu.cpu_time
    result.disk_busy = disk.stats.busy_time - busy0
    return result


def run_andrew(
    system: str = "lfs", *, cpu_seconds_per_op: float = 0.02, obs=None
) -> AndrewResult:
    """Run the Andrew-style benchmark on ``"lfs"`` or ``"ffs"``."""
    cpu = CpuModel(seconds_per_op=cpu_seconds_per_op)
    if system == "lfs":
        disk = Disk(DiskGeometry.wren4(num_blocks=32768))
        fs = LFS.format(disk, LFSConfig(max_inodes=4096), obs=obs)
    elif system == "ffs":
        disk = Disk(DiskGeometry.wren4(block_size=8192, num_blocks=16384))
        fs = FFS.format(disk, FFSConfig(max_inodes=4096), obs=obs)
    else:
        raise ValueError(f"unknown system {system!r}")
    return _drive(fs, disk, cpu, system)
