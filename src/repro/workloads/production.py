"""Synthetic production workloads (Table 2, Figure 10).

Table 2 reports four months of cleaning statistics for five production
Sprite LFS disks. The headline — more than half the segments cleaned were
*totally empty*, and write costs of 1.2-1.6 beat the simulator's
prediction — comes from two properties of real traffic the paper calls
out: files are created and deleted *as wholes* (a deleted large file
leaves whole empty segments), and there is a large population of files
that are almost never written (far colder than the simulator's cold
group).

The generators here reproduce those properties, scaled down so a run
completes quickly: lognormal file sizes around the reported mean, a
frozen never-rewritten population, and a die-young lifetime skew for the
churning files. ``/swap2`` gets its own model: large sparse files written
randomly in place (virtual-memory backing store).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.core.config import LFSConfig
from repro.core.filesystem import LFS
from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry


@dataclass
class ProductionConfig:
    """One synthetic production file system.

    Attributes:
        name: label, e.g. "/user6".
        disk_mb: device size (scaled down from the paper's).
        mean_file_kb: mean file size (Table 2's "Avg File Size").
        target_utilization: Table 2's "In Use".
        traffic_mb: total write traffic to generate.
        frozen_fraction: fraction of the initial bytes never touched
            again ("cold segments in reality are much colder than the
            cold segments in the simulations").
        die_young: probability a churn step deletes a recently created
            file rather than a uniformly random one.
        sparse_random: model /swap2 — random in-place block writes to
            large sparse files instead of whole-file create/delete.
        seed: RNG seed.
    """

    name: str = "/user6"
    disk_mb: int = 96
    mean_file_kb: float = 23.5
    target_utilization: float = 0.75
    traffic_mb: int = 192
    frozen_fraction: float = 0.6
    die_young: float = 0.75
    sparse_random: bool = False
    seed: int = 7


@dataclass
class ProductionResult:
    """Measured analogue of one Table 2 row."""

    name: str
    disk_mb: int
    avg_file_kb: float
    traffic_mb: float
    in_use: float
    segments_cleaned: int
    fraction_empty: float
    avg_cleaned_u: float
    write_cost: float
    seg_utilizations: list[float] = field(repr=False, default_factory=list)


# The paper's Table 2, for side-by-side reporting (write cost column).
PAPER_TABLE2 = {
    "/user6": {"in_use": 0.75, "empty": 0.69, "u": 0.133, "write_cost": 1.4},
    "/pcs": {"in_use": 0.63, "empty": 0.52, "u": 0.137, "write_cost": 1.6},
    "/src/kernel": {"in_use": 0.72, "empty": 0.83, "u": 0.122, "write_cost": 1.2},
    "/tmp": {"in_use": 0.11, "empty": 0.78, "u": 0.130, "write_cost": 1.3},
    "/swap2": {"in_use": 0.65, "empty": 0.66, "u": 0.535, "write_cost": 1.6},
}


def default_configs(scale: float = 1.0) -> list[ProductionConfig]:
    """The five Table 2 file systems, scaled by ``scale``."""

    def mb(x: float) -> int:
        return max(32, int(x * scale))

    return [
        ProductionConfig("/user6", mb(96), 23.5, 0.75, mb(192), seed=7),
        ProductionConfig("/pcs", mb(80), 10.5, 0.63, mb(160), seed=8),
        ProductionConfig("/src/kernel", mb(96), 37.5, 0.72, mb(192), frozen_fraction=0.7, die_young=0.85, seed=9),
        ProductionConfig("/tmp", mb(48), 28.9, 0.11, mb(96), frozen_fraction=0.1, die_young=0.9, seed=10),
        ProductionConfig("/swap2", mb(64), 68.1, 0.65, mb(128), sparse_random=True, seed=11),
    ]


def _lognormal_size(rng: random.Random, mean_kb: float) -> int:
    """File sizes: a lognormal body plus a heavy tail of big files.

    The tail matters: the paper's empty-segment phenomenon comes largely
    from files "much longer than a segment" whose whole-file deletion
    yields totally empty segments. The mixture is tuned so the overall
    mean stays near ``mean_kb``: the body carries half of it, the
    occasional multi-segment file the other half.
    """
    tail_mean = 1.1 * 1024 * 1024  # uniform(256KB, 2MB)
    tail_prob = min(0.05, (mean_kb * 1024) / 2.0 / tail_mean)
    if rng.random() < tail_prob:
        return rng.randrange(256 * 1024, 2 * 1024 * 1024)
    body_mean_kb = max(1.0, mean_kb / 2.0)
    sigma = 1.1
    mu = math.log(body_mean_kb * 1024) - sigma * sigma / 2.0
    size = int(rng.lognormvariate(mu, sigma))
    return max(256, min(size, 256 * 1024))


def run_production(config: ProductionConfig, *, obs=None) -> ProductionResult:
    """Drive one synthetic production workload and gather Table 2 stats.

    ``obs`` (a :class:`repro.obs.Observation`) traces the whole run,
    including the aging phase — window it with the counters it carries.
    """
    rng = random.Random(config.seed)
    disk_bytes = config.disk_mb * 1024 * 1024
    geo = DiskGeometry.wren4(num_blocks=disk_bytes // 4096)
    disk = Disk(geo)
    num_segments = disk_bytes // (512 * 1024)
    low_water = max(4, num_segments // 24)
    fs = LFS.format(
        disk,
        LFSConfig(
            segment_bytes=512 * 1024,
            max_inodes=32768,
            checkpoint_interval=30.0,
            cache_blocks=4096,
            clean_low_water=low_water,
            clean_high_water=low_water * 2,
            segments_per_pass=8,
        ),
        obs=obs,
    )
    capacity = fs.layout.num_segments * fs.config.segment_bytes

    # Age the file system first, then measure — the paper waited "several
    # months after putting the file systems into use before beginning the
    # measurements" to eliminate start-up effects.
    driver = _SwapChurn(fs, rng, config, capacity) if config.sparse_random else _FileChurn(
        fs, rng, config, capacity
    )
    driver.age()
    baseline = _Baseline.capture(fs)
    driver.churn(config.traffic_mb * 1024 * 1024)

    fs.checkpoint()
    live_files = fs.imap.live_count
    total_bytes = sum(fs.get_inode(i).size for i in fs.imap.allocated_inums())
    cleaned = fs.cleaner.stats.cleaned_utilizations[baseline.cleaned_count :]
    empty = sum(1 for u in cleaned if u == 0.0)
    nonempty = [u for u in cleaned if u > 0.0]
    return ProductionResult(
        name=config.name,
        disk_mb=config.disk_mb,
        avg_file_kb=(total_bytes / live_files / 1024.0) if live_files else 0.0,
        traffic_mb=config.traffic_mb,
        in_use=fs.disk_capacity_utilization,
        segments_cleaned=len(cleaned),
        fraction_empty=(empty / len(cleaned)) if cleaned else 0.0,
        avg_cleaned_u=(sum(nonempty) / len(nonempty)) if nonempty else 0.0,
        write_cost=baseline.write_cost_since(fs),
        seg_utilizations=fs.segment_utilizations(),
    )


@dataclass
class _Baseline:
    """Counter snapshot taken after the aging phase."""

    total_blocks: int
    cleaner_blocks: int
    checkpoint_blocks: int
    blocks_read: int
    cleaned_count: int

    @classmethod
    def capture(cls, fs: LFS) -> "_Baseline":
        return cls(
            total_blocks=fs.writer.stats.total_blocks,
            cleaner_blocks=fs.writer.stats.cleaner_blocks,
            checkpoint_blocks=fs.stats.checkpoint_region_blocks,
            blocks_read=fs.cleaner.stats.blocks_read,
            cleaned_count=len(fs.cleaner.stats.cleaned_utilizations),
        )

    def write_cost_since(self, fs: LFS) -> float:
        total = (
            (fs.writer.stats.total_blocks - self.total_blocks)
            + (fs.stats.checkpoint_region_blocks - self.checkpoint_blocks)
        )
        reads = fs.cleaner.stats.blocks_read - self.blocks_read
        new = total - (fs.writer.stats.cleaner_blocks - self.cleaner_blocks)
        if new <= 0:
            return 1.0
        return (total + reads) / new


class _FileChurn:
    """Whole-file create/delete churn with a frozen cold population."""

    def __init__(self, fs: LFS, rng: random.Random, config: ProductionConfig, capacity: int) -> None:
        self.fs = fs
        self.rng = rng
        self.config = config
        self.capacity = capacity
        self.target_bytes = int(config.target_utilization * capacity)
        self.next_id = 0
        self.active: list[tuple[int, int]] = []  # (file id, size)
        self.live_bytes = 0
        self._dirs: set[str] = set()

    def _create_one(self) -> int:
        bs = self.fs.config.block_size
        size = _lognormal_size(self.rng, self.config.mean_file_kb)
        size = min(size, max(4096, (self.capacity - self.live_bytes) // 2))
        rounded = ((size + bs - 1) // bs) * bs  # what it occupies on disk
        parent = f"/p{self.next_id % 64}"
        if parent not in self._dirs:
            if not self.fs.exists(parent):
                self.fs.mkdir(parent)
            self._dirs.add(parent)
        self.fs.write_file(f"{parent}/f{self.next_id}", b"d" * size)
        self.active.append((self.next_id, rounded))
        self.next_id += 1
        self.live_bytes += rounded
        return size

    def _delete_one(self) -> None:
        """Delete files with the lifetimes real traffic shows.

        Most deaths are young files deleted as a cohort — builds, editor
        temporaries, simulation outputs are created together and removed
        together — which is what empties whole segments and produces the
        paper's "more than half of the segments cleaned were totally
        empty". The rest are uniformly random middle-aged files.
        """
        if not self.active:
            return
        if self.rng.random() < self.config.die_young and len(self.active) > 16:
            # kill a contiguous run of recently created files
            run = self.rng.randrange(2, 13)
            hi = len(self.active)
            lo = max(0, hi - self.rng.randrange(1, max(2, hi // 16)))
            start = max(0, min(lo, hi - run))
            doomed = self.active[start : start + run]
            del self.active[start : start + run]
        else:
            doomed = [self.active.pop(self.rng.randrange(len(self.active)))]
        for fid, size in doomed:
            path = f"/p{fid % 64}/f{fid}"
            if self.fs.exists(path):
                self.fs.unlink(path)
            self.live_bytes -= size

    def age(self) -> None:
        """Fill to target utilization, freeze the cold files, churn briefly."""
        while self.live_bytes < self.target_bytes:
            self._create_one()
        frozen_bytes = 0
        frozen_target = int(self.config.frozen_fraction * self.live_bytes)
        while self.active and frozen_bytes < frozen_target:
            _, size = self.active.pop(0)
            frozen_bytes += size
        # a short churn to move past the freshly-formatted layout
        self.churn(min(self.capacity // 4, 16 * 1024 * 1024))

    def churn(self, budget: int) -> None:
        """Create/delete whole files until ``budget`` bytes were written."""
        traffic = 0
        while traffic < budget:
            while self.live_bytes > self.target_bytes and self.active:
                self._delete_one()
            traffic += self._create_one()


class _SwapChurn:
    """/swap2: large sparse files, written randomly in place."""

    def __init__(self, fs: LFS, rng: random.Random, config: ProductionConfig, capacity: int) -> None:
        self.fs = fs
        self.rng = rng
        self.config = config
        self.num_files = 40  # one backing file per diskless workstation
        file_bytes = int(config.target_utilization * capacity / self.num_files)
        self.bs = fs.config.block_size
        self.file_blocks = max(1, file_bytes // self.bs)
        self.inums: list[int] = []

    def age(self) -> None:
        """Create the backing files and populate them sparsely."""
        for i in range(self.num_files):
            self.inums.append(self.fs.create(f"/swap{i}"))
        for inum in self.inums:
            for fbn in range(0, self.file_blocks, 2):
                self.fs.write_inum(inum, b"s" * self.bs, fbn * self.bs)

    def churn(self, budget: int) -> None:
        """Page-out traffic: small random runs plus occasional big sweeps.

        The big sequential sweeps model a workstation rebooting or a
        large process exiting and being re-swapped: a whole region is
        rewritten at once, so its previous incarnation — written together
        — dies together, which is where swap's empty cleaned segments
        come from.
        """
        traffic = 0
        while traffic < budget:
            inum = self.inums[self.rng.randrange(self.num_files)]
            if self.rng.random() < 0.20:
                # full re-swap (reboot / big process exit): the file's
                # previous incarnation, contiguous in the log, dies whole
                start, run = 0, self.file_blocks
            else:
                start = self.rng.randrange(self.file_blocks)
                run = self.rng.randrange(1, 8)
            for fbn in range(start, min(start + run, self.file_blocks)):
                self.fs.write_inum(inum, b"w" * self.bs, fbn * self.bs)
                traffic += self.bs
