"""The small-file benchmark (Figure 8).

Creates N one-kilobyte files, reads them back in creation order, then
deletes them, on either file system. All timing is simulated: disk time
comes from the device model, CPU time from a per-operation charge scaled
by a speedup factor — which is how Figure 8(b) predicts that Sprite LFS
(CPU-bound, disk mostly idle) will speed up with faster processors while
SunOS (disk-bound) will not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import LFSConfig
from repro.core.filesystem import LFS
from repro.disk.device import Disk
from repro.disk.geometry import CpuModel, DiskGeometry
from repro.ffs.filesystem import FFS, FFSConfig


@dataclass
class PhaseResult:
    """One phase (create / read / delete) of the benchmark."""

    name: str
    files: int
    elapsed: float
    disk_busy: float
    cpu_busy: float

    @property
    def files_per_second(self) -> float:
        return self.files / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def disk_utilization(self) -> float:
        return min(1.0, self.disk_busy / self.elapsed) if self.elapsed > 0 else 0.0


@dataclass
class SmallFileResult:
    """All phases plus the configuration that produced them."""

    system: str
    num_files: int
    file_size: int
    cpu_speedup: float
    phases: list[PhaseResult] = field(default_factory=list)

    def phase(self, name: str) -> PhaseResult:
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(name)


def _drive(fs, disk: Disk, cpu: CpuModel, num_files: int, file_size: int, system: str) -> SmallFileResult:
    """Run create/read/delete against a mounted file system."""
    payload = b"x" * file_size
    result = SmallFileResult(
        system=system, num_files=num_files, file_size=file_size, cpu_speedup=cpu.speedup
    )
    files_per_dir = 100
    paths = [f"/d{i // files_per_dir}/f{i}" for i in range(num_files)]
    num_dirs = (num_files + files_per_dir - 1) // files_per_dir
    for d in range(num_dirs):
        fs.mkdir(f"/d{d}")

    def charge() -> None:
        disk.clock.advance(cpu.charge())

    def phase(name: str, action) -> None:
        start = disk.clock.now
        busy0 = disk.stats.busy_time
        cpu0 = cpu.cpu_time
        action()
        result.phases.append(
            PhaseResult(
                name=name,
                files=num_files,
                elapsed=disk.clock.now - start,
                disk_busy=disk.stats.busy_time - busy0,
                cpu_busy=cpu.cpu_time - cpu0,
            )
        )

    def do_create() -> None:
        for path in paths:
            inum = fs.create(path)
            fs.write_inum(inum, payload)
            charge()
        fs.sync()

    def do_read() -> None:
        # Cold cache, as in the paper's read phase: the interesting
        # number is how densely each layout packs the files on disk.
        fs.cache.clear_all()
        for path in paths:
            fs.read(path)
            charge()

    def do_delete() -> None:
        for path in paths:
            fs.unlink(path)
            charge()
        fs.sync()

    phase("create", do_create)
    phase("read", do_read)
    phase("delete", do_delete)
    return result


def run_smallfile(
    system: str = "lfs",
    *,
    num_files: int = 10000,
    file_size: int = 1024,
    cpu_speedup: float = 1.0,
    cpu_seconds_per_op: float = 0.004,
    geometry: DiskGeometry | None = None,
    obs=None,
) -> SmallFileResult:
    """Run the Figure 8 benchmark on ``"lfs"`` or ``"ffs"``.

    LFS runs with a 1 KB block size so one-kilobyte files pack densely in
    the log (Sprite packed small files tightly); the FFS baseline uses
    the paper's 8 KB SunOS block size. The returned phases carry disk
    utilization so callers can verify the paper's claim that LFS
    saturates the CPU while FFS saturates the disk.
    """
    cpu = CpuModel(seconds_per_op=cpu_seconds_per_op, speedup=cpu_speedup)
    if system == "lfs":
        geo = geometry if geometry is not None else DiskGeometry.wren4(
            block_size=1024, num_blocks=327680
        )
        disk = Disk(geo)
        fs = LFS.format(
            disk,
            LFSConfig(
                block_size=geo.block_size,
                segment_bytes=512 * 1024,
                max_inodes=max(16384, num_files * 2),
                cache_blocks=16384,
            ),
            obs=obs,
        )
    elif system == "ffs":
        geo = geometry if geometry is not None else DiskGeometry.wren4(
            block_size=8192, num_blocks=40960
        )
        disk = Disk(geo)
        fs = FFS.format(
            disk,
            FFSConfig(
                block_size=geo.block_size,
                max_inodes=max(16384, num_files * 2),
            ),
            obs=obs,
        )
    else:
        raise ValueError(f"unknown system {system!r} (want 'lfs' or 'ffs')")
    return _drive(fs, disk, cpu, num_files, file_size, system)


def predicted_scaling(
    system: str, speedups: list[float], *, num_files: int = 1000, file_size: int = 1024
) -> list[tuple[float, float]]:
    """Figure 8(b): create-phase files/sec at several CPU speedups."""
    out = []
    for s in speedups:
        result = run_smallfile(
            system, num_files=num_files, file_size=file_size, cpu_speedup=s
        )
        out.append((s, result.phase("create").files_per_second))
    return out
