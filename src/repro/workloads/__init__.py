"""Benchmark workload generators for the paper's evaluation section.

Each module drives the real file-system implementations (LFS and the FFS
baseline) on the simulated disk and reports results in simulated time:

- ``smallfile`` — Figure 8's 10000 x 1KB create/read/delete benchmark,
  including the CPU-scaling prediction of Figure 8(b);
- ``largefile`` — Figure 9's 100MB sequential/random phase benchmark;
- ``production`` — Table 2 / Figure 10 synthetic production workloads;
- ``recovery_bench`` — Table 3 crash-recovery timing grid.
"""

from repro.workloads.andrew import AndrewResult, run_andrew
from repro.workloads.largefile import LargeFileResult, run_largefile
from repro.workloads.production import ProductionConfig, ProductionResult, run_production
from repro.workloads.recovery_bench import RecoveryCell, run_recovery_grid
from repro.workloads.smallfile import SmallFileResult, run_smallfile
from repro.workloads.trace import Trace, TraceOp, generate_office_trace, replay

__all__ = [
    "AndrewResult",
    "LargeFileResult",
    "ProductionConfig",
    "ProductionResult",
    "RecoveryCell",
    "SmallFileResult",
    "Trace",
    "TraceOp",
    "generate_office_trace",
    "replay",
    "run_andrew",
    "run_largefile",
    "run_production",
    "run_recovery_grid",
    "run_smallfile",
]
