"""Sprite LFS: the log-structured file system facade.

``LFS`` glues the pieces together: the write-back cache buffers
modifications; flushes turn dirty blocks into partial-segment writes
through the :class:`~repro.core.segments.LogWriter` (data, then indirect
blocks, then inodes, then — at checkpoints — inode-map and segment-usage
blocks); the cleaner regenerates free segments; checkpoints plus
roll-forward provide crash recovery. There is no bitmap and no free list:
free space management is entirely segment-based, as in the paper.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

from repro.core.blocks import checksum
from repro.core.cache import BlockCache
from repro.core.checkpoint import Checkpoint, read_latest_checkpoint, write_checkpoint
from repro.core.cleaner import Cleaner
from repro.core.config import DiskLayout, LFSConfig, compute_layout
from repro.core.constants import NULL_ADDR, PENDING_ADDR, ROOT_INUM, BlockKind, DirOp, FileType
from repro.core import directory as dirfmt
from repro.core.dirlog import DirOpRecord, pack_records
from repro.core.errors import (
    LFSError,
    CorruptionError,
    DirectoryNotEmptyError,
    FileExistsLFSError,
    FileNotFoundLFSError,
    InvalidOperationError,
    IsADirectoryError_,
    MediaError,
    NoSpaceError,
    NotADirectoryError_,
    NotMountedError,
    NVMDeviceFailedError,
    NVMError,
    ReadOnlyError,
)
from repro.core.inode import Inode, inodes_per_block, pack_inode_block, unpack_inode_block
from repro.core.inode_map import InodeMap
from repro.core.mapping import FileMap
from repro.core.nvlog import NVDirOp, NVMeta, NVPatch, pack_body
from repro.core.seg_usage import SegmentUsageTable
from repro.core.segments import LogItem, LogWriter
from repro.core.superblock import Superblock
from repro.disk.device import Disk
from repro.obs.attribution import CHECKPOINT, CLEANING_WRITE, DATA_WRITE, NVM_DESTAGE
from repro.obs.events import CACHE_FLUSH, FLASH_TRIM, FS_SYNC, NVM_FAIL

# Shared no-op context for the untraced path: one instance, no allocation
# per flush when observability is off.
_NULL_CAUSE = nullcontext()


@dataclass
class StatResult:
    """Metadata returned by :meth:`LFS.stat`."""

    inum: int
    ftype: FileType
    size: int
    nlink: int
    mtime: float
    version: int

    @property
    def is_directory(self) -> bool:
        return self.ftype == FileType.DIRECTORY


@dataclass
class LFSStats:
    """Operation counters and derived performance figures."""

    creates: int = 0
    deletes: int = 0
    reads: int = 0
    writes: int = 0
    renames: int = 0
    flushes: int = 0
    checkpoints: int = 0
    checkpoint_region_blocks: int = 0
    ops: int = 0


class _DirState:
    """In-memory image of one directory: per-block entries plus an index."""

    def __init__(self, blocks: list[list[tuple[str, int]]]) -> None:
        self.blocks = blocks
        self.index: dict[str, tuple[int, int]] = {}
        for block_idx, entries in enumerate(blocks):
            for name, inum in entries:
                if inum != 0:
                    self.index[name] = (inum, block_idx)

    def lookup(self, name: str) -> int | None:
        hit = self.index.get(name)
        return hit[0] if hit else None

    def names(self) -> list[str]:
        return sorted(self.index.keys())

    def __len__(self) -> int:
        return len(self.index)


class LFS:
    """A log-structured file system on a simulated disk.

    Use :meth:`format` to create a fresh file system or :meth:`mount` to
    attach to an existing one (optionally rolling the log forward after a
    crash). Paths are ``/``-separated absolute strings.
    """

    def __init__(self, disk: Disk, config: LFSConfig, layout: DiskLayout) -> None:
        self.disk = disk
        self.config = config
        self.layout = layout
        self.usage = SegmentUsageTable(
            layout.num_segments, config.segment_bytes, config.seg_usage_entries_per_block
        )
        self.imap = InodeMap(config.max_inodes, config.imap_entries_per_block)
        self.writer = LogWriter(disk, config, layout, self.usage)
        self.cache = BlockCache(config.cache_blocks)
        self.cleaner = Cleaner(self)
        self.stats = LFSStats()
        # Optional observability hook (repro.obs.Observation); None = off.
        self.obs = None
        self._inodes: dict[int, Inode] = {}
        self._dirty_inodes: set[int] = set()
        self._filemaps: dict[int, FileMap] = {}
        self._dir_states: dict[int, _DirState] = {}
        self._pending_dirops: list[DirOpRecord] = []
        self._dirop_addrs: list[int] = []
        self._checkpoint_seq = 1
        self._next_region_b = False
        self._last_checkpoint_time = disk.clock.now
        self._mounted = False
        self._in_cleaner = False
        self._clean_retry_at = 0
        self._last_checkpoint_log_blocks = 0
        # Dead segments whose TRIM must wait for the next checkpoint:
        # trimming before the usage table's clean verdict is durable
        # could leave recovery reading a trimmed (unreadable) block.
        self._pending_trims: set[int] = set()
        # Sick-disk degradation state: unrecoverable errors seen on the
        # read path; crossing the configured budget flips ``read_only``.
        self.read_only = False
        self.media_errors_seen = 0
        self._read_only_reason: str | None = None
        # NVM write-ahead staging (``config.nvram_staging``): the second
        # persistence domain. ``nvram`` is the staging device (attached by
        # format/mount); the bookkeeping below tracks which pending state
        # the staging log already covers, so each sync stages only the
        # delta since the previous record:
        #  - ``_nvm_staged_dirops``: count of ``_pending_dirops`` entries
        #    already staged (reset when a flush consumes the list);
        #  - ``_nvm_dirty_ranges``: inum -> fbn -> merged (start, end)
        #    byte ranges written since the last record/flush;
        #  - ``_nvm_staged_meta``: inum -> (size, mtime) last staged, so
        #    unchanged metadata is not re-staged every fsync.
        self.nvram = None
        self._nvm_staged_dirops = 0
        self._nvm_dirty_ranges: dict[int, dict[int, list[tuple[int, int]]]] = {}
        self._nvm_staged_meta: dict[int, tuple[int, float]] = {}
        # Segments whose on-disk summaries have been folded into the
        # writer's CRC index (lazy back-fill for pre-mount writes).
        self._crc_indexed_segments: set[int] = set()
        #: log addresses no valid segment summary vouches for — either a
        #: segment's unused tail (never read) or the footprint of a write
        #: whose summary rotted away (reading those blocks as if intact
        #: would be silent corruption, so the read path refuses).
        self._tainted_addrs: set[int] = set()

    # ==================================================================
    # lifecycle

    @classmethod
    def format(
        cls, disk: Disk, config: LFSConfig | None = None, *, obs=None, nvram=None
    ) -> "LFS":
        """mkfs: write a fresh file system and return it mounted.

        ``obs`` (a :class:`repro.obs.Observation`) is attached before the
        first write so the trace covers the whole session, including the
        format-time checkpoint. ``nvram`` (a
        :class:`~repro.disk.nvram.NVMDevice`) supplies the staging board
        when ``config.nvram_staging`` is on; omitted, a default board is
        created sharing the disk's clock.
        """
        config = config if config is not None else LFSConfig()
        if config.block_size != disk.geometry.block_size:
            raise InvalidOperationError(
                f"config block size {config.block_size} != disk block size "
                f"{disk.geometry.block_size}"
            )
        align = getattr(disk.geometry, "erase_block_blocks", 1) or 1
        layout = compute_layout(config, disk.geometry.num_blocks, align=align)
        fs = cls(disk, config, layout)
        fs._attach_nvram(nvram)
        if obs is not None:
            obs.attach(fs)
        sb = Superblock.from_layout(config, layout)
        disk.write_block(0, sb.to_bytes(config.block_size))
        root = Inode(
            inum=ROOT_INUM,
            ftype=FileType.DIRECTORY,
            nlink=1,
            mtime=disk.clock.now,
            ctime=disk.clock.now,
        )
        fs._inodes[ROOT_INUM] = root
        fs._dirty_inodes.add(ROOT_INUM)
        fs._dir_states[ROOT_INUM] = _DirState([])
        fs.imap.get(ROOT_INUM).addr = PENDING_ADDR
        fs.imap._next_inum = ROOT_INUM + 1
        fs._mounted = True
        fs.checkpoint()
        return fs

    @classmethod
    def mount(
        cls,
        disk: Disk,
        config: LFSConfig | None = None,
        *,
        roll_forward: bool = True,
        scavenge: bool = True,
        obs=None,
        nvram=None,
    ) -> "LFS":
        """Attach to an existing file system.

        Geometry parameters come from the superblock; runtime knobs
        (cleaning policy, thresholds, checkpoint interval) come from
        ``config`` if given. With ``roll_forward=False`` the system
        discards everything written after the last checkpoint, like the
        paper's production configuration.

        When *both* checkpoint regions are unreadable the mount falls back
        to the scavenger (:func:`repro.core.recovery.scavenge`), rebuilding
        the inode map and segment usage table from segment summaries alone;
        pass ``scavenge=False`` to surface the :class:`CorruptionError`
        instead.
        """
        sb = Superblock.from_bytes(disk.read_block(0))
        runtime = config if config is not None else LFSConfig()
        merged = LFSConfig(
            block_size=sb.block_size,
            segment_bytes=sb.segment_bytes,
            max_inodes=sb.max_inodes,
            cleaning_policy=runtime.cleaning_policy,
            age_sort=runtime.age_sort,
            clean_low_water=runtime.clean_low_water,
            clean_high_water=runtime.clean_high_water,
            segments_per_pass=runtime.segments_per_pass,
            checkpoint_interval=runtime.checkpoint_interval,
            write_buffer_blocks=runtime.write_buffer_blocks,
            reserved_segments=runtime.reserved_segments,
            cache_blocks=runtime.cache_blocks,
            checkpoint_data_blocks=runtime.checkpoint_data_blocks,
            selective_read_utilization=runtime.selective_read_utilization,
            battery_backed_buffer=runtime.battery_backed_buffer,
            media_error_budget=runtime.media_error_budget,
            hot_cold_segregation=runtime.hot_cold_segregation,
            wear_leveling=runtime.wear_leveling,
            nvram_staging=runtime.nvram_staging,
            nvram_destage_bytes=runtime.nvram_destage_bytes,
            sync_flush_barrier=runtime.sync_flush_barrier,
        )
        align = getattr(disk.geometry, "erase_block_blocks", 1) or 1
        layout = compute_layout(merged, disk.geometry.num_blocks, align=align)
        if layout.num_segments != sb.num_segments or layout.segment_area_start != sb.segment_area_start:
            raise CorruptionError("superblock layout does not match device geometry")
        fs = cls(disk, merged, layout)
        fs._attach_nvram(nvram)
        if obs is not None:
            obs.attach(fs)
        try:
            cp, was_b = read_latest_checkpoint(disk, layout)
        except CorruptionError:
            if not scavenge:
                raise
            from repro.core.recovery import scavenge as do_scavenge

            fs._mounted = True
            fs.last_recovery = do_scavenge(fs)
            # Scavenge rebuilds the same durable state roll-forward would
            # have reached, so staged records replay on top of it too.
            fs._nvm_mount_replay(fs.last_recovery)
            fs.checkpoint()
            return fs
        fs._load_checkpoint(cp, was_b)
        fs._mounted = True
        if roll_forward:
            from repro.core.recovery import roll_forward as do_roll_forward

            report = do_roll_forward(fs, cp)
            fs.last_recovery = report
            fs._nvm_mount_replay(report)
            if (
                report.partial_writes_replayed
                or report.dirops_applied
                or report.nvm_records_replayed
            ):
                fs.checkpoint()
        else:
            # Discarding everything after the checkpoint by contract also
            # discards the staged suffix the records describe.
            fs._nvm_mount_replay(None, discard=True)
        # Capture the CRC index for every in-log segment while its
        # summaries are known-good: a scrub can then convict a block whose
        # own summary rots away later, including the final summary of a
        # segment (nothing after it on disk to expose the break). Indexing
        # that ran during checkpoint loading or roll-forward used the
        # checkpoint's sequence bound, under which post-checkpoint writes
        # look invalid — drop it and re-walk with the final cursor.
        fs._crc_indexed_segments.clear()
        fs._tainted_addrs.clear()
        for seg_no in fs.usage.dirty_segments():
            fs._index_segment_crcs(seg_no)
        return fs

    def _load_checkpoint(self, cp: Checkpoint, was_region_b: bool) -> None:
        """Initialize in-memory state from a checkpoint region."""
        loaded: list[tuple[int, bytes]] = []
        for idx, addr in enumerate(cp.imap_addrs):
            if addr != NULL_ADDR:
                payload = self.disk.read_block(addr)
                self.imap.load_block(idx, payload)
                loaded.append((addr, payload))
            self.imap.block_addrs[idx] = addr
        for idx, addr in enumerate(cp.usage_addrs):
            if addr != NULL_ADDR:
                payload = self.disk.read_block(addr)
                self.usage.load_block(idx, payload)
                loaded.append((addr, payload))
            self.usage.block_addrs[idx] = addr
        self.imap._dirty_blocks.clear()
        for idx in range(self.usage.num_blocks):
            self.usage.clear_dirty(idx)
        self.imap._next_inum = cp.next_inum
        from repro.core.constants import NO_SEGMENT

        next_segment = None if cp.next_segment == NO_SEGMENT else cp.next_segment
        self.writer.restore_cursor(cp.tail_segment, cp.tail_offset, cp.log_seq, next_segment)
        self._checkpoint_seq = cp.seq + 1
        self._next_region_b = not was_region_b
        self._last_checkpoint_time = cp.timestamp
        self.disk.clock.advance_to(cp.timestamp)
        # The map/table blocks came off the log, so their summaries carry
        # per-block CRCs; verify them now that the write cursor (and with
        # it the CRC index's sequence bound) is restored. Rot in
        # checkpoint-referenced metadata becomes a detected mount failure
        # instead of a silently garbage inode map.
        for addr, payload in loaded:
            self._verify_log_payload(addr, payload)

    def _attach_nvram(self, nvram) -> None:
        """Bind the NVM staging board (or build one) when the knob is on.

        The board shares the disk's clock so staging latency and disk
        latency advance the same simulated timeline. Passing a device is
        itself the opt-in — it may hold acknowledged records from before
        a crash, and ignoring it would silently lose them — while the
        ``nvram_staging`` knob governs auto-creating a default board when
        none is supplied.
        """
        if nvram is None:
            if not self.config.nvram_staging:
                self.nvram = None
                return
            from repro.disk.nvram import NVMDevice

            nvram = NVMDevice(clock=self.disk.clock)
        else:
            nvram.clock = self.disk.clock
        self.nvram = nvram

    def unmount(self) -> None:
        """Checkpoint and detach."""
        self._require_mounted()
        self.checkpoint()
        self._mounted = False

    def crash(self) -> None:
        """Simulate an OS crash: all in-memory state is lost.

        The disk keeps whatever was durably written. Use
        :meth:`LFS.mount` afterwards to recover. With
        ``battery_backed_buffer`` the write buffer drains to the log
        before the system halts (unless the disk itself lost power).
        """
        if (
            self._mounted
            and self.config.battery_backed_buffer
            and not self.disk.faults.crashed
        ):
            try:
                self.checkpoint()
            except LFSError:
                pass  # the battery could not save everything; recover normally
        self._mounted = False
        self.cache.clear_all()
        self._inodes.clear()
        self._dirty_inodes.clear()
        self._filemaps.clear()
        self._dir_states.clear()
        self._pending_dirops.clear()
        self._pending_trims.clear()
        # Staging bookkeeping is RAM; the NVM device itself (a second
        # persistence domain) keeps its records for mount-time replay.
        self._nvm_staged_dirops = 0
        self._nvm_dirty_ranges.clear()
        self._nvm_staged_meta.clear()

    @property
    def mounted(self) -> bool:
        """True while the file system accepts operations."""
        return self._mounted

    def _require_mounted(self) -> None:
        if not self._mounted:
            raise NotMountedError("file system is not mounted")

    def _require_writable(self) -> None:
        """Fail fast when the file system has degraded to read-only.

        Internal maintenance (flush, checkpoint, cleaning, rescue) stays
        allowed: persisting quarantine verdicts and already-buffered data
        is safer than stranding them in memory. Only new application
        mutations are refused.
        """
        self._require_mounted()
        if self.read_only:
            raise ReadOnlyError(
                self._read_only_reason
                or f"file system is read-only after {self.media_errors_seen} "
                f"unrecoverable media errors (budget "
                f"{self.config.media_error_budget})"
            )

    def _note_media_error(self) -> None:
        """Count an unrecoverable read-path error against the budget."""
        self.media_errors_seen += 1
        budget = self.config.media_error_budget
        if budget > 0 and self.media_errors_seen >= budget and not self.read_only:
            self.read_only = True
            if self.obs is not None:
                self.obs.emit(
                    "fs.readonly",
                    media_errors=self.media_errors_seen,
                    budget=budget,
                )

    def _degrade_read_only(self, reason: str) -> None:
        """Flip to read-only for a non-media-budget cause (NVM loss).

        Used when acknowledged synchronous writes cannot be proven
        durable — staying writable would let new data stack on top of a
        silently inconsistent acked history.
        """
        if self.read_only:
            return
        self.read_only = True
        self._read_only_reason = f"file system is read-only: {reason}"
        if self.obs is not None:
            self.obs.emit("fs.readonly", reason=reason)

    def _cause(self, name: str):
        """Scope disk time under an attribution cause (no-op when untraced)."""
        if self.obs is None:
            return _NULL_CAUSE
        return self.obs.cause(name)

    def _span(self, name: str, **fields):
        """Named trace span over a block (no-op when untraced)."""
        if self.obs is None:
            return _NULL_CAUSE
        return self.obs.span(name, **fields)

    # ==================================================================
    # inode / filemap access

    def _read_log_block(self, addr: int) -> bytes:
        if addr in (NULL_ADDR, PENDING_ADDR):
            raise CorruptionError(f"attempt to read sentinel address {addr:#x}")
        try:
            payload = self.disk.read_block(addr)
        except MediaError:
            self._note_media_error()
            raise
        self._verify_log_payload(addr, payload)
        return payload

    def _verify_log_payload(self, addr: int, payload: bytes) -> None:
        """Check a log block against the CRC its segment summary recorded."""
        expected = self.writer.block_crcs.get(addr)
        if expected is None and addr >= self.layout.segment_area_start:
            self._index_segment_crcs(self.layout.segment_of(addr))
            expected = self.writer.block_crcs.get(addr)
            if expected is None and addr in self._tainted_addrs:
                # A live block whose summary rotted away: its recorded CRC
                # is gone with the summary, so there is no way to tell
                # intact bytes from rot. Refuse rather than guess.
                self._note_media_error()
                raise CorruptionError(
                    f"block {addr} is not vouched for by any valid segment "
                    f"summary (its summary rotted away); refusing unverifiable "
                    f"read"
                )
        # CRC 0 doubles as "unknown" (images written before per-entry CRCs
        # existed carry zeros in those bytes) — skip verification for it.
        if expected and checksum([payload]) != expected:
            self._note_media_error()
            raise CorruptionError(
                f"checksum mismatch reading block {addr}: stored payload does "
                f"not match the CRC its segment summary recorded (bit-rot?)"
            )

    def _index_segment_crcs(self, seg_no: int) -> None:
        """Back-fill the CRC index from one segment's on-disk summaries.

        Runs once per segment, via :meth:`Disk.peek` — on a real system the
        summary block is read alongside the first access to the segment and
        cached, so no extra simulated I/O is charged. Stale summaries from
        a previous epoch of a reused segment are cut off by the monotonic
        sequence-number rule (global ``seq`` ordering guarantees them
        lower) and by the current-write-cursor bound.
        """
        if seg_no in self._crc_indexed_segments:
            return
        self._crc_indexed_segments.add(seg_no)
        from repro.core.summary import try_parse_summary

        start = self.layout.segment_start(seg_no)
        seg_blocks = self.config.segment_blocks
        offset = 0
        prev_seq = -1
        sink = self.writer.block_crcs
        while offset < seg_blocks:
            raw = self.disk.peek(start + offset)
            summary = try_parse_summary(raw, self.config.block_size)
            if (
                summary is None
                or summary.seq <= prev_seq
                or summary.seq >= self.writer.seq
                or offset + 1 + len(summary.entries) > seg_blocks
            ):
                if (
                    summary is not None
                    and summary.seq > prev_seq
                    and summary.seq >= self.writer.seq
                    and offset + 1 + len(summary.entries) <= seg_blocks
                ):
                    # A write from beyond the restored cursor — the
                    # checkpoint tail before roll-forward has replayed it.
                    # Stale residue always carries a lower seq than the
                    # cursor, so this is not rot: stop without tainting
                    # and let the post-recovery re-index walk it with the
                    # advanced bound.
                    break
                # A parseable summary further on with a later (still
                # in-bounds) seq proves the walk broke on a rotted summary
                # rather than the end of the segment's log: stale residue
                # always carries a lower seq.
                resume = None
                for off in range(offset + 1, seg_blocks):
                    cand = try_parse_summary(
                        self.disk.peek(start + off), self.config.block_size
                    )
                    if (
                        cand is not None
                        and prev_seq < cand.seq < self.writer.seq
                        and off + 1 + len(cand.entries) <= seg_blocks
                    ):
                        resume = off
                        break
                # Nothing from here to the resume point (or segment end)
                # is vouched for by a valid summary. For an unused tail
                # that is moot — no live block points there — but a live
                # block in this range lost its CRC to summary rot and
                # must not be read back as if intact.
                end = resume if resume is not None else seg_blocks
                self._tainted_addrs.update(range(start + offset, start + end))
                if resume is None:
                    break
                offset = resume
                continue
            addr = start + offset
            # setdefault: this session's write-through CRCs are fresher
            # than anything parsed off the platter.
            sink.setdefault(addr, checksum([raw]))
            for i, entry in enumerate(summary.entries):
                if entry.block_crc:
                    sink.setdefault(addr + 1 + i, entry.block_crc)
            prev_seq = summary.seq
            offset += 1 + len(summary.entries)

    def get_inode(self, inum: int) -> Inode:
        """Fetch an inode, reading it from the log if necessary."""
        inode = self._inodes.get(inum)
        if inode is not None:
            return inode
        addr = self.imap.lookup(inum)
        if addr == PENDING_ADDR:
            raise CorruptionError(f"inode {inum} pending but not in memory")
        payload = self._read_log_block(addr)
        for candidate in unpack_inode_block(payload, self.config.block_size):
            if candidate.inum == inum:
                self._inodes[inum] = candidate
                return candidate
        raise CorruptionError(f"inode {inum} not found in its inode block")

    def _mark_inode_dirty(self, inum: int) -> None:
        self._dirty_inodes.add(inum)

    def filemap(self, inum: int) -> FileMap:
        """The (cached) block map for one file."""
        fmap = self._filemaps.get(inum)
        if fmap is None:
            inode = self.get_inode(inum)
            fmap = FileMap(
                inode,
                self.config.block_size,
                self._read_log_block,
                lambda i=inum: self._mark_inode_dirty(i),
            )
            self._filemaps[inum] = fmap
        return fmap

    def block_addr(self, inum: int, fbn: int) -> int:
        """Current log address of a file block (liveness checks)."""
        return self.filemap(inum).get(fbn)

    # ==================================================================
    # path resolution

    @staticmethod
    def _split_path(path: str) -> list[str]:
        if not path.startswith("/"):
            raise InvalidOperationError(f"path {path!r} must be absolute")
        return [part for part in path.split("/") if part]

    def _resolve(self, path: str) -> int:
        """Path -> inode number; raises if any component is missing."""
        inum = ROOT_INUM
        for part in self._split_path(path):
            inode = self.get_inode(inum)
            if not inode.is_directory:
                raise NotADirectoryError_(f"{part!r} looked up under a non-directory")
            child = self._dir_state(inum).lookup(part)
            if child is None:
                raise FileNotFoundLFSError(f"path {path!r}: component {part!r} not found")
            inum = child
        return inum

    def _resolve_parent(self, path: str) -> tuple[int, str]:
        """Path -> (parent directory inum, final component name)."""
        parts = self._split_path(path)
        if not parts:
            raise InvalidOperationError("the root directory has no parent")
        parent_path = "/" + "/".join(parts[:-1])
        parent = self._resolve(parent_path)
        if not self.get_inode(parent).is_directory:
            raise NotADirectoryError_(f"parent of {path!r} is not a directory")
        return parent, parts[-1]

    def exists(self, path: str) -> bool:
        """True if ``path`` names a file or directory."""
        self._require_mounted()
        try:
            self._resolve(path)
            return True
        except (FileNotFoundLFSError, NotADirectoryError_):
            return False

    # ==================================================================
    # directory state

    def _dir_state(self, inum: int) -> _DirState:
        state = self._dir_states.get(inum)
        if state is not None:
            return state
        inode = self.get_inode(inum)
        if not inode.is_directory:
            raise NotADirectoryError_(f"inode {inum} is not a directory")
        blocks: list[list[tuple[str, int]]] = []
        for fbn in range(inode.nblocks(self.config.block_size)):
            payload = self._read_data_block(inum, fbn)
            blocks.append(dirfmt.parse_block(payload))
        state = _DirState(blocks)
        self._dir_states[inum] = state
        return state

    def _dir_write_block(self, dir_inum: int, block_idx: int, state: _DirState) -> None:
        payload = dirfmt.pack_block(
            [e for e in state.blocks[block_idx] if e[1] != 0], self.config.block_size
        )
        now = self.disk.clock.now
        self.cache.write(dir_inum, block_idx, payload, now)
        inode = self.get_inode(dir_inum)
        needed = (block_idx + 1) * self.config.block_size
        if inode.size < needed:
            inode.size = needed
        inode.mtime = now
        self._mark_inode_dirty(dir_inum)

    def _dir_insert(self, dir_inum: int, name: str, file_inum: int) -> None:
        state = self._dir_state(dir_inum)
        if state.lookup(name) is not None:
            raise FileExistsLFSError(f"{name!r} already exists")
        target = None
        if state.blocks and dirfmt.block_has_room(
            state.blocks[-1], name, self.config.block_size
        ):
            target = len(state.blocks) - 1
        else:
            for idx, entries in enumerate(state.blocks):
                if dirfmt.block_has_room(entries, name, self.config.block_size):
                    target = idx
                    break
        if target is None:
            state.blocks.append([])
            target = len(state.blocks) - 1
        state.blocks[target].append((name, file_inum))
        state.index[name] = (file_inum, target)
        self._dir_write_block(dir_inum, target, state)

    def _dir_remove(self, dir_inum: int, name: str) -> int:
        state = self._dir_state(dir_inum)
        hit = state.index.pop(name, None)
        if hit is None:
            raise FileNotFoundLFSError(f"{name!r} not found")
        inum, block_idx = hit
        state.blocks[block_idx] = [e for e in state.blocks[block_idx] if e[0] != name]
        self._dir_write_block(dir_inum, block_idx, state)
        return inum

    # ==================================================================
    # data block access

    def _read_data_block(self, inum: int, fbn: int) -> bytes:
        entry = self.cache.lookup(inum, fbn)
        if entry is not None:
            return entry.payload
        addr = self.filemap(inum).get(fbn)
        if addr == NULL_ADDR:
            payload = bytes(self.config.block_size)
        else:
            payload = self._read_log_block(addr)
        inode = self._inodes.get(inum)
        self.cache.insert_clean(inum, fbn, payload, inode.mtime if inode else 0.0)
        return payload

    # ==================================================================
    # public operations

    def create(self, path: str, *, ftype: FileType = FileType.REGULAR) -> int:
        """Create an empty file (or directory); returns the inode number."""
        self._require_writable()
        parent, name = self._resolve_parent(path)
        dirfmt.validate_name(name)
        if self._dir_state(parent).lookup(name) is not None:
            raise FileExistsLFSError(f"{path!r} already exists")
        inum = self.imap.allocate()
        now = self.disk.clock.now
        inode = Inode(
            inum=inum,
            version=self.imap.version_of(inum),
            ftype=ftype,
            nlink=1,
            mtime=now,
            ctime=now,
        )
        self._inodes[inum] = inode
        self._dirty_inodes.add(inum)
        self.imap.get(inum).addr = PENDING_ADDR
        self.imap._dirty_blocks.add(self.imap.block_of(inum))
        if ftype == FileType.DIRECTORY:
            self._dir_states[inum] = _DirState([])
        self._pending_dirops.append(
            DirOpRecord(op=DirOp.CREATE, file_inum=inum, refcount=1, dir1=parent, name1=name)
        )
        self._dir_insert(parent, name, inum)
        self.stats.creates += 1
        self._after_op()
        return inum

    def mkdir(self, path: str) -> int:
        """Create a directory."""
        return self.create(path, ftype=FileType.DIRECTORY)

    def write(self, path: str, data: bytes, offset: int = 0) -> None:
        """Write ``data`` at ``offset``, extending the file as needed."""
        self._require_mounted()
        inum = self._resolve(path)
        self.write_inum(inum, data, offset)

    def write_inum(self, inum: int, data: bytes, offset: int = 0) -> None:
        """Write by inode number (avoids path resolution in benchmarks)."""
        self._require_writable()
        if offset < 0:
            raise InvalidOperationError("negative offset")
        inode = self.get_inode(inum)
        if inode.is_directory:
            raise IsADirectoryError_(f"inode {inum} is a directory")
        if not data:
            return
        bs = self.config.block_size
        now = self.disk.clock.now
        end = offset + len(data)
        pos = offset
        track = self.nvram is not None
        while pos < end:
            fbn = pos // bs
            block_off = pos % bs
            take = min(bs - block_off, end - pos)
            if take == bs:
                payload = bytes(data[pos - offset : pos - offset + bs])
            else:
                base = bytearray(self._read_data_block(inum, fbn))
                base[block_off : block_off + take] = data[pos - offset : pos - offset + take]
                payload = bytes(base)
            self.cache.write(inum, fbn, payload, now)
            if track:
                self._nvm_note_range(inum, fbn, block_off, block_off + take)
            pos += take
        if end > inode.size:
            inode.size = end
        inode.mtime = now
        self._mark_inode_dirty(inum)
        self.stats.writes += 1
        self._after_op()

    def append(self, path: str, data: bytes) -> None:
        """Append ``data`` to the end of the file."""
        inum = self._resolve(path)
        self.write_inum(inum, data, self.get_inode(inum).size)

    def write_file(self, path: str, data: bytes) -> int:
        """Create (if needed) and write a whole file; returns the inum."""
        self._require_mounted()
        if self.exists(path):
            inum = self._resolve(path)
            self.truncate(path, 0)
        else:
            inum = self.create(path)
        self.write_inum(inum, data)
        return inum

    def read(self, path: str, offset: int = 0, length: int | None = None) -> bytes:
        """Read ``length`` bytes (default: to EOF) starting at ``offset``."""
        self._require_mounted()
        return self.read_inum(self._resolve(path), offset, length)

    def read_inum(self, inum: int, offset: int = 0, length: int | None = None) -> bytes:
        """Read by inode number."""
        self._require_mounted()
        if offset < 0:
            raise InvalidOperationError("negative offset")
        inode = self.get_inode(inum)
        if length is None:
            length = max(0, inode.size - offset)
        end = min(offset + length, inode.size)
        if end <= offset:
            return b""
        bs = self.config.block_size
        chunks = []
        pos = offset
        while pos < end:
            fbn = pos // bs
            block_off = pos % bs
            take = min(bs - block_off, end - pos)
            payload = self._read_data_block(inum, fbn)
            chunks.append(payload[block_off : block_off + take])
            pos += take
        self.imap.set_atime(inum, self.disk.clock.now)
        self.stats.reads += 1
        self._after_op()
        return b"".join(chunks)

    def truncate(self, path: str, size: int = 0) -> None:
        """Shrink a file; truncating to zero bumps the uid version."""
        self._require_writable()
        inum = self._resolve(path)
        inode = self.get_inode(inum)
        if inode.is_directory:
            raise IsADirectoryError_(f"{path!r} is a directory")
        if size < 0 or size > inode.size:
            raise InvalidOperationError(f"cannot truncate to {size}")
        if size == inode.size:
            return
        bs = self.config.block_size
        first_dead_fbn = (size + bs - 1) // bs
        fmap = self.filemap(inum)
        freed = fmap.clear_from(first_dead_fbn, inode.nblocks(bs))
        for _, addr in freed:
            self.usage.remove_live(self.layout.segment_of(addr), bs)
        self.cache.drop_from(inum, first_dead_fbn)
        self._nvm_trim_ranges(inum, first_dead_fbn)
        inode.size = size
        inode.mtime = self.disk.clock.now
        if size == 0:
            inode.version = self.imap.bump_version(inum)
        self._mark_inode_dirty(inum)
        self._after_op()

    def unlink(self, path: str) -> None:
        """Remove a directory entry; frees the file when nlink hits zero."""
        self._require_writable()
        parent, name = self._resolve_parent(path)
        inum = self._dir_state(parent).lookup(name)
        if inum is None:
            raise FileNotFoundLFSError(f"{path!r} not found")
        inode = self.get_inode(inum)
        if inode.is_directory:
            if len(self._dir_state(inum)) != 0:
                raise DirectoryNotEmptyError(f"{path!r} is not empty")
        self._pending_dirops.append(
            DirOpRecord(
                op=DirOp.UNLINK,
                file_inum=inum,
                refcount=inode.nlink - 1,
                dir1=parent,
                name1=name,
            )
        )
        self._dir_remove(parent, name)
        inode.nlink -= 1
        if inode.nlink <= 0:
            self._free_inode(inum)
        else:
            self._mark_inode_dirty(inum)
        self.stats.deletes += 1
        self._after_op()

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        inum = self._resolve(path)
        if not self.get_inode(inum).is_directory:
            raise NotADirectoryError_(f"{path!r} is not a directory")
        self.unlink(path)

    def remove(self, path: str) -> None:
        """Remove a file or empty directory."""
        self.unlink(path)

    def link(self, existing: str, newpath: str) -> None:
        """Create a hard link to an existing regular file."""
        self._require_writable()
        inum = self._resolve(existing)
        inode = self.get_inode(inum)
        if inode.is_directory:
            raise IsADirectoryError_("cannot hard-link a directory")
        parent, name = self._resolve_parent(newpath)
        dirfmt.validate_name(name)
        if self._dir_state(parent).lookup(name) is not None:
            raise FileExistsLFSError(f"{newpath!r} already exists")
        self._pending_dirops.append(
            DirOpRecord(
                op=DirOp.LINK,
                file_inum=inum,
                refcount=inode.nlink + 1,
                dir1=parent,
                name1=name,
            )
        )
        self._dir_insert(parent, name, inum)
        inode.nlink += 1
        self._mark_inode_dirty(inum)
        self._after_op()

    def rename(self, oldpath: str, newpath: str) -> None:
        """Atomically move a file or directory (Section 4.2)."""
        self._require_writable()
        old_parent, old_name = self._resolve_parent(oldpath)
        new_parent, new_name = self._resolve_parent(newpath)
        dirfmt.validate_name(new_name)
        inum = self._dir_state(old_parent).lookup(old_name)
        if inum is None:
            raise FileNotFoundLFSError(f"{oldpath!r} not found")
        displaced = self._dir_state(new_parent).lookup(new_name)
        if displaced == inum:
            return
        inode = self.get_inode(inum)
        if displaced is not None:
            victim = self.get_inode(displaced)
            if victim.is_directory and len(self._dir_state(displaced)):
                raise DirectoryNotEmptyError(f"{newpath!r} is not empty")
            self._pending_dirops.append(
                DirOpRecord(
                    op=DirOp.UNLINK,
                    file_inum=displaced,
                    refcount=victim.nlink - 1,
                    dir1=new_parent,
                    name1=new_name,
                )
            )
        self._pending_dirops.append(
            DirOpRecord(
                op=DirOp.RENAME,
                file_inum=inum,
                refcount=inode.nlink,
                dir1=old_parent,
                name1=old_name,
                dir2=new_parent,
                name2=new_name,
            )
        )
        if displaced is not None:
            victim = self.get_inode(displaced)
            self._dir_remove(new_parent, new_name)
            victim.nlink -= 1
            if victim.nlink <= 0:
                self._free_inode(displaced)
            else:
                self._mark_inode_dirty(displaced)
        self._dir_remove(old_parent, old_name)
        self._dir_insert(new_parent, new_name, inum)
        self.stats.renames += 1
        self._after_op()

    def readdir(self, path: str) -> list[str]:
        """Names in a directory, sorted."""
        self._require_mounted()
        inum = self._resolve(path)
        if not self.get_inode(inum).is_directory:
            raise NotADirectoryError_(f"{path!r} is not a directory")
        return self._dir_state(inum).names()

    def stat(self, path: str) -> StatResult:
        """Attributes of a file or directory."""
        self._require_mounted()
        inum = self._resolve(path)
        inode = self.get_inode(inum)
        return StatResult(
            inum=inum,
            ftype=inode.ftype,
            size=inode.size,
            nlink=inode.nlink,
            mtime=inode.mtime,
            version=inode.version,
        )

    def _free_inode(self, inum: int) -> None:
        """Release an inode and every block it owns."""
        inode = self.get_inode(inum)
        fmap = self.filemap(inum)
        bs = self.config.block_size
        for _, addr in fmap.all_block_addrs(inode.nblocks(bs)):
            self.usage.remove_live(self.layout.segment_of(addr), bs)
        old = self.imap.get(inum).addr
        if old not in (NULL_ADDR, PENDING_ADDR):
            from repro.core.constants import INODE_SIZE

            self.usage.remove_live(self.layout.segment_of(old), INODE_SIZE)
        self.imap.free(inum)
        self.cache.drop_file(inum)
        self._inodes.pop(inum, None)
        self._filemaps.pop(inum, None)
        self._dir_states.pop(inum, None)
        self._dirty_inodes.discard(inum)
        # Staged byte ranges die with the file: the inum may be reused,
        # and a surviving range must never patch a successor's blocks.
        self._nvm_dirty_ranges.pop(inum, None)
        self._nvm_staged_meta.pop(inum, None)

    # ==================================================================
    # flushing and checkpoints

    def _after_op(self) -> None:
        """Post-operation housekeeping: flush, cleaning, and checkpoints."""
        self.stats.ops += 1
        if self.cache.dirty_count >= self.config.write_buffer_blocks:
            self._ensure_space(self.cache.dirty_count + 64)
            self.flush()
        # The paper's threshold policy: start cleaning when clean segments
        # drop below a low-water mark, continue to the high-water mark.
        # If the target is unreachable at the current disk utilization,
        # back off instead of grinding on every operation.
        if (
            not self._in_cleaner
            and self.usage.clean_count < self.config.clean_low_water
            and self.stats.ops >= self._clean_retry_at
        ):
            self.cleaner.clean(self.config.clean_high_water)
            if self.usage.clean_count < self.config.clean_low_water:
                self._clean_retry_at = self.stats.ops + 64
        interval = self.config.checkpoint_interval
        if interval > 0 and self.disk.clock.now - self._last_checkpoint_time >= interval:
            self.checkpoint()
        # Section 4.1's alternative trigger: new data volume since the
        # last checkpoint, bounding recovery time independently of idle
        # periods.
        threshold = self.config.checkpoint_data_blocks
        if threshold > 0 and (
            self.writer.stats.total_blocks - self._last_checkpoint_log_blocks >= threshold
        ):
            self.checkpoint()

    def _ensure_space(self, upcoming_blocks: int) -> None:
        """Clean, if needed, so a flush of ``upcoming_blocks`` can succeed."""
        if self._in_cleaner:
            return
        # Hard floor: the flush itself plus a trailing checkpoint.
        needed_segments = (
            self.writer.blocks_needed(upcoming_blocks) // self.config.segment_blocks + 2
        )
        target = max(self.config.clean_low_water, needed_segments + self.config.reserved_segments)
        if self.usage.clean_count < target:
            self.cleaner.clean(max(self.config.clean_high_water, target))
        if self.usage.clean_count < needed_segments:
            raise NoSpaceError(
                f"need {needed_segments} clean segments, have {self.usage.clean_count}"
            )

    def _build_flush_items(self, *, include_meta: bool, cleaning: bool = False) -> list[LogItem]:
        """Assemble the ordered item list for one flush.

        Order: directory-op log records first (the paper's before-the-
        directory-block guarantee), then data blocks, then indirect
        blocks (children before the double-indirect), then inode blocks,
        then — for checkpoints — inode-map and segment-usage blocks.
        """
        items: list[LogItem] = []
        bs = self.config.block_size
        now = self.disk.clock.now

        # A flush takes every pending dirop and every dirty block, so the
        # NVM staging bookkeeping resets with it: once these items are on
        # disk, nothing the staging log covers is still pending.
        self._nvm_staged_dirops = 0
        self._nvm_dirty_ranges.clear()
        self._nvm_staged_meta.clear()

        # -- directory operation log
        if self._pending_dirops:
            for payload in pack_records(self._pending_dirops, bs):
                items.append(
                    LogItem(
                        kind=BlockKind.DIROP_LOG,
                        mtime=now,
                        get_payload=lambda p=payload: p,
                        on_placed=self._place_dirop,
                    )
                )
            self._pending_dirops = []

        # -- data blocks
        dirty = self.cache.dirty_blocks()
        if cleaning and self.config.age_sort:
            dirty.sort(key=lambda t: (t[2].mtime, t[0], t[1]))
        for inum, fbn, entry in dirty:
            self.filemap(inum).ensure_structures(fbn)
            items.append(
                LogItem(
                    kind=BlockKind.DATA,
                    inum=inum,
                    offset=fbn,
                    version=self.imap.version_of(inum),
                    mtime=entry.mtime,
                    get_payload=lambda e=entry: e.payload,
                    on_placed=lambda addr, i=inum, f=fbn: self._place_data(i, f, addr),
                )
            )

        # -- indirect blocks: children and single-indirects, then doubles
        double_items: list[LogItem] = []
        for inum, fmap in sorted(self._filemaps.items()):
            version = self.imap.version_of(inum)
            mtime = fmap.inode.mtime
            for child_idx in sorted(fmap.dirty_children):
                items.append(
                    LogItem(
                        kind=BlockKind.INDIRECT,
                        inum=inum,
                        offset=1 + child_idx,
                        version=version,
                        mtime=mtime,
                        get_payload=lambda m=fmap, c=child_idx: m.pack_child(c),
                        on_placed=lambda addr, i=inum, m=fmap, c=child_idx: (
                            self._place_indirect(i, m.place_child(c, addr), addr)
                        ),
                    )
                )
            if fmap.l1_dirty:
                items.append(
                    LogItem(
                        kind=BlockKind.INDIRECT,
                        inum=inum,
                        offset=0,
                        version=version,
                        mtime=mtime,
                        get_payload=fmap.pack_l1,
                        on_placed=lambda addr, i=inum, m=fmap: (
                            self._place_indirect(i, m.place_l1(addr), addr)
                        ),
                    )
                )
            if fmap.l2_dirty or (fmap.dirty_children and fmap.inode.dindirect == NULL_ADDR):
                fmap.l2_dirty = True
                double_items.append(
                    LogItem(
                        kind=BlockKind.DINDIRECT,
                        inum=inum,
                        offset=0,
                        version=version,
                        mtime=mtime,
                        get_payload=fmap.pack_l2,
                        on_placed=lambda addr, i=inum, m=fmap: (
                            self._place_indirect(i, m.place_l2(addr), addr)
                        ),
                    )
                )
        items.extend(double_items)

        # -- inode blocks
        dirty_inums = sorted(self._dirty_inodes)
        per_block = inodes_per_block(bs)
        for start in range(0, len(dirty_inums), per_block):
            group = dirty_inums[start : start + per_block]
            items.append(
                LogItem(
                    kind=BlockKind.INODE,
                    inum=group[0],
                    offset=0,
                    mtime=max(self._inodes[i].mtime for i in group),
                    get_payload=lambda g=group: pack_inode_block(
                        [self._inodes[i] for i in g], bs
                    ),
                    on_placed=lambda addr, g=group: self._place_inodes(g, addr),
                )
            )
        self._dirty_inodes.clear()

        if include_meta:
            items.extend(self._build_meta_items())
        return items

    def _build_meta_items(self) -> list[LogItem]:
        """Inode-map and segment-usage blocks (checkpoint flushes only).

        Dirty flags are cleared as blocks are queued: payloads are packed
        after every placement in the flush, so the written image is
        accurate, and anything a placement re-dirties afterwards is picked
        up by the checkpoint's stabilization loop.
        """
        items: list[LogItem] = []
        bs = self.config.block_size
        now = self.disk.clock.now
        for idx in self.imap.dirty_block_indexes():
            self.imap.clear_dirty(idx)
            items.append(
                LogItem(
                    kind=BlockKind.INODE_MAP,
                    offset=idx,
                    mtime=now,
                    get_payload=lambda i=idx: self.imap.pack_block(i, bs),
                    on_placed=lambda addr, i=idx: self._place_map_block(
                        self.imap.block_addrs, i, addr
                    ),
                )
            )
        for idx in self.usage.dirty_block_indexes():
            self.usage.clear_dirty(idx)
            items.append(
                LogItem(
                    kind=BlockKind.SEG_USAGE,
                    offset=idx,
                    mtime=now,
                    get_payload=lambda i=idx: self.usage.pack_block(i, bs),
                    on_placed=lambda addr, i=idx: self._place_map_block(
                        self.usage.block_addrs, i, addr
                    ),
                )
            )
        return items

    # ---- placement callbacks ----------------------------------------

    def _place_dirop(self, addr: int) -> None:
        self._dirop_addrs.append(addr)
        self.usage.add_live(
            self.layout.segment_of(addr), self.config.block_size, self.disk.clock.now
        )

    def _place_data(self, inum: int, fbn: int, addr: int) -> None:
        fmap = self.filemap(inum)
        old = fmap.set(fbn, addr)
        bs = self.config.block_size
        if old != NULL_ADDR:
            self.usage.remove_live(self.layout.segment_of(old), bs)
        # peek, not lookup: placement is internal traffic and must not
        # count toward the application hit rate or reorder the LRU.
        entry = self.cache.peek(inum, fbn)
        mtime = entry.mtime if entry else self.disk.clock.now
        self.usage.add_live(self.layout.segment_of(addr), bs, mtime)
        self.cache.mark_clean(inum, fbn)

    def _place_indirect(self, inum: int, old: int, addr: int) -> None:
        bs = self.config.block_size
        if old != NULL_ADDR:
            self.usage.remove_live(self.layout.segment_of(old), bs)
        self.usage.add_live(self.layout.segment_of(addr), bs, self.disk.clock.now)

    def _place_inodes(self, inums: list[int], addr: int) -> None:
        from repro.core.constants import INODE_SIZE

        for inum in inums:
            old = self.imap.get(inum).addr
            if old not in (NULL_ADDR, PENDING_ADDR):
                self.usage.remove_live(self.layout.segment_of(old), INODE_SIZE)
            self.imap.set_addr(inum, addr)
            inode = self._inodes.get(inum)
            mtime = inode.mtime if inode else self.disk.clock.now
            self.usage.add_live(self.layout.segment_of(addr), INODE_SIZE, mtime)

    def _place_map_block(self, addr_table: list[int], idx: int, addr: int) -> None:
        old = addr_table[idx]
        bs = self.config.block_size
        if old != NULL_ADDR:
            self.usage.remove_live(self.layout.segment_of(old), bs)
        addr_table[idx] = addr
        self.usage.add_live(self.layout.segment_of(addr), bs, self.disk.clock.now)

    # ------------------------------------------------------------------

    def flush(
        self,
        *,
        include_meta: bool = False,
        cleaning: bool = False,
        barrier: bool = False,
        cause: str | None = None,
    ) -> int:
        """Write everything dirty to the log; returns partial writes issued.

        ``barrier`` charges the first partial write half a rotation of
        positioning latency (a synchronous flush issued in isolation);
        ``cause`` overrides the attribution cause (destage flushes charge
        ``nvm_destage`` instead of ``data_write``). Once the flush is on
        disk every staged NVM record is redundant, so the staging log is
        truncated — the write-ahead contract's release point.
        """
        self._require_mounted()
        dirty_before = self.cache.dirty_count
        items = self._build_flush_items(include_meta=include_meta, cleaning=cleaning)
        if not items:
            self._nvm_truncate_after_flush()
            return 0
        if self.obs is not None:
            self.obs.emit(CACHE_FLUSH, dirty=dirty_before, items=len(items), cleaning=cleaning)
        with self._cause(cause or (CLEANING_WRITE if cleaning else DATA_WRITE)):
            writes = self.writer.append(items, cleaning=cleaning, barrier=barrier)
        self.stats.flushes += 1
        self._nvm_truncate_after_flush()
        if self.obs is not None:
            self.obs.timeline_tick()
        return writes

    def sync(self) -> None:
        """Make everything pending durable in *some* domain (no checkpoint).

        With NVM staging enabled, the pending sync set — unstaged
        directory operations, dirty byte ranges, and changed file
        sizes/mtimes — is absorbed into one CRC-framed staging record and
        the call returns without touching the disk log. Otherwise
        (staging off, the record would push the staging log past the
        destage threshold, or the board has failed) everything dirty is
        flushed to the on-disk log synchronously; a destage flush charges
        its disk time to the ``nvm_destage`` cause.
        """
        self._require_mounted()
        staged_bytes = self._nvm_try_stage()
        if staged_bytes is None:
            self._ensure_space(self.cache.dirty_count + len(self._dirty_inodes) + 8)
            destage = self.nvram is not None
            self.flush(
                barrier=self.config.sync_flush_barrier,
                cause=NVM_DESTAGE if destage else None,
            )
        if self.obs is not None:
            self.obs.emit(
                FS_SYNC,
                staged=staged_bytes is not None,
                bytes=staged_bytes or 0,
                unstaged_dirty=self._nvm_uncovered(staged=staged_bytes is not None),
            )

    def fsync(self, path: str) -> None:
        """fsync(2): make ``path``'s acknowledged state durable.

        The path is resolved first (fsync on a deleted file is an error,
        mirroring the VFS's closed-handle check), then the call provides
        the same durability as :meth:`sync`. The staging record — or the
        fallback flush — absorbs the *whole* pending set rather than one
        file's slice: the point of the staging log (and of the log
        itself) is batching, and the crash oracle treats fsync as a full
        barrier, so over-delivering keeps both domains simple and sound.
        """
        self._require_mounted()
        self._resolve(path)
        self.sync()

    def checkpoint(self) -> None:
        """Two-phase checkpoint (Section 4.1).

        Phase one flushes all modified information — data, indirect
        blocks, inodes, inode-map and usage-table blocks — to the log
        (iterating until the usage table's self-referential updates
        settle). Phase two writes a checkpoint region at the alternating
        fixed location, timestamp last.
        """
        self._require_mounted()
        with self._span("checkpoint", seq=self._checkpoint_seq):
            self._ensure_space(
                self.cache.dirty_count
                + len(self._dirty_inodes)
                + self.imap.num_blocks
                + self.usage.num_blocks
                + 8
            )
            self.flush()
            # Now write the inode map and segment usage table. The usage table
            # is self-referential — writing its blocks changes live counts — so
            # iterate until no map block is re-dirtied (converges in 2-3 steps;
            # the cap bounds staleness in pathological cases). The residual
            # flush above charges as ordinary data/cleaning traffic; only the
            # map stabilization and the region write are checkpoint overhead.
            with self._cause(CHECKPOINT):
                for _ in range(8):
                    meta = self._build_meta_items()
                    if not meta:
                        break
                    self.writer.append(meta)
                for idx in range(self.imap.num_blocks):
                    self.imap.clear_dirty(idx)
                for idx in range(self.usage.num_blocks):
                    self.usage.clear_dirty(idx)

                from repro.core.constants import NO_SEGMENT

                now = self.disk.clock.now
                cp = Checkpoint(
                    seq=self._checkpoint_seq,
                    timestamp=now,
                    log_seq=self.writer.seq,
                    tail_segment=self.writer.current_segment
                    if self.writer.current_segment is not None
                    else 0,
                    tail_offset=self.writer.offset,
                    next_segment=self.writer.next_segment
                    if self.writer.next_segment is not None
                    else NO_SEGMENT,
                    next_inum=self.imap._next_inum,
                    imap_addrs=list(self.imap.block_addrs),
                    usage_addrs=list(self.usage.block_addrs),
                )
                write_checkpoint(self.disk, self.layout, cp, region_b=self._next_region_b)
            self.stats.checkpoint_region_blocks += self.layout.checkpoint_blocks
            self._checkpoint_seq += 1
            self._next_region_b = not self._next_region_b
            self._last_checkpoint_time = now
            self._last_checkpoint_log_blocks = self.writer.stats.total_blocks
            self.stats.checkpoints += 1
            # Directory-op log records before this checkpoint are now dead.
            bs = self.config.block_size
            for addr in self._dirop_addrs:
                self.usage.remove_live(self.layout.segment_of(addr), bs)
            self._dirop_addrs = []
            # Segment deaths recorded before this region write are durable
            # now: the usage table just persisted them clean, so recovery
            # can never need their old bytes. Safe to TRIM.
            if self._pending_trims:
                self._drain_pending_trims()
        if self.obs is not None:
            self.obs.timeline_tick()

    def _drain_pending_trims(self) -> None:
        """TRIM deferred dead segments whose death a checkpoint persisted.

        A segment is skipped (and forgotten) if it was reopened by the
        writer or quarantined since its death was recorded; it is trimmed
        only while still clean.
        """
        pending, self._pending_trims = self._pending_trims, set()
        held = self.writer.open_segments()
        for seg_no in sorted(pending):
            rec = self.usage.get(seg_no)
            if not rec.clean or rec.quarantined or seg_no in held:
                continue
            self._trim_segment(seg_no)

    def _trim_segment(self, seg_no: int) -> None:
        """TRIM one dead segment's blocks on a flash disk (no-op elsewhere).

        Callers must only pass segments whose death is durable — a
        checkpoint has already persisted the usage table marking them
        clean — because a trimmed, never-reprogrammed block is unreadable
        by contract and recovery must never want one.
        """
        if self.disk.flash is None:
            return
        start = self.layout.segment_start(seg_no)
        erased = self.disk.trim(start, self.config.segment_blocks)
        if self.obs is not None:
            self.obs.emit(
                FLASH_TRIM,
                segment=seg_no,
                start=start,
                blocks=self.config.segment_blocks,
                erased=erased,
            )

    # ==================================================================
    # NVM write-ahead staging (the second persistence domain)

    def _nvm_note_range(self, inum: int, fbn: int, start: int, end: int) -> None:
        """Record one written byte range (merged with existing ranges)."""
        per_fbn = self._nvm_dirty_ranges.setdefault(inum, {})
        ranges = per_fbn.setdefault(fbn, [])
        ranges.append((start, end))
        if len(ranges) > 1:
            ranges.sort()
            merged = [ranges[0]]
            for s, e in ranges[1:]:
                last_s, last_e = merged[-1]
                if s <= last_e:
                    merged[-1] = (last_s, max(last_e, e))
                else:
                    merged.append((s, e))
            per_fbn[fbn] = merged

    def _nvm_trim_ranges(self, inum: int, first_dead_fbn: int) -> None:
        """Drop staged ranges truncate just invalidated."""
        per_fbn = self._nvm_dirty_ranges.get(inum)
        if not per_fbn:
            return
        for fbn in [f for f in per_fbn if f >= first_dead_fbn]:
            del per_fbn[fbn]
        if not per_fbn:
            del self._nvm_dirty_ranges[inum]

    def _nvm_collect(self) -> tuple[list[NVDirOp], list[NVPatch], list[NVMeta]]:
        """The pending sync set as staging entries (consumes no state).

        Directory operations carry the named inode's file type so replay
        can materialize inodes that never reached the disk log; patches
        carry exactly the dirty byte ranges; metas are emitted only for
        files whose (size, mtime) changed since they were last staged.
        """
        dirops: list[NVDirOp] = []
        for rec in self._pending_dirops[self._nvm_staged_dirops :]:
            inode = self._inodes.get(rec.file_inum)
            ftype = inode.ftype if inode is not None else FileType.REGULAR
            dirops.append(NVDirOp(record=rec, ftype=ftype))
        patches: list[NVPatch] = []
        bs = self.config.block_size
        for inum in sorted(self._nvm_dirty_ranges):
            per_fbn = self._nvm_dirty_ranges[inum]
            for fbn in sorted(per_fbn):
                entry = self.cache.peek(inum, fbn)
                if entry is None:
                    continue  # truncated away since the range was noted
                for start, end in per_fbn[fbn]:
                    patches.append(
                        NVPatch(
                            inum=inum,
                            offset=fbn * bs + start,
                            data=entry.payload[start:end],
                        )
                    )
        metas: list[NVMeta] = []
        for inum in sorted(self._dirty_inodes):
            inode = self._inodes.get(inum)
            if inode is None or inode.is_directory:
                continue
            if self._nvm_staged_meta.get(inum) != (inode.size, inode.mtime):
                metas.append(NVMeta(inum=inum, size=inode.size, mtime=inode.mtime))
        return dirops, patches, metas

    def _nvm_try_stage(self) -> int | None:
        """Absorb the pending sync set into one NVM staging record.

        Returns the staged body size in bytes (0 when nothing was pending
        — acked trivially), or None when the caller must fall back to a
        synchronous flush: staging off, the board has failed, or the
        record would push the staging log past the destage threshold
        (``nvram_destage_bytes``, default one segment).
        """
        nvram = self.nvram
        if nvram is None or nvram.dead:
            return None
        dirops, patches, metas = self._nvm_collect()
        if not dirops and not patches and not metas:
            return 0
        body = pack_body(dirops, patches, metas)
        from repro.disk.nvram import RECORD_OVERHEAD

        limit = min(
            nvram.profile.capacity_bytes,
            self.config.nvram_destage_bytes or self.config.segment_bytes,
        )
        if nvram.used_bytes + RECORD_OVERHEAD + len(body) > limit:
            return None  # destage: batch the staging log out through a flush
        try:
            nvram.append_record(body)
        except NVMDeviceFailedError:
            # The board died under us. Nothing is lost — everything staged
            # is still dirty in the cache — so fall back to flushing.
            self._nvm_note_failure("append")
            return None
        except NVMError:
            return None  # full despite the threshold: destage
        # Consume the markers only once the record is durable.
        self._nvm_staged_dirops = len(self._pending_dirops)
        self._nvm_dirty_ranges.clear()
        for meta in metas:
            self._nvm_staged_meta[meta.inum] = (meta.size, meta.mtime)
        return len(body)

    def _nvm_truncate_after_flush(self) -> None:
        """Release the staging log once a flush made its records redundant.

        Every flush takes the complete dirty set (and dirty blocks are
        never evicted), so after any flush the staged records describe
        only durable state. ``uncovered`` reports what would still be
        pending — the watchdog asserts it is zero
        (nvm-truncate-covered-by-disk).
        """
        nvram = self.nvram
        if nvram is None or nvram.dead or nvram.record_count == 0:
            return
        nvram.truncate_all(uncovered=self._nvm_uncovered(staged=False))

    def _nvm_uncovered(self, *, staged: bool) -> int:
        """Acked-sync state covered by neither domain (invariantly zero).

        ``_dirty_inodes`` is deliberately excluded from the post-flush
        count: data placements re-mark inodes dirty while the flush runs,
        but inode payloads pack lazily *after* every data placement in
        the same flush, so the durable inode already carries the new
        addresses — the lingering dirty flags are conservative
        bookkeeping, not unacknowledged state.
        """
        if staged:
            ranges = sum(
                len(per_fbn)
                for per_fbn in self._nvm_dirty_ranges.values()
            )
            return (len(self._pending_dirops) - self._nvm_staged_dirops) + ranges
        return self.cache.dirty_count + len(self._pending_dirops)

    def _nvm_note_failure(self, reason: str) -> None:
        """Trace an NVM board failure (graceful fallback, not data loss)."""
        if self.obs is not None:
            self.obs.emit(NVM_FAIL, reason=reason)

    def _nvm_mount_replay(self, report, *, discard: bool = False) -> None:
        """Replay (or intentionally discard) staged records at mount time.

        A dead board is indistinguishable from lost acked records, so it
        degrades the mount to read-only; ``discard`` serves
        ``mount(roll_forward=False)``, whose contract already throws away
        the post-checkpoint suffix the records describe.
        """
        nvram = self.nvram
        if nvram is None:
            return
        if nvram.dead:
            self._degrade_read_only(
                "NVM staging device failed; acknowledged synchronous "
                "writes may be lost"
            )
            if report is not None:
                report.nvm_lost = True
            return
        if discard:
            if nvram.record_count:
                nvram.truncate_all(uncovered=0)
            return
        from repro.core.recovery import replay_nvm

        replay_nvm(self, report)

    def clean_now(self, target_clean: int | None = None) -> int:
        """Run the cleaner immediately; returns segments cleaned."""
        self._require_mounted()
        target = target_clean if target_clean is not None else self.config.clean_high_water
        return self.cleaner.clean(target)

    # ==================================================================
    # derived statistics

    @property
    def write_cost(self) -> float:
        """The paper's write cost: total disk traffic per byte of new data.

        ``(log blocks written + cleaner blocks read) / new data blocks``;
        1.0 means the full disk bandwidth went to new data.
        """
        total_written = self.writer.stats.total_blocks + self.stats.checkpoint_region_blocks
        new_data = self.writer.stats.total_blocks - self.writer.stats.cleaner_blocks
        if new_data <= 0:
            return 1.0
        return (total_written + self.cleaner.stats.blocks_read) / new_data

    @property
    def disk_capacity_utilization(self) -> float:
        """Fraction of the segment area occupied by live bytes."""
        total = self.layout.num_segments * self.config.segment_bytes
        return self.usage.total_live_bytes() / total if total else 0.0

    def segment_utilizations(self, *, include_clean: bool = False) -> list[float]:
        """Per-segment utilization snapshot (Figure 10).

        By default only segments that are part of the log are reported;
        ``include_clean`` adds clean segments (as zeros).
        """
        out = []
        for seg_no in range(self.layout.num_segments):
            if self.usage.get(seg_no).clean and not include_clean:
                continue
            out.append(self.usage.utilization(seg_no))
        return out

    def live_data_breakdown(self) -> dict[str, int]:
        """Approximate live bytes on disk by block type (Table 4).

        Walks the inode map and file maps without charging simulated time
        (this is an analysis probe, not file system activity).
        """
        bs = self.config.block_size
        data = indirect = 0
        inodes = self.imap.live_count
        for inum in self.imap.allocated_inums():
            inode = self.get_inode(inum)
            fmap = self.filemap(inum)
            for kind, _ in fmap.all_block_addrs(inode.nblocks(bs)):
                if kind == "data":
                    data += bs
                else:
                    indirect += bs
        from repro.core.constants import INODE_SIZE

        imap_bytes = sum(1 for a in self.imap.block_addrs if a != NULL_ADDR) * bs
        usage_bytes = sum(1 for a in self.usage.block_addrs if a != NULL_ADDR) * bs
        return {
            "data": data,
            "indirect": indirect,
            "inode": inodes * INODE_SIZE,
            "inode_map": imap_bytes,
            "seg_usage": usage_bytes,
            "dirop_log": len(self._dirop_addrs) * bs,
        }

    def log_bandwidth_breakdown(self) -> dict[str, int]:
        """Blocks written to the log by kind since format/mount (Table 4)."""
        kinds = self.writer.stats.blocks_by_kind
        return {
            "data": kinds.get(BlockKind.DATA, 0),
            "indirect": kinds.get(BlockKind.INDIRECT, 0)
            + kinds.get(BlockKind.DINDIRECT, 0),
            "inode": kinds.get(BlockKind.INODE, 0),
            "inode_map": kinds.get(BlockKind.INODE_MAP, 0),
            "seg_usage": kinds.get(BlockKind.SEG_USAGE, 0),
            "dirop_log": kinds.get(BlockKind.DIROP_LOG, 0),
            "summary": kinds.get(BlockKind.SUMMARY, 0),
        }
