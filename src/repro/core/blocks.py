"""Low-level serialization helpers shared by the on-disk structures.

Every structure Sprite LFS puts on disk in this reproduction is real
struct-packed bytes; re-mounting reads them back with these helpers. All
integers are little-endian. Addresses are 8-byte block numbers with
``NULL_ADDR`` (0) meaning "no block".
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterable, Sequence

from repro.core.constants import NULL_ADDR
from repro.core.errors import CorruptionError

_ADDR = struct.Struct("<Q")


def pack_addrs(addrs: Sequence[int], block_size: int) -> bytes:
    """Pack block addresses into one zero-padded block payload."""
    per_block = block_size // 8
    if len(addrs) > per_block:
        raise ValueError(f"{len(addrs)} addresses exceed block capacity {per_block}")
    payload = b"".join(_ADDR.pack(a) for a in addrs)
    return payload.ljust(block_size, b"\0")


def unpack_addrs(payload: bytes, count: int) -> list[int]:
    """Unpack the first ``count`` addresses from a block payload."""
    if count * 8 > len(payload):
        raise CorruptionError(
            f"address block too short: need {count * 8} bytes, have {len(payload)}"
        )
    return list(struct.unpack_from(f"<{count}Q", payload, 0)) if count else []


def pack_addr_list(addrs: Sequence[int], block_size: int) -> list[bytes]:
    """Split an address list across as many blocks as needed."""
    per_block = block_size // 8
    blocks = []
    for start in range(0, len(addrs), per_block):
        blocks.append(pack_addrs(addrs[start : start + per_block], block_size))
    return blocks or [pack_addrs([], block_size)]


def unpack_addr_list(payloads: Iterable[bytes], count: int, block_size: int) -> list[int]:
    """Reassemble ``count`` addresses spread across consecutive blocks."""
    per_block = block_size // 8
    out: list[int] = []
    remaining = count
    for payload in payloads:
        take = min(per_block, remaining)
        out.extend(unpack_addrs(payload, take))
        remaining -= take
        if remaining == 0:
            break
    if remaining:
        raise CorruptionError(f"address list truncated: {remaining} addresses missing")
    return out


def checksum(payloads: Iterable[bytes]) -> int:
    """CRC-32 over a sequence of block payloads.

    Used by segment summaries to make a torn partial-segment write
    self-invalidating during roll-forward.
    """
    crc = 0
    for payload in payloads:
        crc = zlib.crc32(payload, crc)
    return crc & 0xFFFFFFFF


def require(condition: bool, message: str) -> None:
    """Raise :class:`CorruptionError` with ``message`` unless ``condition``."""
    if not condition:
        raise CorruptionError(message)


def is_null(addr: int) -> bool:
    """True if ``addr`` is the null sentinel."""
    return addr == NULL_ADDR
