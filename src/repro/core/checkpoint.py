"""Checkpoint regions (Section 4.1).

A checkpoint region records the addresses of every inode-map and
segment-usage block, the log cursor, and allocation state. There are two
regions at fixed positions; checkpoints alternate between them, and the
checkpoint timestamp lives in the *last* block of the region — so a crash
in the middle of a checkpoint write leaves a stale timestamp and the other
(older but complete) region wins at reboot, exactly as in the paper.

The trailer also carries a CRC over every other block of the region.
Trailer-last alone only survives a *prefix-durable* power cut; a drive
that commits a queued request out of order could persist the trailer
while leaving stale address blocks from two checkpoints ago, yielding a
region that looks complete but points into reused segments. The CRC makes
any torn or reordered mix self-invalidating, so the older complete region
still wins.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.blocks import checksum, pack_addr_list, require, unpack_addr_list
from repro.core.config import DiskLayout
from repro.core.constants import CHECKPOINT_MAGIC
from repro.core.errors import CorruptionError
from repro.disk.device import Disk
from repro.obs.events import CHECKPOINT_WRITE

# header: magic, pad, checkpoint seq, log seq, tail segment, tail offset,
# reserved next segment, next inum hint, n_imap_blocks, n_usage_blocks
_HEADER = struct.Struct("<I4xQQQQQQQQ")
# trailer: magic, pad, checkpoint seq, timestamp, CRC of blocks[:-1]
_TRAILER = struct.Struct("<I4xQdI")


@dataclass
class Checkpoint:
    """Parsed (or to-be-written) checkpoint contents.

    Attributes:
        seq: checkpoint sequence number (monotonic across both regions).
        timestamp: simulated time of the checkpoint.
        log_seq: next partial-write sequence number at checkpoint time;
            roll-forward replays only partial writes with ``seq >= log_seq``.
        tail_segment: segment the log cursor was in.
        tail_offset: blocks used in that segment.
        next_segment: segment reserved as the log's successor
            (``NO_SEGMENT`` if none), for threading.
        next_inum: inode-number allocation hint.
        imap_addrs: log address of every inode-map block.
        usage_addrs: log address of every segment-usage block.
    """

    seq: int
    timestamp: float
    log_seq: int
    tail_segment: int
    tail_offset: int
    next_segment: int
    next_inum: int
    imap_addrs: list[int]
    usage_addrs: list[int]


def write_checkpoint(disk: Disk, layout: DiskLayout, cp: Checkpoint, *, region_b: bool) -> None:
    """Write a checkpoint into region A or B as one streamed request.

    The trailer (timestamp + region CRC) block is last in the request:
    a torn write leaves a stale trailer, and a reordered one leaves a
    trailer whose CRC disowns the stale blocks around it. Either way the
    region reads back invalid and the other region wins.
    """
    block_size = disk.geometry.block_size
    header = _HEADER.pack(
        CHECKPOINT_MAGIC,
        cp.seq,
        cp.log_seq,
        cp.tail_segment,
        cp.tail_offset,
        cp.next_segment,
        cp.next_inum,
        len(cp.imap_addrs),
        len(cp.usage_addrs),
    ).ljust(block_size, b"\0")
    addr_blocks = pack_addr_list(cp.imap_addrs + cp.usage_addrs, block_size)
    body = [header] + addr_blocks
    if len(body) + 1 > layout.checkpoint_blocks:
        raise CorruptionError(
            f"checkpoint needs {len(body) + 1} blocks but the region has "
            f"{layout.checkpoint_blocks}"
        )
    # Pad so the trailer always sits in the region's last block.
    while len(body) + 1 < layout.checkpoint_blocks:
        body.append(bytes(block_size))
    trailer = _TRAILER.pack(
        CHECKPOINT_MAGIC, cp.seq, cp.timestamp, checksum(body)
    ).ljust(block_size, b"\0")
    start = layout.checkpoint_b if region_b else layout.checkpoint_a
    obs = disk.obs
    if obs is not None:
        # Child span of LFS.checkpoint's "checkpoint": just the fixed-
        # location region write, so span trees separate log stabilization
        # cost from the region write itself.
        with obs.span("checkpoint.region", region="B" if region_b else "A"):
            disk.write_blocks(start, body + [trailer])
            obs.emit(
                CHECKPOINT_WRITE,
                seq=cp.seq,
                region="B" if region_b else "A",
                blocks=len(body) + 1,
                timestamp=cp.timestamp,
            )
    else:
        disk.write_blocks(start, body + [trailer])


def read_checkpoint(disk: Disk, layout: DiskLayout, *, region_b: bool) -> Checkpoint:
    """Read and validate one checkpoint region.

    Raises :class:`CorruptionError` when the region is unused, torn, or
    malformed.
    """
    start = layout.checkpoint_b if region_b else layout.checkpoint_a
    blocks = disk.read_blocks(start, layout.checkpoint_blocks)
    header = blocks[0]
    require(len(header) >= _HEADER.size, "checkpoint header truncated")
    (
        magic,
        seq,
        log_seq,
        tail_segment,
        tail_offset,
        next_segment,
        next_inum,
        n_imap,
        n_usage,
    ) = _HEADER.unpack_from(header, 0)
    require(magic == CHECKPOINT_MAGIC, "bad checkpoint header magic")

    trailer = blocks[-1]
    t_magic, t_seq, timestamp, t_crc = _TRAILER.unpack_from(trailer, 0)
    require(t_magic == CHECKPOINT_MAGIC, "bad checkpoint trailer magic")
    require(
        t_seq == seq,
        f"torn checkpoint: header seq {seq} but trailer seq {t_seq}",
    )
    require(
        t_crc == checksum(blocks[:-1]),
        "torn or reordered checkpoint: region contents fail the trailer CRC",
    )

    addrs = unpack_addr_list(blocks[1:-1], n_imap + n_usage, disk.geometry.block_size)
    return Checkpoint(
        seq=seq,
        timestamp=timestamp,
        log_seq=log_seq,
        tail_segment=tail_segment,
        tail_offset=tail_offset,
        next_segment=next_segment,
        next_inum=next_inum,
        imap_addrs=addrs[:n_imap],
        usage_addrs=addrs[n_imap:],
    )


def read_latest_checkpoint(disk: Disk, layout: DiskLayout) -> tuple[Checkpoint, bool]:
    """Read both regions and return (newest valid checkpoint, was_region_b).

    This is the paper's reboot rule: "the system reads both checkpoint
    regions and uses the one with the most recent time."
    """
    candidates: list[tuple[Checkpoint, bool]] = []
    for region_b in (False, True):
        try:
            candidates.append((read_checkpoint(disk, layout, region_b=region_b), region_b))
        except CorruptionError:
            continue
    if not candidates:
        raise CorruptionError("no valid checkpoint region found")
    return max(candidates, key=lambda pair: pair[0].seq)
