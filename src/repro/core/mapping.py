"""Per-file block mapping: direct, single- and double-indirect pointers.

``FileMap`` wraps one inode and answers "where is file block *n*?" It
lazily loads indirect blocks from the log into memory, tracks which of
them are dirty, and — crucially for the log discipline — *pre-creates* any
indirect structures a coming flush will touch, so the flush can queue
every block it needs before placement starts.

Indirect-block identities in segment summaries use a logical index:
index 0 is the single-indirect block; index ``1 + k`` is the k-th child
block under the double-indirect block. The double-indirect (L2) block
itself is a distinct summary kind.
"""

from __future__ import annotations

from repro.core.blocks import pack_addrs, unpack_addrs
from repro.core.constants import NULL_ADDR, NUM_DIRECT
from repro.core.errors import InvalidOperationError
from repro.core.inode import Inode, addrs_per_indirect


class FileMap:
    """Block-address mapping for one file.

    The map calls back into its owner through two hooks supplied at
    construction: ``read_block(addr) -> bytes`` to load an indirect block
    from the log, and ``mark_inode_dirty()`` when a pointer stored in the
    inode itself changes.
    """

    def __init__(self, inode: Inode, block_size: int, read_block, mark_inode_dirty) -> None:
        self.inode = inode
        self.block_size = block_size
        self.per = addrs_per_indirect(block_size)
        self._read_block = read_block
        self._mark_inode_dirty = mark_inode_dirty
        self._l1: list[int] | None = None  # single-indirect contents
        self._l2: list[int] | None = None  # double-indirect contents
        self._children: dict[int, list[int]] = {}  # loaded L1s under L2
        self.l1_dirty = False
        self.l2_dirty = False
        self.dirty_children: set[int] = set()

    # ------------------------------------------------------------------
    # lazy loading

    def _load_l1(self) -> list[int]:
        if self._l1 is None:
            if self.inode.indirect == NULL_ADDR:
                self._l1 = [NULL_ADDR] * self.per
            else:
                payload = self._read_block(self.inode.indirect)
                self._l1 = unpack_addrs(payload, self.per)
        return self._l1

    def _load_l2(self) -> list[int]:
        if self._l2 is None:
            if self.inode.dindirect == NULL_ADDR:
                self._l2 = [NULL_ADDR] * self.per
            else:
                payload = self._read_block(self.inode.dindirect)
                self._l2 = unpack_addrs(payload, self.per)
        return self._l2

    def _load_child(self, child_idx: int) -> list[int]:
        child = self._children.get(child_idx)
        if child is None:
            l2 = self._load_l2()
            addr = l2[child_idx]
            if addr == NULL_ADDR:
                child = [NULL_ADDR] * self.per
            else:
                child = unpack_addrs(self._read_block(addr), self.per)
            self._children[child_idx] = child
        return child

    # ------------------------------------------------------------------
    # mapping

    def _split(self, fbn: int) -> tuple[str, int, int]:
        """Classify a file block number: (level, child index, slot)."""
        if fbn < 0:
            raise InvalidOperationError(f"negative file block number {fbn}")
        if fbn < NUM_DIRECT:
            return "direct", 0, fbn
        idx = fbn - NUM_DIRECT
        if idx < self.per:
            return "single", 0, idx
        idx -= self.per
        if idx < self.per * self.per:
            return "double", idx // self.per, idx % self.per
        raise InvalidOperationError(f"file block {fbn} beyond maximum file size")

    def get(self, fbn: int) -> int:
        """Disk address of file block ``fbn`` (``NULL_ADDR`` if unwritten)."""
        level, child_idx, slot = self._split(fbn)
        if level == "direct":
            return self.inode.direct[slot]
        if level == "single":
            if self.inode.indirect == NULL_ADDR and self._l1 is None:
                return NULL_ADDR
            return self._load_l1()[slot]
        if self.inode.dindirect == NULL_ADDR and self._l2 is None:
            return NULL_ADDR
        if self._load_l2()[child_idx] == NULL_ADDR and child_idx not in self._children:
            return NULL_ADDR
        return self._load_child(child_idx)[slot]

    def set(self, fbn: int, addr: int) -> int:
        """Point file block ``fbn`` at ``addr``; returns the old address.

        Marks the containing structure dirty (the inode for direct
        pointers, the indirect block otherwise).
        """
        level, child_idx, slot = self._split(fbn)
        if level == "direct":
            old = self.inode.direct[slot]
            self.inode.direct[slot] = addr
            self._mark_inode_dirty()
            return old
        if level == "single":
            l1 = self._load_l1()
            old = l1[slot]
            l1[slot] = addr
            self.l1_dirty = True
            return old
        child = self._load_child(child_idx)
        old = child[slot]
        child[slot] = addr
        self.dirty_children.add(child_idx)
        return old

    def ensure_structures(self, fbn: int) -> None:
        """Pre-load/create every indirect block a future ``set(fbn)`` needs.

        Called by the flush builder for each dirty data block so that all
        to-be-dirtied indirect blocks exist (and are marked dirty) before
        any placement happens.
        """
        level, child_idx, _ = self._split(fbn)
        if level == "single":
            self._load_l1()
            self.l1_dirty = True
        elif level == "double":
            self._load_l2()
            self._load_child(child_idx)
            self.dirty_children.add(child_idx)
            self.l2_dirty = True

    # ------------------------------------------------------------------
    # flush support

    def pack_l1(self) -> bytes:
        """Serialize the single-indirect block."""
        return pack_addrs(self._load_l1(), self.block_size)

    def pack_l2(self) -> bytes:
        """Serialize the double-indirect block."""
        return pack_addrs(self._load_l2(), self.block_size)

    def pack_child(self, child_idx: int) -> bytes:
        """Serialize one indirect block under the double-indirect block."""
        return pack_addrs(self._load_child(child_idx), self.block_size)

    def place_l1(self, addr: int) -> int:
        """Record the single-indirect block's new log address."""
        old = self.inode.indirect
        self.inode.indirect = addr
        self._mark_inode_dirty()
        self.l1_dirty = False
        return old

    def place_l2(self, addr: int) -> int:
        """Record the double-indirect block's new log address."""
        old = self.inode.dindirect
        self.inode.dindirect = addr
        self._mark_inode_dirty()
        self.l2_dirty = False
        return old

    def place_child(self, child_idx: int, addr: int) -> int:
        """Record a child indirect block's new log address."""
        l2 = self._load_l2()
        old = l2[child_idx]
        l2[child_idx] = addr
        self.l2_dirty = True
        self.dirty_children.discard(child_idx)
        return old

    # ------------------------------------------------------------------
    # enumeration (delete / truncate / analysis)

    def all_block_addrs(self, nblocks: int) -> list[tuple[str, int]]:
        """Every allocated disk block of the file, as (kind, addr).

        ``kind`` is "data" or "indirect"; used by delete and truncate to
        return live bytes to the segment usage table. ``nblocks`` bounds
        the walk to the file's size.
        """
        out: list[tuple[str, int]] = []
        for fbn in range(min(nblocks, NUM_DIRECT)):
            addr = self.inode.direct[fbn]
            if addr != NULL_ADDR:
                out.append(("data", addr))
        if nblocks > NUM_DIRECT and (
            self.inode.indirect != NULL_ADDR or self._l1 is not None
        ):
            if self.inode.indirect != NULL_ADDR:
                out.append(("indirect", self.inode.indirect))
            l1 = self._load_l1()
            for slot in range(min(nblocks - NUM_DIRECT, self.per)):
                if l1[slot] != NULL_ADDR:
                    out.append(("data", l1[slot]))
        first_double = NUM_DIRECT + self.per
        if nblocks > first_double and (
            self.inode.dindirect != NULL_ADDR or self._l2 is not None
        ):
            if self.inode.dindirect != NULL_ADDR:
                out.append(("indirect", self.inode.dindirect))
            l2 = self._load_l2()
            remaining = nblocks - first_double
            nchildren = (remaining + self.per - 1) // self.per
            for child_idx in range(min(nchildren, self.per)):
                if l2[child_idx] == NULL_ADDR and child_idx not in self._children:
                    continue
                if l2[child_idx] != NULL_ADDR:
                    out.append(("indirect", l2[child_idx]))
                child = self._load_child(child_idx)
                slots = min(remaining - child_idx * self.per, self.per)
                for slot in range(slots):
                    if child[slot] != NULL_ADDR:
                        out.append(("data", child[slot]))
        return out

    def clear_from(self, first_fbn: int, nblocks: int) -> list[tuple[str, int]]:
        """Null out pointers at or past ``first_fbn``; returns freed blocks.

        Used by truncate. Indirect blocks that become entirely unused are
        freed too. ``nblocks`` is the file's current block count.
        """
        freed: list[tuple[str, int]] = []
        for fbn in range(first_fbn, min(nblocks, NUM_DIRECT)):
            if self.inode.direct[fbn] != NULL_ADDR:
                freed.append(("data", self.inode.direct[fbn]))
                self.inode.direct[fbn] = NULL_ADDR
        self._mark_inode_dirty()
        if nblocks > NUM_DIRECT and (
            self.inode.indirect != NULL_ADDR or self._l1 is not None
        ):
            l1 = self._load_l1()
            start = max(0, first_fbn - NUM_DIRECT)
            for slot in range(start, min(nblocks - NUM_DIRECT, self.per)):
                if l1[slot] != NULL_ADDR:
                    freed.append(("data", l1[slot]))
                    l1[slot] = NULL_ADDR
                    self.l1_dirty = True
            if first_fbn <= NUM_DIRECT and self.inode.indirect != NULL_ADDR:
                freed.append(("indirect", self.inode.indirect))
                self.inode.indirect = NULL_ADDR
                self._l1 = None
                self.l1_dirty = False
        first_double = NUM_DIRECT + self.per
        if nblocks > first_double and (
            self.inode.dindirect != NULL_ADDR or self._l2 is not None
        ):
            l2 = self._load_l2()
            remaining = nblocks - first_double
            nchildren = (remaining + self.per - 1) // self.per
            for child_idx in range(min(nchildren, self.per)):
                child_first = first_double + child_idx * self.per
                child_last = child_first + self.per
                if child_last <= first_fbn:
                    continue
                if l2[child_idx] == NULL_ADDR and child_idx not in self._children:
                    continue
                child = self._load_child(child_idx)
                start = max(0, first_fbn - child_first)
                slots = min(remaining - child_idx * self.per, self.per)
                for slot in range(start, slots):
                    if child[slot] != NULL_ADDR:
                        freed.append(("data", child[slot]))
                        child[slot] = NULL_ADDR
                        self.dirty_children.add(child_idx)
                if start == 0:
                    if l2[child_idx] != NULL_ADDR:
                        freed.append(("indirect", l2[child_idx]))
                        l2[child_idx] = NULL_ADDR
                        self.l2_dirty = True
                    self._children.pop(child_idx, None)
                    self.dirty_children.discard(child_idx)
            if first_fbn <= first_double and self.inode.dindirect != NULL_ADDR:
                freed.append(("indirect", self.inode.dindirect))
                self.inode.dindirect = NULL_ADDR
                self._l2 = None
                self.l2_dirty = False
        return freed
