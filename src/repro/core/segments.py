"""The log writer: partial-segment writes (Section 3.2).

``LogWriter`` turns an ordered list of :class:`LogItem` into one or more
partial-segment writes, each a single streamed disk request of
``[summary block][described blocks...]``. Items are placed (addresses
assigned, pointer/accounting callbacks run) before their payloads are
serialized, so blocks whose contents depend on the addresses of earlier
blocks in the same flush — inodes after data, the inode map after inodes —
come out consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.blocks import checksum
from repro.core.config import DiskLayout, LFSConfig
from repro.core.constants import NO_SEGMENT, BlockKind
from repro.core.errors import NoSpaceError
from repro.core.seg_usage import SegmentUsageTable
from repro.core.summary import SegmentSummary, SummaryEntry, summary_capacity
from repro.disk.device import Disk
from repro.obs.events import LOG_SEGMENT_OPEN, LOG_WRITE


@dataclass
class LogItem:
    """One block queued for the log.

    Attributes:
        kind: what the block is (drives the summary entry).
        inum: owning inode number, if any.
        offset: position within the owning structure (file block number,
            indirect index, map block index).
        version: owning file's uid version at write time.
        mtime: the block's modification time; the summary's
            ``youngest_mtime`` is the max over its items, and age-sorting
            orders by this.
        get_payload: produces the final block payload; called only after
            every item in the same partial write has been placed.
        on_placed: called with the assigned disk address; updates
            in-memory pointers (inode/indirect/map) and segment usage
            accounting.
    """

    kind: BlockKind
    inum: int = 0
    offset: int = 0
    version: int = 0
    mtime: float = 0.0
    get_payload: Callable[[], bytes] = lambda: b""
    on_placed: Callable[[int], None] = lambda addr: None


@dataclass
class LogWriteStats:
    """Counters over everything the log writer has emitted."""

    partial_writes: int = 0
    blocks_by_kind: dict[BlockKind, int] = field(default_factory=dict)
    cleaner_blocks: int = 0
    total_blocks: int = 0
    segments_opened: int = 0
    # Hot/cold segregation: blocks routed through the cold cursor and
    # segments it opened (both zero unless the config enables it).
    cold_blocks: int = 0
    cold_segments_opened: int = 0

    def count(self, kind: BlockKind, n: int = 1) -> None:
        self.blocks_by_kind[kind] = self.blocks_by_kind.get(kind, 0) + n
        self.total_blocks += n


class LogWriter:
    """Appends partial-segment writes to the log.

    The writer owns the log cursor (current segment and block offset
    within it) and the global partial-write sequence number, both of which
    are persisted by checkpoints. It takes clean segments from the usage
    table as the log advances; running dry raises :class:`NoSpaceError`
    (the file system is responsible for cleaning *before* flushing).
    """

    def __init__(
        self,
        disk: Disk,
        config: LFSConfig,
        layout: DiskLayout,
        usage: SegmentUsageTable,
    ) -> None:
        self.disk = disk
        self.config = config
        self.layout = layout
        self.usage = usage
        self.stats = LogWriteStats()
        self.current_segment: int | None = None
        self.next_segment: int | None = None  # reserved successor (threading)
        self.offset = 0  # blocks already used in the current segment
        # Second open segment for cold data (``hot_cold_segregation``):
        # cleaner-rewritten blocks — proven survivors, hence cold — land
        # here so they never dilute segments of fresh hot writes. The
        # cold cursor is not persisted by checkpoints: its writes are
        # cleaner output, which recovery ignores until the following
        # checkpoint publishes it, so losing the cursor at worst wastes
        # the open segment's tail until the cleaner reclaims it.
        self.cold_segment: int | None = None
        self.cold_offset = 0
        self.seq = 1  # next partial-write sequence number
        # Write-through CRC index: addr -> CRC-32 of the payload written
        # there (summary blocks included). The read path verifies against
        # this in memory — no extra I/O, so log timing is unchanged — and
        # the file system lazily back-fills it from on-disk summaries for
        # segments written before this mount.
        self.block_crcs: dict[int, int] = {}
        self._capacity = summary_capacity(config.block_size)
        # Segments held back from normal traffic so the cleaner always has
        # workspace; the file system sets ``exempt`` while cleaning.
        self.reserve = config.reserved_segments
        self.exempt = False

    # ------------------------------------------------------------------
    # cursor management

    def restore_cursor(
        self, segment: int, offset: int, seq: int, next_segment: int | None = None
    ) -> None:
        """Resume the log where a checkpoint (or roll-forward) left it."""
        self.current_segment = segment
        self.offset = offset
        self.seq = seq
        self.next_segment = next_segment
        if segment is not None:
            self.usage.mark_in_use(segment)
        if next_segment is not None:
            self.usage.mark_in_use(next_segment)

    def open_segments(self) -> tuple[int, ...]:
        """Segments the writer holds open or reserved (hot, next, cold)."""
        return tuple(
            s
            for s in (self.current_segment, self.next_segment, self.cold_segment)
            if s is not None
        )

    def _remaining_in_segment(self) -> int:
        if self.current_segment is None:
            return 0
        return self.config.segment_blocks - self.offset

    def _remaining_in_cold_segment(self) -> int:
        if self.cold_segment is None:
            return 0
        return self.config.segment_blocks - self.cold_offset

    def _reserve_next(self) -> None:
        """Reserve the segment the log will continue into.

        The successor is chosen *before* the current segment fills so
        every summary written into the current segment can record it —
        this is what threads the log for roll-forward. Normal traffic may
        not dip into the cleaner's reserve.
        """
        if self.next_segment is not None:
            return
        clean = [
            s
            for s in self.usage.clean_segments()
            if s != self.current_segment and s != self.cold_segment
        ]
        if not clean:
            return
        if not self.exempt and len(clean) <= self.reserve:
            raise NoSpaceError(
                f"log reserve reached: {len(clean)} clean segments <= "
                f"reserve of {self.reserve} (the cleaner could not keep up)"
            )
        self.next_segment = clean[0]
        self.usage.mark_in_use(clean[0])

    def _advance_segment(self) -> None:
        """Move the cursor to the reserved (or a fresh) clean segment."""
        if self.next_segment is not None:
            seg = self.next_segment
            self.next_segment = None
            self.usage.mark_in_use(seg)
        else:
            clean = self.usage.clean_segments()
            if not clean:
                raise NoSpaceError("no clean segments left for the log")
            seg = clean[0]
            self.usage.mark_in_use(seg)
        self.current_segment = seg
        self.offset = 0
        self.stats.segments_opened += 1
        if self.disk.obs is not None:
            self.disk.obs.emit(LOG_SEGMENT_OPEN, segment=seg)
        self._reserve_next()

    def _advance_cold_segment(self) -> None:
        """Open a fresh clean segment for the cold (cleaner-output) cursor.

        The cold cursor has no reserved successor and its summaries do
        not thread the log (``next_segment = NO_SEGMENT``): roll-forward
        never needs to walk a cold segment because every cleaning flush
        is followed by a checkpoint before its sources are reclaimed.
        The cleaner runs with the reserve exempt, so this draws straight
        from the clean list.
        """
        exclude = {self.current_segment, self.next_segment, self.cold_segment}
        clean = [s for s in self.usage.clean_segments() if s not in exclude]
        if not clean:
            raise NoSpaceError("no clean segments left for the cold log cursor")
        seg = clean[0]
        self.usage.mark_in_use(seg)
        self.cold_segment = seg
        self.cold_offset = 0
        self.stats.segments_opened += 1
        self.stats.cold_segments_opened += 1
        if self.disk.obs is not None:
            self.disk.obs.emit(LOG_SEGMENT_OPEN, segment=seg, cold=True)

    # ------------------------------------------------------------------
    # writing

    def append(
        self,
        items: list[LogItem],
        *,
        cleaning: bool = False,
        barrier: bool = False,
    ) -> int:
        """Write ``items`` to the log in order; returns partial writes issued.

        ``barrier`` charges the *first* partial write's request half a
        rotation of positioning latency even when it lands sequentially:
        a synchronous flush (fsync with no NVM staging) was issued in
        isolation, so the platter has turned past the head since the
        previous request. Subsequent partial writes of the same flush
        stream back-to-back as usual.

        Items are chunked into partial writes bounded by the space left in
        the current segment and by summary capacity. For each partial
        write: place every item (assign addresses, run callbacks), then
        serialize payloads, then issue one streamed disk write of
        summary + payloads.

        With ``hot_cold_segregation`` enabled, cleaning writes go through
        the *cold* cursor instead of the hot one: cleaner survivors and
        fresh data never share a segment, so survivor segments stay dense
        while hot segments decay toward empty.
        """
        if not items:
            return 0
        cold = cleaning and self.config.hot_cold_segregation
        writes = 0
        pos = 0
        now = self.disk.clock.now
        while pos < len(items):
            if cold:
                if self.cold_segment is None or self._remaining_in_cold_segment() < 2:
                    self._advance_cold_segment()
                segment, offset = self.cold_segment, self.cold_offset
                chain = NO_SEGMENT
            else:
                if self.current_segment is None or self._remaining_in_segment() < 2:
                    self._advance_segment()
                if self.next_segment is None:
                    self._reserve_next()
                segment, offset = self.current_segment, self.offset
                chain = (
                    self.next_segment if self.next_segment is not None else NO_SEGMENT
                )
            room = self.config.segment_blocks - offset - 1  # minus the summary block
            batch = items[pos : pos + min(room, self._capacity)]
            pos += len(batch)

            start_addr = self.layout.segment_start(segment) + offset
            entries = []
            youngest = 0.0
            for i, item in enumerate(batch):
                addr = start_addr + 1 + i
                item.on_placed(addr)
                entries.append(
                    SummaryEntry(
                        kind=item.kind,
                        inum=item.inum,
                        offset=item.offset,
                        version=item.version,
                    )
                )
                if item.mtime > youngest:
                    youngest = item.mtime

            payloads = [item.get_payload() for item in batch]
            summary = SegmentSummary(
                seq=self.seq,
                write_time=now,
                youngest_mtime=youngest,
                entries=entries,
                next_segment=chain,
            )
            summary_block = summary.pack(payloads, self.config.block_size)
            self.block_crcs[start_addr] = checksum([summary_block])
            for i, entry in enumerate(summary.entries):
                self.block_crcs[start_addr + 1 + i] = entry.block_crc

            self.disk.write_blocks(
                start_addr,
                [summary_block] + payloads,
                force_latency=barrier and writes == 0,
            )
            self.usage.add_live(segment, 0, now)  # stamp write time
            obs = self.disk.obs
            if obs is not None:
                # Mirrors the stats.count() calls below exactly, so trace
                # derivation reproduces blocks_by_kind bit-for-bit.
                kinds = {BlockKind.SUMMARY.name: 1}
                for item in batch:
                    kinds[item.kind.name] = kinds.get(item.kind.name, 0) + 1
                evt = dict(
                    segment=segment,
                    seq=self.seq,
                    offset=offset,
                    blocks=1 + len(batch),
                    cleaning=cleaning,
                    kinds=kinds,
                )
                if cold:
                    evt["cold"] = True
                obs.emit(LOG_WRITE, **evt)
            if cold:
                self.cold_offset += 1 + len(batch)
                self.stats.cold_blocks += 1 + len(batch)
            else:
                self.offset += 1 + len(batch)
            self.seq += 1
            writes += 1
            self.stats.partial_writes += 1
            self.stats.count(BlockKind.SUMMARY)
            for item in batch:
                self.stats.count(item.kind)
            if cleaning:
                self.stats.cleaner_blocks += 1 + len(batch)
        return writes

    def blocks_needed(self, item_count: int) -> int:
        """Upper bound on log blocks (items + summaries) for a flush."""
        if item_count == 0:
            return 0
        per_write = min(self._capacity, self.config.segment_blocks - 1)
        writes = (item_count + per_write - 1) // per_write
        return item_count + writes
