"""The segment cleaner (Sections 3.3-3.5).

Mechanism: read segments, identify live blocks from segment summaries
(using the inode-map version for the fast uid check), and rewrite the live
blocks through the normal log write path. Policy: segments are selected
greedily (least utilized) or by cost-benefit, ``(1-u) * age / (1+u)``; live
blocks are optionally age-sorted before rewriting, which segregates cold
data from hot.

A cleaning pass checkpoints before reusing the source segments so that
cleaned segments are never overwritten while an inode on disk still points
into them.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.core.blocks import checksum
from repro.core.config import CleaningPolicy
from repro.core.constants import BlockKind
from repro.core.errors import MediaError, TrimmedBlockError
from repro.core.inode import unpack_inode_block
from repro.core.summary import try_parse_summary
from repro.obs.attribution import CLEANING_READ
from repro.obs.events import CLEAN_PASS, CLEAN_QUARANTINE, CLEAN_SEGMENT
from repro.victims import LazyVictimHeap, partial_sort


class _UnreadablePayload(Exception):
    """Internal sentinel: a rescue declined to supply a damaged payload."""


def _refuse_payload() -> bytes:
    raise _UnreadablePayload()


@dataclass
class CleanerStats:
    """Counters matching the paper's Table 2.

    ``live_blocks_seen`` counts every block the cleaner *identified* as
    live while walking segment summaries (gather or salvage); each such
    block must end up moved, rescued, or lost — the conservation law the
    obs-layer watchdog holds continuously. All four counters update at
    the exact identification/outcome sites, never batched at pass end,
    so the equality holds at every observable instant.
    """

    passes: int = 0
    segments_cleaned: int = 0
    empty_segments_cleaned: int = 0
    blocks_read: int = 0
    live_blocks_seen: int = 0
    live_blocks_moved: int = 0
    selective_segments: int = 0
    cleaned_utilizations: list[float] = field(default_factory=list)
    segments_quarantined: int = 0
    blocks_rescued: int = 0
    blocks_lost: int = 0

    @property
    def fraction_empty(self) -> float:
        """Fraction of cleaned segments that were totally empty."""
        if not self.segments_cleaned:
            return 0.0
        return self.empty_segments_cleaned / self.segments_cleaned

    @property
    def avg_nonempty_utilization(self) -> float:
        """Mean utilization of the non-empty segments cleaned (Table 2's u)."""
        nonempty = [u for u in self.cleaned_utilizations if u > 0.0]
        if not nonempty:
            return 0.0
        return sum(nonempty) / len(nonempty)


class Cleaner:
    """Regenerates clean segments for one :class:`~repro.core.filesystem.LFS`."""

    def __init__(self, fs) -> None:
        self.fs = fs
        self.stats = CleanerStats()
        # Incremental victim selection: a lazy-invalidation heap keyed on
        # clamped live bytes, synced from the usage table's score-dirty
        # set before each selection instead of re-scanning and re-sorting
        # every dirty segment per pass.
        self._victims = LazyVictimHeap()

    # ------------------------------------------------------------------
    # policy

    def _candidates(self) -> list[int]:
        fs = self.fs
        held = fs.writer.open_segments()
        return [seg for seg in fs.usage.dirty_segments() if seg not in held]

    def _sync_victims(self) -> None:
        """Fold usage-table changes since the last selection into the heap."""
        fs = self.fs
        usage = fs.usage
        cap = usage.segment_bytes
        for seg in usage.consume_score_dirty():
            rec = usage.get(seg)
            if rec.clean or rec.quarantined:
                self._victims.remove(seg)
            else:
                # clamped so the ordering matches utilization() exactly,
                # including segments over-accounted past capacity
                self._victims.update(seg, min(rec.live_bytes, cap))

    def _writer_excluded(self, seg: int) -> bool:
        return seg in self.fs.writer.open_segments()

    def select_segments(self, count: int) -> list[int]:
        """Choose up to ``count`` segments to clean under the active policy.

        Totally empty segments are always taken first: reclaiming them
        costs no I/O at all (Section 3.4's u = 0 case), which is why the
        production systems in Table 2 show most cleaned segments empty.

        Victim choice is bit-identical to
        :meth:`select_segments_reference` (the legacy full-sort path,
        kept as the oracle): empties sit at score zero, so the heap
        surfaces them first; under greedy, heap order *is* utilization
        order; under cost-benefit, whose age term moves with the clock
        and cannot be cached, a top-``count`` partial selection replaces
        the full sort.
        """
        fs = self.fs
        self._sync_victims()
        victims = self._victims.select(count, exclude=self._writer_excluded)
        if not victims:
            return []
        empty = [s for s in victims if fs.usage.get(s).live_bytes == 0]
        if empty:
            return empty
        if fs.config.cleaning_policy == CleaningPolicy.GREEDY:
            return victims
        now = fs.disk.clock.now
        return partial_sort(
            self._candidates(), count, key=lambda s: -self._benefit_cost(s, now)
        )

    def select_segments_reference(self, count: int) -> list[int]:
        """Reference oracle: the original full-scan, full-sort selection."""
        fs = self.fs
        candidates = self._candidates()
        if not candidates:
            return []
        empty = [s for s in candidates if fs.usage.get(s).live_bytes == 0]
        if empty:
            return empty[:count]
        now = fs.disk.clock.now
        if fs.config.cleaning_policy == CleaningPolicy.GREEDY:
            candidates.sort(key=lambda s: fs.usage.utilization(s))
        else:
            candidates.sort(key=lambda s: -self._benefit_cost(s, now))
        return candidates[:count]

    def _benefit_cost(self, seg_no: int, now: float) -> float:
        """The paper's cost-benefit ratio: free space * age / cost.

        With ``wear_leveling`` enabled on a flash disk, the ratio is
        multiplied by a small deterministic factor favoring segments on
        *low*-wear erase blocks (cleaning a segment soon re-erases its
        erase blocks, so preferring cold-wear victims spreads erases).
        The factor lives here — not in the heap path — so
        :meth:`select_segments` and :meth:`select_segments_reference`
        stay bit-identical to each other under every configuration.
        """
        u = self.fs.usage.utilization(seg_no)
        age = max(0.0, now - self.fs.usage.get(seg_no).last_write)
        score = (1.0 - u) * age / (1.0 + u)
        if self.fs.config.wear_leveling:
            score *= self._wear_factor(seg_no)
        return score

    def _wear_factor(self, seg_no: int) -> float:
        """Bounded multiplier in [0.9, 1.1]: >1 for low-wear erase blocks."""
        fs = self.fs
        fl = fs.disk.flash
        if fl is None:
            return 1.0
        geom = fs.disk.geometry
        start = fs.layout.segment_start(seg_no)
        first = geom.erase_block_of(start)
        last = geom.erase_block_of(start + fs.config.segment_blocks - 1)
        wear = max(fl.erase_counts[eb] for eb in range(first, last + 1))
        mean = sum(fl.erase_counts) / len(fl.erase_counts)
        return 1.0 + 0.1 * (mean - wear) / (mean + 1.0)

    # ------------------------------------------------------------------
    # mechanism

    def clean(self, target_clean: int) -> int:
        """Clean until ``target_clean`` segments are clean; returns count cleaned."""
        fs = self.fs
        if fs._in_cleaner:
            return 0
        fs._in_cleaner = True
        fs.writer.exempt = True  # cleaning may use the reserved segments
        try:
            cleaned = 0
            checkpointed = False
            while fs.usage.clean_count < target_clean:
                victims = self.select_segments(fs.config.segments_per_pass)
                if not victims:
                    break
                empties = [v for v in victims if fs.usage.get(v).live_bytes == 0]
                if empties:
                    # Pure gain: "need not be read at all" (Section 3.4).
                    obs = fs.disk.obs
                    for seg_no in empties:
                        self.stats.cleaned_utilizations.append(0.0)
                        fs.usage.mark_clean(seg_no)
                        # TRIM only after a checkpoint persists the death:
                        # the drain at checkpoint time handles these.
                        fs._pending_trims.add(seg_no)
                        self.stats.empty_segments_cleaned += 1
                        self.stats.segments_cleaned += 1
                        if obs is not None:
                            obs.emit(
                                CLEAN_SEGMENT, segment=seg_no, utilization=0.0, empty=True
                            )
                    cleaned += len(empties)
                    continue
                if not checkpointed:
                    # Retire pending directory-op records so every block in
                    # the victims is judged against durable state.
                    fs.checkpoint()
                    checkpointed = True
                    continue  # re-select: the checkpoint changed liveness
                chosen = self._fit_to_headroom(victims)
                if not chosen:
                    break
                before = self._free_blocks()
                try:
                    cleaned += self._clean_pass(chosen)
                except MediaError as exc:
                    # A victim turned out to sit on failing media. Salvage
                    # what still verifies and retire the segment; the next
                    # iteration re-selects without it.
                    if exc.addr is None:
                        raise
                    sick = fs.layout.segment_of(exc.addr)
                    rec = fs.usage.get(sick)
                    if self._writer_excluded(sick) or rec.clean or rec.quarantined:
                        raise  # not a victim read — nothing to salvage here
                    self.rescue_segment(sick)
                    continue
                self.stats.passes += 1
                if self._free_blocks() <= before:
                    break  # no net gain: the disk is effectively full
            return cleaned
        finally:
            fs._in_cleaner = False
            fs.writer.exempt = False
            if fs.obs is not None:
                fs.obs.timeline_tick()

    def _free_blocks(self) -> int:
        """Writable blocks: clean segments plus the unused log tail."""
        fs = self.fs
        free = fs.usage.clean_count * fs.config.segment_blocks
        if fs.writer.current_segment is not None:
            free += fs.config.segment_blocks - fs.writer.offset
        if fs.writer.next_segment is not None:
            free += fs.config.segment_blocks
        if fs.writer.cold_segment is not None:
            free += fs.config.segment_blocks - fs.writer.cold_offset
        return free

    @staticmethod
    def _blocks_needed(live: int) -> int:
        """Log blocks one victim's move consumes: the live blocks
        themselves, summary slack, and the inode/map blocks the moves
        dirty. Both the main fit loop and the single-victim fallback
        must use this same margin — a fallback without the ``live // 8``
        term can overflow headroom on a nearly-full disk.
        """
        return live + 4 + live // 8

    def _fit_to_headroom(self, victims: list[int]) -> list[int]:
        """Trim a victim list so its moved data fits the clean segments.

        A cleaning pass consumes log space (the moved live blocks plus a
        checkpoint) *before* the sources are marked clean, so the pass
        must fit in what is currently free.
        """
        fs = self.fs
        seg_blocks = fs.config.segment_blocks
        # Slack for the pass-closing checkpoint: dirty map blocks plus a
        # margin for summaries and map blocks dirtied by the moves.
        slack = (
            16
            + len(fs.imap.dirty_block_indexes())
            + len(fs.usage.dirty_block_indexes())
            + fs.cache.dirty_count
        )
        headroom = self._free_blocks() - slack
        chosen: list[int] = []
        acc = 0
        for seg_no in victims:
            u = fs.usage.utilization(seg_no)
            need = self._blocks_needed(int(u * seg_blocks))
            if chosen and acc + need > headroom:
                break
            if not chosen and need > headroom:
                # Not even one victim fits: try the emptiest candidate
                # instead (maximum net gain per block of headroom).
                fallback = min(self._candidates(), key=fs.usage.utilization)
                fb_live = int(fs.usage.utilization(fallback) * seg_blocks)
                return [fallback] if self._blocks_needed(fb_live) <= headroom else []
            chosen.append(seg_no)
            acc += need
        return chosen

    def _clean_pass(self, victims: list[int]) -> int:
        """Read victims, move their live blocks, and mark them clean."""
        fs = self.fs
        obs = fs.disk.obs
        scope = (
            obs.span("clean.pass", victims=list(victims))
            if obs is not None
            else nullcontext()
        )
        with scope:
            moved = 0
            for seg_no in victims:
                u = fs.usage.utilization(seg_no)
                self.stats.cleaned_utilizations.append(u)
                if obs is not None:
                    obs.emit(CLEAN_SEGMENT, segment=seg_no, utilization=u, empty=False)
                moved += self._gather_live(seg_no)
            if obs is not None:
                obs.emit(CLEAN_PASS, victims=list(victims), moved=moved)
            fs.flush(cleaning=True)
            # Persist the moved inodes/pointers before the sources are reused.
            fs.checkpoint()
            for seg_no in victims:
                fs.usage.mark_clean(seg_no)
                # The moved blocks are durable (checkpoint above), but the
                # clean verdict itself is not yet — defer the TRIM to the
                # next checkpoint's drain so a crash can never recover a
                # trimmed segment that the durable usage table still
                # calls dirty.
                fs._pending_trims.add(seg_no)
                self.stats.segments_cleaned += 1
            return len(victims)

    def _gather_live(self, seg_no: int) -> int:
        """Mark every live block of one segment dirty so a flush moves it.

        Normally the whole segment is read in one streamed request (the
        paper's conservative assumption). When the segment's utilization
        is below ``selective_read_utilization``, only the summary blocks
        and the blocks that prove live are read — the paper's "it may be
        faster to read just the live blocks" optimization.
        """
        fs = self.fs
        seg_blocks = fs.config.segment_blocks
        start = fs.layout.segment_start(seg_no)
        with fs._cause(CLEANING_READ):
            selective = (
                fs.config.selective_read_utilization > 0.0
                and fs.usage.utilization(seg_no) < fs.config.selective_read_utilization
            )
            if fs.disk.flash is not None:
                # On flash there is no seek to amortize, and the unused
                # tail of a trimmed-then-reused segment is unreadable by
                # contract — a streamed whole-segment read would trip on
                # it. Always walk block by block instead.
                selective = True
            if selective:
                blocks = None
                self.stats.selective_segments += 1
            else:
                blocks = fs.disk.read_blocks(start, seg_blocks)
                self.stats.blocks_read += seg_blocks

            def block_at(i: int) -> bytes:
                if blocks is not None:
                    return blocks[i]
                self.stats.blocks_read += 1
                return fs.disk.read_block(start + i)

            moved = 0
            offset = 0
            prev_seq = 0
            while offset < seg_blocks:
                try:
                    raw = block_at(offset)
                except TrimmedBlockError:
                    # Trimmed and never reprogrammed: nothing was written
                    # here this epoch, so the segment's log ends.
                    break
                summary = try_parse_summary(raw, fs.config.block_size)
                bad_walk = (
                    summary is None
                    or summary.seq <= prev_seq
                    or summary.seq >= fs.writer.seq
                    or offset + 1 + len(summary.entries) > seg_blocks
                )
                if bad_walk:
                    # End of the segment's log — unless a later current-
                    # epoch summary exists (peek-located: seqs within an
                    # epoch strictly increase, so stale residue cannot
                    # match), in which case the walk broke on a *rotted*
                    # summary and ending here would strand every live
                    # block after it. Escalate to a rescue instead.
                    for off in range(offset + 1, seg_blocks):
                        cand = try_parse_summary(
                            fs.disk.peek(start + off), fs.config.block_size
                        )
                        if (
                            cand is not None
                            and prev_seq < cand.seq < fs.writer.seq
                            and off + 1 + len(cand.entries) <= seg_blocks
                        ):
                            raise MediaError(
                                "summary block failed to parse mid-segment "
                                "during cleaning",
                                addr=start + offset,
                                op="read",
                            )
                    break
                n = len(summary.entries)
                if blocks is not None and not summary.verify(blocks[offset + 1 : offset + 1 + n]):
                    # A valid current-epoch summary whose payloads fail the
                    # whole-write CRC is bit-rot, not a torn tail (the
                    # active tail segment is never a victim). Ending the
                    # walk here would silently strand every live block
                    # after this point — escalate to a rescue instead.
                    raise MediaError(
                        "segment failed whole-write CRC during cleaning",
                        addr=start + offset,
                        op="read",
                    )
                prev_seq = summary.seq
                for i, entry in enumerate(summary.entries):
                    addr = start + offset + 1 + i

                    def checked_payload(i=i, off=offset, e=entry):
                        p = block_at(off + 1 + i)
                        # Selective reads skip the whole-write CRC, so
                        # verify each lazily fetched payload individually.
                        if (
                            blocks is None
                            and e.block_crc
                            and checksum([p]) != e.block_crc
                        ):
                            raise MediaError(
                                "block failed CRC during selective cleaning",
                                addr=start + off + 1 + i,
                                op="read",
                            )
                        return p

                    if self._revive(entry, addr, checked_payload):
                        self.stats.live_blocks_seen += 1
                        self.stats.live_blocks_moved += 1
                        moved += 1
                offset += 1 + n
            return moved

    # ------------------------------------------------------------------
    # sick-segment rescue

    def rescue_segment(self, seg_no: int) -> tuple[int, int]:
        """Salvage a sick segment's verifiable live blocks, then quarantine.

        Reads the segment block by block (one latent sector must not kill
        the whole walk), verifies every payload against its summary's
        per-block CRC, and re-queues the live survivors through the normal
        log write path. The segment is then quarantined — permanently out
        of both the clean pool and the cleaner's candidate set — and a
        checkpoint persists the verdict and the moved blocks.

        Returns ``(rescued, lost)``: live blocks moved vs. live blocks
        that were unreadable or failed verification with no in-memory
        copy to fall back on.
        """
        fs = self.fs
        rec = fs.usage.get(seg_no)
        if rec.quarantined:
            return (0, 0)
        was_in_cleaner = fs._in_cleaner
        was_exempt = fs.writer.exempt
        fs._in_cleaner = True  # no reentrant cleaning under the rescue
        fs.writer.exempt = True  # the rescue may dip into the reserve
        obs = fs.disk.obs
        scope = (
            obs.span("clean.rescue", segment=seg_no)
            if obs is not None
            else nullcontext()
        )
        try:
            with scope:
                rescued, lost = self._salvage(seg_no)
                fs.flush(cleaning=True)
                fs.usage.quarantine(seg_no)
                self.stats.segments_quarantined += 1
                if obs is not None:
                    obs.emit(
                        CLEAN_QUARANTINE, segment=seg_no, rescued=rescued, lost=lost
                    )
        finally:
            fs._in_cleaner = was_in_cleaner
            fs.writer.exempt = was_exempt
        # Persist outside the exempt scope: an ordinary checkpoint must
        # still fit, or the quarantine has eaten into the hard reserve.
        fs.checkpoint()
        return (rescued, lost)

    def _salvage(self, seg_no: int) -> tuple[int, int]:
        """Walk one sick segment, reviving verifiable live blocks."""
        fs = self.fs
        bs = fs.config.block_size
        seg_blocks = fs.config.segment_blocks
        start = fs.layout.segment_start(seg_no)
        rescued = lost = 0
        with fs._cause(CLEANING_READ):

            def safe_read(i: int) -> bytes | None:
                try:
                    self.stats.blocks_read += 1
                    return fs.disk.read_block(start + i)
                except MediaError:
                    return None

            def find_resume(from_off: int, prev: int) -> int | None:
                # Locate the next current-epoch summary past a damaged one
                # (peek is a locator only; the resumed summary is re-read
                # for real before anything is trusted). Seqs within an
                # epoch strictly increase, so prev < seq < writer.seq
                # cannot match stale residue.
                for off in range(from_off + 1, seg_blocks):
                    cand = try_parse_summary(fs.disk.peek(start + off), bs)
                    if (
                        cand is not None
                        and prev < cand.seq < fs.writer.seq
                        and off + 1 + len(cand.entries) <= seg_blocks
                    ):
                        return off
                return None

            offset = 0
            prev_seq = 0
            while offset < seg_blocks:
                raw = safe_read(offset)
                summary = (
                    try_parse_summary(raw, bs) if raw is not None else None
                )
                if (
                    summary is None
                    or summary.seq <= prev_seq
                    or summary.seq >= fs.writer.seq
                    or offset + 1 + len(summary.entries) > seg_blocks
                ):
                    # An unreadable or invalid summary: the blocks it
                    # described can no longer be identified, but writes
                    # beyond it may still be salvageable.
                    resume = find_resume(offset, prev_seq)
                    if resume is None:
                        break
                    offset = resume
                    continue
                prev_seq = summary.seq
                for i, entry in enumerate(summary.entries):
                    addr = start + offset + 1 + i
                    payload = safe_read(offset + 1 + i)
                    ok = payload is not None and (
                        not entry.block_crc or checksum([payload]) == entry.block_crc
                    )
                    if ok:
                        if self._revive(entry, addr, lambda p=payload: p):
                            self.stats.live_blocks_seen += 1
                            self.stats.blocks_rescued += 1
                            rescued += 1
                        continue
                    if entry.kind in (BlockKind.INODE_MAP, BlockKind.SEG_USAGE):
                        # Regenerated from the in-memory tables; the damaged
                        # payload is never consulted.
                        if self._revive(entry, addr, _refuse_payload):
                            self.stats.live_blocks_seen += 1
                            self.stats.blocks_rescued += 1
                            rescued += 1
                        continue
                    if entry.kind == BlockKind.DATA:
                        cached = fs.cache.peek(entry.inum, entry.offset)
                        if cached is not None and cached.dirty:
                            continue  # a newer copy is already queued
                        try:
                            # A clean cached copy can stand in for the
                            # damaged on-disk block.
                            if self._revive(entry, addr, _refuse_payload):
                                self.stats.live_blocks_seen += 1
                                self.stats.blocks_rescued += 1
                                rescued += 1
                                continue
                        except _UnreadablePayload:
                            pass
                    if self._entry_live(entry, addr):
                        self.stats.live_blocks_seen += 1
                        self.stats.blocks_lost += 1
                        lost += 1
                offset += 1 + len(summary.entries)
        return rescued, lost

    def _entry_live(self, entry, addr: int) -> bool:
        """Liveness probe mirroring :meth:`_revive`, without side effects."""
        fs = self.fs
        kind = entry.kind
        if kind in (BlockKind.DATA, BlockKind.INDIRECT, BlockKind.DINDIRECT):
            if not fs.imap.is_allocated(entry.inum):
                return False
            if fs.imap.version_of(entry.inum) != entry.version:
                return False
            if kind == BlockKind.DATA:
                return fs.block_addr(entry.inum, entry.offset) == addr
            fmap = fs.filemap(entry.inum)
            if kind == BlockKind.DINDIRECT:
                return fmap.inode.dindirect == addr
            if entry.offset == 0:
                return fmap.inode.indirect == addr
            return fmap._load_l2()[entry.offset - 1] == addr
        if kind == BlockKind.INODE:
            return any(
                fs.imap.get(inum).addr == addr for inum in fs.imap.allocated_inums()
            )
        if kind == BlockKind.INODE_MAP:
            return fs.imap.block_addrs[entry.offset] == addr
        if kind == BlockKind.SEG_USAGE:
            return fs.usage.block_addrs[entry.offset] == addr
        return False

    def _revive(self, entry, addr: int, get_payload) -> bool:
        """If the block at ``addr`` is live, queue it for rewriting."""
        fs = self.fs
        kind = entry.kind
        if kind == BlockKind.DATA:
            if not fs.imap.is_allocated(entry.inum):
                return False
            if fs.imap.version_of(entry.inum) != entry.version:
                return False  # the paper's fast uid check: no inode read
            if fs.block_addr(entry.inum, entry.offset) != addr:
                return False
            # peek, not lookup: the cleaner's liveness probe must not
            # count as a cache hit/miss or refresh LRU order.
            cached = fs.cache.peek(entry.inum, entry.offset)
            inode = fs.get_inode(entry.inum)
            if cached is not None:
                if cached.dirty:
                    return False  # a newer copy is already queued
                fs.cache.write(entry.inum, entry.offset, cached.payload, inode.mtime)
            else:
                fs.cache.write(entry.inum, entry.offset, get_payload(), inode.mtime)
            return True
        if kind in (BlockKind.INDIRECT, BlockKind.DINDIRECT):
            if not fs.imap.is_allocated(entry.inum):
                return False
            if fs.imap.version_of(entry.inum) != entry.version:
                return False
            fmap = fs.filemap(entry.inum)
            if kind == BlockKind.DINDIRECT:
                if fmap.inode.dindirect != addr:
                    return False
                fmap._load_l2()
                fmap.l2_dirty = True
                return True
            if entry.offset == 0:
                if fmap.inode.indirect != addr:
                    return False
                fmap._load_l1()
                fmap.l1_dirty = True
                return True
            child_idx = entry.offset - 1
            if fmap._load_l2()[child_idx] != addr:
                return False
            fmap._load_child(child_idx)
            fmap.dirty_children.add(child_idx)
            return True
        if kind == BlockKind.INODE:
            revived = False
            for inode in unpack_inode_block(get_payload(), fs.config.block_size):
                slot = fs.imap.get(inode.inum) if fs.imap.is_allocated(inode.inum) else None
                if slot is None or slot.addr != addr or slot.version != inode.version:
                    continue
                if inode.inum not in fs._inodes:
                    fs._inodes[inode.inum] = inode
                fs._dirty_inodes.add(inode.inum)
                revived = True
            return revived
        if kind == BlockKind.INODE_MAP:
            if fs.imap.block_addrs[entry.offset] == addr:
                fs.imap._dirty_blocks.add(entry.offset)
                return True
            return False
        if kind == BlockKind.SEG_USAGE:
            if fs.usage.block_addrs[entry.offset] == addr:
                fs.usage._dirty_blocks.add(entry.offset)
                return True
            return False
        # DIROP blocks are dead once the pass's opening checkpoint ran;
        # SUMMARY entries never appear inside summaries.
        return False
