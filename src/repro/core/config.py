"""Configuration and on-disk layout for Sprite LFS.

The layout is: block 0 holds the superblock, followed by the two fixed
checkpoint regions (Section 4.1), followed by the segment area which fills
the rest of the device. Everything else lives in the log.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.constants import INODE_MAP_ENTRY_SIZE, SEG_USAGE_ENTRY_SIZE


class CleaningPolicy(enum.Enum):
    """Which segments the cleaner selects (Section 3.4, policy 3)."""

    GREEDY = "greedy"
    COST_BENEFIT = "cost-benefit"


@dataclass
class LFSConfig:
    """Tunable parameters of a Sprite LFS instance.

    Defaults follow the paper: 4 KB blocks, 512 KB segments, cost-benefit
    cleaning with age-sorted output, a 30-second checkpoint interval, and
    cleaning triggered when clean segments drop to a few tens.

    Attributes:
        block_size: bytes per block; must match the disk's.
        segment_bytes: bytes per segment (512 KB or 1 MB in the paper).
        max_inodes: capacity of the inode map.
        cleaning_policy: greedy or cost-benefit segment selection.
        age_sort: sort live blocks by age before rewriting (Section 3.5).
        clean_low_water: start cleaning when clean segments fall below this.
        clean_high_water: stop cleaning once clean segments reach this.
        segments_per_pass: how many segments to read per cleaning pass
            (Section 3.4, policy 2).
        checkpoint_interval: simulated seconds between automatic
            checkpoints; 0 disables timed checkpoints.
        write_buffer_blocks: dirty blocks buffered in the cache before the
            file system flushes a partial segment to the log.
        reserved_segments: segments the allocator refuses to fill with new
            data so the cleaner always has workspace.
        cache_blocks: file-cache capacity in blocks (the paper's machine
            had 32 MB of memory).
        checkpoint_data_blocks: also checkpoint after this many log blocks
            have been written since the last checkpoint (0 disables). This
            is the paper's proposed alternative to periodic checkpoints:
            "this would set a limit on recovery time while reducing the
            checkpoint overhead when the file system is not operating at
            maximum throughput" (Section 4.1).
        selective_read_utilization: during cleaning, segments whose
            utilization is below this read only their summary and live
            blocks instead of the whole segment — the paper's untried
            optimization: "it may be faster to read just the live blocks,
            particularly if the utilization is very low" (Section 3.4).
            0.0 disables (always read whole segments, the paper's
            conservative assumption).
        battery_backed_buffer: model the paper's suggestion that "for
            applications that require better crash recovery, non-volatile
            RAM may be used for the write buffer" (Section 2.1): on an OS
            crash the battery holds the buffer up long enough to flush it
            and checkpoint, so no buffered writes are lost. A power cut
            that kills the disk itself still loses the in-flight write.
        media_error_budget: unrecoverable media/corruption errors the
            read path tolerates before the file system degrades to
            read-only mode (writes then fail fast as ``ReadOnlyError``
            instead of risking further damage). 0 disables degradation.
        hot_cold_segregation: keep a second open segment for cold data
            and route cleaner-rewritten (survivor, hence cold) blocks
            into it, so fresh hot writes and old cold data never mix in
            one segment. Survivor segments stay dense while hot segments
            decay toward empty, which cuts cleaner migration — the
            SSDFS argument, and the reason the default flash profile
            enables it. Cold-segment writes sit outside the roll-forward
            chain, which is safe precisely because every cleaning flush
            is followed by a checkpoint before any source segment is
            reclaimed.
        wear_leveling: nudge cleaner victim selection toward segments
            whose underlying erase blocks have the lowest wear, so
            reclaimed (and therefore soon re-erased) space rotates
            across the device. Only meaningful on a flash disk; off by
            default so HDD-profile victim selection stays bit-identical
            to the reference oracle.
        nvram_staging: absorb ``sync()``/``fsync()`` into CRC-framed
            records appended to a byte-addressable NVM staging log (the
            paper's "non-volatile RAM may be used for the write buffer"
            future work, in its modern NVLog shape) instead of forcing a
            synchronous segment write. Covered data stays dirty in the
            cache until an ordinary flush destages it to the log, after
            which the NVM log is truncated — so the NVM log is always
            exactly the acknowledged-but-not-yet-on-disk suffix. Requires
            an NVM device to be passed to ``LFS.format``/``LFS.mount``;
            off by default so all existing recordings and digests are
            untouched. Unlike ``battery_backed_buffer`` (which flushes
            during an orderly OS crash), NVM staging survives a hard
            power cut: surviving records are replayed after roll-forward.
        nvram_destage_bytes: destage (flush + truncate the NVM log) once
            this many bytes of records are staged. 0 means one segment's
            worth (``segment_bytes``) — the paper-shaped "write the data
            to disk in a single large I/O" batch. The device's capacity
            is a second, hard bound.
        sync_flush_barrier: charge a synchronous flush's first disk
            request half a rotation of latency even when it lands
            sequentially — a lone synchronous writer has let the platter
            turn past the head, unlike back-to-back streamed requests.
            Off by default (keeps every existing recording bit-identical);
            the NVM-staging benchmark enables it in both arms so the
            no-NVM baseline pays the real small-sync cost.
    """

    block_size: int = 4096
    segment_bytes: int = 512 * 1024
    max_inodes: int = 32768
    cleaning_policy: CleaningPolicy = CleaningPolicy.COST_BENEFIT
    age_sort: bool = True
    clean_low_water: int = 20
    clean_high_water: int = 40
    segments_per_pass: int = 10
    checkpoint_interval: float = 30.0
    write_buffer_blocks: int = 128
    reserved_segments: int = 8
    cache_blocks: int = 6144
    checkpoint_data_blocks: int = 0
    selective_read_utilization: float = 0.0
    battery_backed_buffer: bool = False
    media_error_budget: int = 8
    hot_cold_segregation: bool = False
    wear_leveling: bool = False
    nvram_staging: bool = False
    nvram_destage_bytes: int = 0
    sync_flush_barrier: bool = False

    def __post_init__(self) -> None:
        if self.block_size <= 0 or self.block_size % 512:
            raise ValueError("block_size must be a positive multiple of 512")
        if self.segment_bytes % self.block_size:
            raise ValueError("segment_bytes must be a multiple of block_size")
        if self.segment_blocks < 4:
            raise ValueError("segments must hold at least 4 blocks")
        if self.max_inodes < 2:
            raise ValueError("max_inodes must allow at least the root")
        if self.clean_high_water < self.clean_low_water:
            raise ValueError("clean_high_water must be >= clean_low_water")
        if self.segments_per_pass < 1:
            raise ValueError("segments_per_pass must be >= 1")
        if self.write_buffer_blocks < 1:
            raise ValueError("write_buffer_blocks must be >= 1")
        if self.reserved_segments < 2:
            raise ValueError("reserved_segments must be >= 2")
        if self.checkpoint_data_blocks < 0:
            raise ValueError("checkpoint_data_blocks must be >= 0")
        if not 0.0 <= self.selective_read_utilization <= 1.0:
            raise ValueError("selective_read_utilization must be in [0, 1]")
        if self.media_error_budget < 0:
            raise ValueError("media_error_budget must be >= 0")
        if self.nvram_destage_bytes < 0:
            raise ValueError("nvram_destage_bytes must be >= 0")

    @property
    def segment_blocks(self) -> int:
        """Blocks per segment."""
        return self.segment_bytes // self.block_size

    @property
    def imap_entries_per_block(self) -> int:
        """Inode-map entries packed into one block."""
        return self.block_size // INODE_MAP_ENTRY_SIZE

    @property
    def imap_blocks(self) -> int:
        """Number of inode-map blocks covering ``max_inodes``."""
        per = self.imap_entries_per_block
        return (self.max_inodes + per - 1) // per

    @property
    def seg_usage_entries_per_block(self) -> int:
        """Segment-usage entries packed into one block."""
        return self.block_size // SEG_USAGE_ENTRY_SIZE


@dataclass(frozen=True)
class DiskLayout:
    """Computed placement of the fixed structures on a specific disk.

    Attributes:
        num_blocks: total blocks on the device.
        checkpoint_blocks: blocks per checkpoint region.
        checkpoint_a: first block of checkpoint region A.
        checkpoint_b: first block of checkpoint region B.
        segment_area_start: first block of segment 0.
        num_segments: whole segments that fit on the device.
    """

    num_blocks: int
    checkpoint_blocks: int
    checkpoint_a: int
    checkpoint_b: int
    segment_area_start: int
    num_segments: int
    segment_blocks: int = field(repr=False, default=0)

    def segment_start(self, seg_no: int) -> int:
        """First block address of segment ``seg_no``."""
        if seg_no < 0 or seg_no >= self.num_segments:
            raise ValueError(f"segment {seg_no} out of range")
        return self.segment_area_start + seg_no * self.segment_blocks

    def segment_of(self, addr: int) -> int:
        """Segment number containing block ``addr``."""
        if addr < self.segment_area_start:
            raise ValueError(f"block {addr} is not in the segment area")
        seg = (addr - self.segment_area_start) // self.segment_blocks
        if seg >= self.num_segments:
            raise ValueError(f"block {addr} is past the last segment")
        return seg


def compute_layout(
    config: LFSConfig, num_blocks: int, *, align: int = 1
) -> DiskLayout:
    """Place the superblock, checkpoint regions, and segment area.

    The checkpoint region must hold a header block, the addresses of every
    inode-map block and every segment-usage block, and a trailing timestamp
    block (the paper stores the checkpoint time in the *last* block so a
    torn checkpoint write is self-invalidating).

    ``align`` rounds the segment area start up to a multiple of that many
    blocks. Format passes the device's erase-block size here (real mkfs
    tools do the same), so on flash whole dead segments map onto whole
    erase blocks and TRIM can erase ahead of reuse; ``align=1`` (every
    non-flash device) reproduces the historical layout exactly.
    """
    seg_blocks = config.segment_blocks
    addrs_per_block = config.block_size // 8

    # Upper-bound the number of segments to size the usage-table address
    # list before the true segment count is known.
    max_segments = num_blocks // seg_blocks
    usage_blocks = (
        max_segments + config.seg_usage_entries_per_block - 1
    ) // config.seg_usage_entries_per_block

    total_addrs = config.imap_blocks + usage_blocks
    addr_blocks = (total_addrs + addrs_per_block - 1) // addrs_per_block
    checkpoint_blocks = 1 + addr_blocks + 1  # header + addresses + timestamp

    checkpoint_a = 1
    checkpoint_b = checkpoint_a + checkpoint_blocks
    segment_area_start = checkpoint_b + checkpoint_blocks
    if align > 1:
        segment_area_start = -(-segment_area_start // align) * align
    usable = num_blocks - segment_area_start
    num_segments = usable // seg_blocks
    if num_segments < config.reserved_segments + 4:
        raise ValueError(
            f"device too small: only {num_segments} segments fit "
            f"(need at least {config.reserved_segments + 4})"
        )
    return DiskLayout(
        num_blocks=num_blocks,
        checkpoint_blocks=checkpoint_blocks,
        checkpoint_a=checkpoint_a,
        checkpoint_b=checkpoint_b,
        segment_area_start=segment_area_start,
        num_segments=num_segments,
        segment_blocks=seg_blocks,
    )
