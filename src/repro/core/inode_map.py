"""The inode map (Table 1, Section 3.1).

Maps an inode number to the log address of the file's current inode, plus
the version number used for the cleaner's fast liveness check and the last
access time. The map is divided into blocks that are themselves written to
the log; the checkpoint region records where each map block currently
lives. At run time the whole active map is kept in memory, exactly as the
paper observes is feasible ("inode maps are compact enough to keep the
active portions cached in main memory").
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.blocks import require
from repro.core.constants import INODE_MAP_ENTRY_SIZE, NULL_ADDR
from repro.core.errors import FileNotFoundLFSError, InvalidOperationError

# addr, version, atime, pad
_ENTRY = struct.Struct("<QQd8x")
assert _ENTRY.size == INODE_MAP_ENTRY_SIZE


@dataclass
class InodeMapEntry:
    """One slot of the inode map."""

    addr: int = NULL_ADDR
    version: int = 0
    atime: float = 0.0

    @property
    def allocated(self) -> bool:
        """True when the slot points at a live inode."""
        return self.addr != NULL_ADDR


class InodeMap:
    """In-memory inode map with per-block dirty tracking.

    Block ``i`` of the map covers inode numbers
    ``[i * entries_per_block, (i+1) * entries_per_block)``. The map also
    allocates inode numbers: a freed slot keeps its version number so the
    (inum, version) uid is never reused, exactly as the paper requires.
    """

    def __init__(self, max_inodes: int, entries_per_block: int) -> None:
        if max_inodes < 2:
            raise InvalidOperationError("max_inodes must be >= 2")
        if entries_per_block < 1:
            raise InvalidOperationError("entries_per_block must be >= 1")
        self.max_inodes = max_inodes
        self.entries_per_block = entries_per_block
        self.num_blocks = (max_inodes + entries_per_block - 1) // entries_per_block
        self._entries: dict[int, InodeMapEntry] = {}
        self._dirty_blocks: set[int] = set()
        # log addresses of the map blocks themselves (checkpoint payload)
        self.block_addrs: list[int] = [NULL_ADDR] * self.num_blocks
        self._next_inum = 1

    # ------------------------------------------------------------------
    # entry access

    def _check_inum(self, inum: int) -> None:
        if inum <= 0 or inum >= self.max_inodes:
            raise InvalidOperationError(
                f"inode number {inum} outside [1, {self.max_inodes})"
            )

    def block_of(self, inum: int) -> int:
        """Map block index covering ``inum``."""
        self._check_inum(inum)
        return inum // self.entries_per_block

    def get(self, inum: int) -> InodeMapEntry:
        """The slot for ``inum`` (a default empty slot if never touched)."""
        self._check_inum(inum)
        entry = self._entries.get(inum)
        if entry is None:
            entry = InodeMapEntry()
            self._entries[inum] = entry
        return entry

    def lookup(self, inum: int) -> int:
        """Log address of the current inode; raises if not allocated."""
        entry = self.get(inum)
        if not entry.allocated:
            raise FileNotFoundLFSError(f"inode {inum} is not allocated")
        return entry.addr

    def is_allocated(self, inum: int) -> bool:
        """True if ``inum`` currently names a file."""
        if inum <= 0 or inum >= self.max_inodes:
            return False
        entry = self._entries.get(inum)
        return entry is not None and entry.allocated

    def version_of(self, inum: int) -> int:
        """Current version number for the cleaner's uid check."""
        return self.get(inum).version

    def set_addr(self, inum: int, addr: int) -> None:
        """Record a new inode location (marks the map block dirty)."""
        entry = self.get(inum)
        entry.addr = addr
        self._dirty_blocks.add(self.block_of(inum))

    def set_atime(self, inum: int, atime: float) -> None:
        """Record an access time (marks the map block dirty)."""
        entry = self.get(inum)
        entry.atime = atime
        self._dirty_blocks.add(self.block_of(inum))

    # ------------------------------------------------------------------
    # allocation

    def allocate(self) -> int:
        """Reserve and return a fresh inode number."""
        start = self._next_inum
        inum = start
        for _ in range(self.max_inodes):
            if inum >= self.max_inodes:
                inum = 1
            entry = self._entries.get(inum)
            if entry is None or not entry.allocated:
                self._next_inum = inum + 1
                return inum
            inum += 1
        raise FileNotFoundLFSError("inode map full")

    def free(self, inum: int) -> None:
        """Release a slot: bump the version (new uid) and clear the address.

        The version bump is what lets the cleaner discard the dead file's
        blocks "immediately without examining the file's inode".
        """
        entry = self.get(inum)
        entry.addr = NULL_ADDR
        entry.version += 1
        self._dirty_blocks.add(self.block_of(inum))

    def bump_version(self, inum: int) -> int:
        """Increment and return the version (used by truncate-to-zero)."""
        entry = self.get(inum)
        entry.version += 1
        self._dirty_blocks.add(self.block_of(inum))
        return entry.version

    def allocated_inums(self) -> list[int]:
        """All currently allocated inode numbers, ascending."""
        return sorted(i for i, e in self._entries.items() if e.allocated)

    @property
    def live_count(self) -> int:
        """Number of allocated inodes."""
        return sum(1 for e in self._entries.values() if e.allocated)

    # ------------------------------------------------------------------
    # block (de)serialization

    def dirty_block_indexes(self) -> list[int]:
        """Map blocks modified since they were last written, ascending."""
        return sorted(self._dirty_blocks)

    def clear_dirty(self, block_index: int) -> None:
        """Mark one map block clean (it has been queued for the log)."""
        self._dirty_blocks.discard(block_index)

    def mark_all_dirty(self) -> None:
        """Force every touched map block dirty (used by recovery)."""
        for inum in self._entries:
            self._dirty_blocks.add(self.block_of(inum))

    def pack_block(self, block_index: int, block_size: int) -> bytes:
        """Serialize map block ``block_index`` to a block payload."""
        if block_index < 0 or block_index >= self.num_blocks:
            raise InvalidOperationError(f"map block {block_index} out of range")
        first = block_index * self.entries_per_block
        parts = []
        for inum in range(first, first + self.entries_per_block):
            entry = self._entries.get(inum)
            if entry is None:
                parts.append(bytes(INODE_MAP_ENTRY_SIZE))
            else:
                parts.append(_ENTRY.pack(entry.addr, entry.version, entry.atime))
        return b"".join(parts).ljust(block_size, b"\0")

    def load_block(self, block_index: int, payload: bytes) -> None:
        """Replace map block ``block_index`` from on-disk bytes."""
        if block_index < 0 or block_index >= self.num_blocks:
            raise InvalidOperationError(f"map block {block_index} out of range")
        require(
            len(payload) >= self.entries_per_block * INODE_MAP_ENTRY_SIZE,
            "inode map block truncated",
        )
        first = block_index * self.entries_per_block
        for i in range(self.entries_per_block):
            inum = first + i
            addr, version, atime = _ENTRY.unpack_from(payload, i * INODE_MAP_ENTRY_SIZE)
            if inum == 0:
                continue
            if addr == NULL_ADDR and version == 0 and atime == 0.0:
                self._entries.pop(inum, None)
            else:
                self._entries[inum] = InodeMapEntry(addr=addr, version=version, atime=atime)
