"""NVM staging-record bodies: the write-ahead format for sync absorption.

One :class:`~repro.disk.nvram.NVMDevice` record is appended per
``sync()``/``fsync()`` that the staging log absorbs; the device's CRC
frame is the atomicity unit, and this module defines what goes inside.
A body is a sequence of typed entries, applied in order on replay:

- **DIROP** — one :class:`~repro.core.dirlog.DirOpRecord` plus the file
  type of the inode it names. Directory data blocks are *not* staged:
  the operation records fully determine the namespace, and replay
  re-executes them through the live directory-insert/remove paths (which
  regenerate the directory blocks dirty in cache). The file type is
  carried because replay may have to *materialize* an inode that never
  reached the on-disk log — a CREATE staged to NVM has no durable inode
  to consult — and a directory materializes with an empty entry table
  while a regular file does not.
- **PATCH** — a byte-range delta against one file: inode number, byte
  offset, payload. Patches carry exactly the bytes the application wrote
  since the previous record, not whole blocks, so repeated small
  synchronous writes stage a few hundred bytes instead of re-staging a
  4 KiB block each time (the difference between fitting under the NVM
  bandwidth bound and blowing through it).
- **META** — a file's size and mtime at staging time. Replay applies it
  after the record's patches; a shrink replays as an internal truncate.

Entries never span records, and a record's entries apply strictly in the
order staged: directory operations first (they may materialize the inodes
the patches target), then patches, then metas.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.constants import FileType
from repro.core.dirlog import DirOpRecord
from repro.core.errors import CorruptionError

# Entry tags. A body is a concatenation of tagged entries; parsing stops
# exactly at the end of the body (the device frame already carries the
# length and CRC, so there is no per-body trailer).
_TAG_DIROP = 0x01
_TAG_PATCH = 0x02
_TAG_META = 0x03

_DIROP_HEAD = struct.Struct("<BBI")  # tag, ftype, packed dirop length
_PATCH_HEAD = struct.Struct("<BQQI")  # tag, inum, byte offset, length
_META_HEAD = struct.Struct("<BQQd")  # tag, inum, size, mtime


@dataclass(frozen=True)
class NVDirOp:
    """A staged directory operation plus the named inode's file type."""

    record: DirOpRecord
    ftype: FileType = FileType.REGULAR


@dataclass(frozen=True)
class NVPatch:
    """A staged byte-range delta (never spans a file-system block)."""

    inum: int
    offset: int
    data: bytes


@dataclass(frozen=True)
class NVMeta:
    """A file's staged size and mtime."""

    inum: int
    size: int
    mtime: float


def pack_body(
    dirops: list[NVDirOp], patches: list[NVPatch], metas: list[NVMeta]
) -> bytes:
    """Serialize one record body (dirops, then patches, then metas)."""
    parts: list[bytes] = []
    for op in dirops:
        raw = op.record.pack()
        parts.append(_DIROP_HEAD.pack(_TAG_DIROP, int(op.ftype), len(raw)))
        parts.append(raw)
    for patch in patches:
        parts.append(
            _PATCH_HEAD.pack(_TAG_PATCH, patch.inum, patch.offset, len(patch.data))
        )
        parts.append(patch.data)
    for meta in metas:
        parts.append(_META_HEAD.pack(_TAG_META, meta.inum, meta.size, meta.mtime))
    return b"".join(parts)


def unpack_body(body: bytes) -> tuple[list[NVDirOp], list[NVPatch], list[NVMeta]]:
    """Parse one record body back into its typed entries.

    Raises :class:`CorruptionError` on a malformed body — the device
    frame's CRC already vouched for the bytes, so a parse failure here
    means a format bug, not media damage, and must be loud.
    """
    dirops: list[NVDirOp] = []
    patches: list[NVPatch] = []
    metas: list[NVMeta] = []
    pos = 0
    end = len(body)
    while pos < end:
        tag = body[pos]
        if tag == _TAG_DIROP:
            if pos + _DIROP_HEAD.size > end:
                raise CorruptionError("NVM record: truncated dirop header")
            _, ftype_raw, length = _DIROP_HEAD.unpack_from(body, pos)
            pos += _DIROP_HEAD.size
            if pos + length > end:
                raise CorruptionError("NVM record: truncated dirop payload")
            record, consumed = DirOpRecord.unpack_from(body[pos : pos + length], 0)
            if consumed != length:
                raise CorruptionError("NVM record: dirop length mismatch")
            try:
                ftype = FileType(ftype_raw)
            except ValueError as exc:
                raise CorruptionError(
                    f"NVM record: bad file type {ftype_raw}"
                ) from exc
            dirops.append(NVDirOp(record=record, ftype=ftype))
            pos += length
        elif tag == _TAG_PATCH:
            if pos + _PATCH_HEAD.size > end:
                raise CorruptionError("NVM record: truncated patch header")
            _, inum, offset, length = _PATCH_HEAD.unpack_from(body, pos)
            pos += _PATCH_HEAD.size
            if pos + length > end:
                raise CorruptionError("NVM record: truncated patch payload")
            patches.append(NVPatch(inum=inum, offset=offset, data=body[pos : pos + length]))
            pos += length
        elif tag == _TAG_META:
            if pos + _META_HEAD.size > end:
                raise CorruptionError("NVM record: truncated meta entry")
            _, inum, size, mtime = _META_HEAD.unpack_from(body, pos)
            metas.append(NVMeta(inum=inum, size=size, mtime=mtime))
            pos += _META_HEAD.size
        else:
            raise CorruptionError(f"NVM record: unknown entry tag {tag:#x}")
    return dirops, patches, metas


def body_size(
    dirops: list[NVDirOp], patches: list[NVPatch], metas: list[NVMeta]
) -> int:
    """Exact serialized size of a body without building it."""
    total = 0
    for op in dirops:
        total += _DIROP_HEAD.size + len(op.record.pack())
    for patch in patches:
        total += _PATCH_HEAD.size + len(patch.data)
    total += _META_HEAD.size * len(metas)
    return total
