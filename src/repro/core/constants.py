"""On-disk format constants shared across the core modules.

Block *kinds* tag every block described by a segment summary so the cleaner
and roll-forward can interpret a segment without any other context — the
property that lets the paper eliminate the free-block bitmap entirely.
"""

from __future__ import annotations

import enum

# Sentinel "no block" address. Block 0 holds the superblock and can never
# be a file, metadata, or log block, so 0 is unambiguous.
NULL_ADDR = 0

# Sentinel marking an inode that exists only in memory (created but not yet
# flushed). Never valid on disk: inode blocks are written before the inode
# map in every flush.
PENDING_ADDR = 0xFFFFFFFFFFFFFFFF

# Sentinel "no segment" (segment numbers start at 0, so 0 cannot be it).
NO_SEGMENT = 0xFFFFFFFFFFFFFFFF

# Magic numbers guarding each fixed or self-describing structure.
SUPERBLOCK_MAGIC = 0x4C465331  # "LFS1"
CHECKPOINT_MAGIC = 0x43504E54  # "CPNT"
SUMMARY_MAGIC = 0x5355_4D4D  # "SUMM"

# Root directory always has inode number 1; 0 is reserved/invalid.
ROOT_INUM = 1

# Inode direct pointers, as in the paper ("the disk addresses of the first
# ten blocks of the file").
NUM_DIRECT = 10

# sizes of packed records (see blocks.py for the formats)
INODE_SIZE = 192
INODE_MAP_ENTRY_SIZE = 32
SEG_USAGE_ENTRY_SIZE = 24
SUMMARY_HEADER_SIZE = 48
SUMMARY_ENTRY_SIZE = 32


class BlockKind(enum.IntEnum):
    """What a block in the log contains, as recorded in segment summaries."""

    DATA = 1  # a file data block (inum, file block offset)
    INDIRECT = 2  # a single-indirect block (inum, logical index)
    DINDIRECT = 3  # a double-indirect block (inum, logical index)
    INODE = 4  # a block of packed inodes
    INODE_MAP = 5  # a block of the inode map (offset = map block index)
    SEG_USAGE = 6  # a block of the segment usage table (offset = index)
    DIROP_LOG = 7  # directory-operation log records
    SUMMARY = 8  # a segment summary block itself


class FileType(enum.IntEnum):
    """Inode file types."""

    REGULAR = 1
    DIRECTORY = 2


class DirOp(enum.IntEnum):
    """Directory-operation log opcodes (Section 4.2 of the paper)."""

    CREATE = 1
    LINK = 2
    UNLINK = 3
    RENAME = 4
