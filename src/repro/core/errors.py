"""Exception hierarchy for the reproduction.

Every error raised by the library derives from :class:`LFSError` so callers
can catch one type. Subclasses distinguish the situations a file-system
client can reasonably handle differently (missing file vs. full disk vs.
corrupted metadata).
"""

from __future__ import annotations


class LFSError(Exception):
    """Base class for all errors raised by this library."""


class DiskRangeError(LFSError):
    """An I/O request fell outside the device or exceeded a block."""


class CorruptionError(LFSError):
    """On-disk bytes failed validation (bad magic, checksum, or format)."""


class NotMountedError(LFSError):
    """An operation was attempted on an unmounted file system."""


class AlreadyMountedError(LFSError):
    """mkfs or mount was attempted on a mounted file system."""


class NoSpaceError(LFSError):
    """The log ran out of clean segments even after cleaning."""


class FileNotFoundLFSError(LFSError):
    """A path or inode number does not name an existing file."""


class FileExistsLFSError(LFSError):
    """Creation was attempted over an existing directory entry."""


class NotADirectoryError_(LFSError):
    """A path component that must be a directory is a regular file."""


class IsADirectoryError_(LFSError):
    """A file operation was attempted on a directory."""


class DirectoryNotEmptyError(LFSError):
    """A non-empty directory was the target of remove/rename."""


class InvalidOperationError(LFSError):
    """The operation's arguments are structurally invalid."""


class MediaError(LFSError):
    """The device could not read or write a block (latent sector error).

    Unlike :class:`CorruptionError` — where the device returned bytes that
    failed validation — a media error means the device itself gave up.
    ``addr`` and ``op`` localize the failure for diagnostics and torture
    result records.
    """

    def __init__(self, message: str, *, addr: int | None = None, op: str | None = None):
        if addr is not None and op is not None:
            message = f"{message} [{op} of block {addr}]"
        super().__init__(message)
        self.addr = addr
        self.op = op


class TrimmedBlockError(MediaError):
    """A read hit a block that was trimmed and never rewritten.

    Flash honesty contract: once the file system TRIMs a block, its old
    contents are gone — a later read of that address must fail with this
    typed error, never return stale bytes. Subclassing
    :class:`MediaError` lets every degraded-read path (scavenger, scrub,
    the torture honesty oracle) treat it as a detected loss rather than
    silent corruption.
    """


class ReadOnlyError(LFSError):
    """The file system degraded to read-only mode (media error budget hit)."""


class NVMError(MediaError):
    """The NVM staging device failed a request.

    The second persistence domain gets its own error family, parallel to
    the disk's :class:`MediaError` tree: ``addr`` localizes the failure
    to a byte offset in the staging log and ``op`` names the request
    (``append``/``read``/``truncate``). Subclassing :class:`MediaError`
    keeps the degraded-path contract uniform — every detected loss is a
    typed error, never silent wrong bytes.
    """


class NVMTornRecordError(NVMError):
    """A staged NVM record failed its CRC frame (torn by a power cut)."""


class NVMDeviceFailedError(NVMError):
    """The whole NVM device is gone; staging must fall back to the log."""


__all__ = [
    "LFSError",
    "DiskRangeError",
    "CorruptionError",
    "NotMountedError",
    "AlreadyMountedError",
    "NoSpaceError",
    "FileNotFoundLFSError",
    "FileExistsLFSError",
    "NotADirectoryError_",
    "IsADirectoryError_",
    "DirectoryNotEmptyError",
    "InvalidOperationError",
    "MediaError",
    "TrimmedBlockError",
    "ReadOnlyError",
    "NVMError",
    "NVMTornRecordError",
    "NVMDeviceFailedError",
]
