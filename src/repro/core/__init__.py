"""Sprite LFS: the paper's log-structured file system.

Public entry points:

- :class:`~repro.core.filesystem.LFS` — format/mount/operate the file system
- :class:`~repro.core.config.LFSConfig` — tunables (segment size, cleaning
  policy, checkpoint interval, ...)
- :class:`~repro.core.config.CleaningPolicy` — greedy vs. cost-benefit
"""

from repro.core.config import CleaningPolicy, LFSConfig
from repro.core.errors import (
    AlreadyMountedError,
    CorruptionError,
    DirectoryNotEmptyError,
    DiskRangeError,
    FileExistsLFSError,
    FileNotFoundLFSError,
    InvalidOperationError,
    IsADirectoryError_,
    LFSError,
    MediaError,
    NoSpaceError,
    NotADirectoryError_,
    NotMountedError,
    NVMDeviceFailedError,
    NVMError,
    NVMTornRecordError,
    ReadOnlyError,
    TrimmedBlockError,
)
from repro.core.filesystem import LFS, StatResult
from repro.core.recovery import RecoveryReport

__all__ = [
    "LFS",
    "AlreadyMountedError",
    "CleaningPolicy",
    "CorruptionError",
    "DirectoryNotEmptyError",
    "DiskRangeError",
    "FileExistsLFSError",
    "FileNotFoundLFSError",
    "InvalidOperationError",
    "IsADirectoryError_",
    "LFSConfig",
    "LFSError",
    "MediaError",
    "NVMDeviceFailedError",
    "NVMError",
    "NVMTornRecordError",
    "NoSpaceError",
    "NotADirectoryError_",
    "NotMountedError",
    "ReadOnlyError",
    "RecoveryReport",
    "StatResult",
    "TrimmedBlockError",
]
