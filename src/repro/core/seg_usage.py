"""The segment usage table (Section 3.6, Table 1).

For every segment the table records the number of live bytes and the most
recent modified time of any block in it. The cleaner's cost-benefit policy
reads both; a count that falls to zero lets a segment be reused without
cleaning. Like the inode map, the table's blocks are written to the log
and located via the checkpoint region.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.blocks import require
from repro.core.constants import NULL_ADDR, SEG_USAGE_ENTRY_SIZE
from repro.core.errors import InvalidOperationError

# live_bytes, last_write_time, flags, pad — the quarantine flag lives in a
# former pad byte, so the entry keeps its on-disk size.
_ENTRY = struct.Struct("<QdB7x")
assert _ENTRY.size == SEG_USAGE_ENTRY_SIZE

_FLAG_QUARANTINED = 0x01


@dataclass
class SegmentUsage:
    """One segment's bookkeeping.

    ``clean`` and ``in_log`` are in-memory state: a clean segment holds no
    live data and is available for writing; a segment "in the log" has been
    (partially) written since it was last clean. ``quarantined`` is
    persistent: the segment suffered an unrecoverable media error and must
    never be allocated or cleaned again.
    """

    live_bytes: int = 0
    last_write: float = 0.0
    clean: bool = True
    quarantined: bool = False

    @property
    def empty(self) -> bool:
        """True when no live bytes remain."""
        return self.live_bytes == 0


class SegmentUsageTable:
    """In-memory segment usage table with per-block dirty tracking."""

    def __init__(self, num_segments: int, segment_bytes: int, entries_per_block: int) -> None:
        if num_segments < 1:
            raise InvalidOperationError("need at least one segment")
        self.num_segments = num_segments
        self.segment_bytes = segment_bytes
        self.entries_per_block = entries_per_block
        self.num_blocks = (num_segments + entries_per_block - 1) // entries_per_block
        self._segments = [SegmentUsage() for _ in range(num_segments)]
        self._dirty_blocks: set[int] = set()
        # Segments whose liveness/cleanliness changed since the cleaner's
        # victim heap last synced (everything, initially). Cheap to feed
        # on the write path; drained by Cleaner._sync_victims.
        self._score_dirty: set[int] = set(range(num_segments))
        self.block_addrs: list[int] = [NULL_ADDR] * self.num_blocks
        # Optional mutation observer: called as observer(seg_no, record,
        # when) after every per-segment state change (when is the write
        # time for add_live, else None). The obs-layer segment ledger
        # installs one to mirror liveness; None costs a single check.
        self.observer = None

    def _notify(self, seg_no: int, when: float | None = None) -> None:
        if self.observer is not None:
            self.observer(seg_no, self._segments[seg_no], when)

    # ------------------------------------------------------------------

    def _check(self, seg_no: int) -> None:
        if seg_no < 0 or seg_no >= self.num_segments:
            raise InvalidOperationError(f"segment {seg_no} out of range")

    def block_of(self, seg_no: int) -> int:
        """Usage-table block index covering ``seg_no``."""
        self._check(seg_no)
        return seg_no // self.entries_per_block

    def get(self, seg_no: int) -> SegmentUsage:
        """The record for one segment."""
        self._check(seg_no)
        return self._segments[seg_no]

    def utilization(self, seg_no: int) -> float:
        """Fraction of the segment occupied by live bytes (0..1)."""
        return min(1.0, self.get(seg_no).live_bytes / self.segment_bytes)

    def add_live(self, seg_no: int, nbytes: int, when: float) -> None:
        """Account newly written live bytes in a segment."""
        seg = self.get(seg_no)
        seg.live_bytes += nbytes
        seg.clean = False
        if when > seg.last_write:
            seg.last_write = when
        self._dirty_blocks.add(self.block_of(seg_no))
        self._score_dirty.add(seg_no)
        self._notify(seg_no, when)

    def remove_live(self, seg_no: int, nbytes: int) -> None:
        """Account bytes that just died (overwrite, delete, truncate)."""
        seg = self.get(seg_no)
        seg.live_bytes = max(0, seg.live_bytes - nbytes)
        self._dirty_blocks.add(self.block_of(seg_no))
        self._score_dirty.add(seg_no)
        self._notify(seg_no)

    def mark_clean(self, seg_no: int) -> None:
        """Return a segment to the clean pool (after cleaning)."""
        seg = self.get(seg_no)
        if seg.quarantined:
            raise InvalidOperationError(
                f"segment {seg_no} is quarantined and cannot rejoin the clean pool"
            )
        seg.live_bytes = 0
        seg.clean = True
        self._dirty_blocks.add(self.block_of(seg_no))
        self._score_dirty.add(seg_no)
        self._notify(seg_no)

    def mark_in_use(self, seg_no: int) -> None:
        """Take a clean segment as the current log tail."""
        seg = self.get(seg_no)
        if seg.quarantined:
            raise InvalidOperationError(
                f"segment {seg_no} is quarantined and cannot take log traffic"
            )
        seg.clean = False
        self._dirty_blocks.add(self.block_of(seg_no))
        self._score_dirty.add(seg_no)
        self._notify(seg_no)

    def quarantine(self, seg_no: int) -> None:
        """Permanently retire a segment after an unrecoverable media error.

        The segment leaves both the clean pool and the cleaner's candidate
        set; whatever live bytes it still claimed are gone (the rescuer
        re-appends surviving blocks before calling this). Persisted in the
        on-disk entry, so the verdict survives checkpoints and remounts.
        """
        seg = self.get(seg_no)
        seg.live_bytes = 0
        seg.clean = False
        seg.quarantined = True
        self._dirty_blocks.add(self.block_of(seg_no))
        self._score_dirty.add(seg_no)
        self._notify(seg_no)

    # ------------------------------------------------------------------
    # queries used by the allocator and cleaner

    def clean_segments(self) -> list[int]:
        """Segment numbers currently clean, ascending."""
        return [i for i, s in enumerate(self._segments) if s.clean]

    @property
    def clean_count(self) -> int:
        """How many segments are clean."""
        return sum(1 for s in self._segments if s.clean)

    def dirty_segments(self) -> list[int]:
        """Segments holding (possibly zero) live data from the log.

        Quarantined segments are excluded: they are neither clean nor
        cleanable, and nothing should ever schedule work against them.
        """
        return [
            i for i, s in enumerate(self._segments) if not s.clean and not s.quarantined
        ]

    def quarantined_segments(self) -> list[int]:
        """Segments retired by media errors, ascending."""
        return [i for i, s in enumerate(self._segments) if s.quarantined]

    def total_live_bytes(self) -> int:
        """Live bytes across the whole segment area."""
        return sum(s.live_bytes for s in self._segments)

    def utilization_histogram(self, bins: int = 20) -> list[int]:
        """Histogram of per-segment utilization over non-clean segments."""
        if bins < 1:
            raise InvalidOperationError("bins must be >= 1")
        counts = [0] * bins
        for i, seg in enumerate(self._segments):
            if seg.clean or seg.quarantined:
                continue
            u = self.utilization(i)
            idx = min(bins - 1, int(u * bins))
            counts[idx] += 1
        return counts

    def consume_score_dirty(self) -> set[int]:
        """Drain the set of segments whose cleaner score may have moved.

        The cleaner's incremental victim heap calls this before each
        selection; between calls the write path only pays a set-add per
        touched segment instead of the legacy full-table rescan.
        """
        dirty = self._score_dirty
        self._score_dirty = set()
        return dirty

    # ------------------------------------------------------------------
    # block (de)serialization

    def dirty_block_indexes(self) -> list[int]:
        """Usage-table blocks modified since last written, ascending."""
        return sorted(self._dirty_blocks)

    def clear_dirty(self, block_index: int) -> None:
        """Mark one table block clean."""
        self._dirty_blocks.discard(block_index)

    def mark_all_dirty(self) -> None:
        """Force every table block dirty (used by recovery)."""
        self._dirty_blocks.update(range(self.num_blocks))

    def pack_block(self, block_index: int, block_size: int) -> bytes:
        """Serialize usage-table block ``block_index``."""
        if block_index < 0 or block_index >= self.num_blocks:
            raise InvalidOperationError(f"usage block {block_index} out of range")
        first = block_index * self.entries_per_block
        parts = []
        for seg_no in range(first, first + self.entries_per_block):
            if seg_no < self.num_segments:
                seg = self._segments[seg_no]
                flags = _FLAG_QUARANTINED if seg.quarantined else 0
                parts.append(_ENTRY.pack(seg.live_bytes, seg.last_write, flags))
            else:
                parts.append(bytes(SEG_USAGE_ENTRY_SIZE))
        return b"".join(parts).ljust(block_size, b"\0")

    def load_block(self, block_index: int, payload: bytes) -> None:
        """Replace usage-table block ``block_index`` from on-disk bytes.

        A segment with zero live bytes on disk is *not* necessarily clean:
        the mount path decides cleanliness after roll-forward. Here we mark
        any segment with live bytes as in-log and leave empties clean.
        """
        if block_index < 0 or block_index >= self.num_blocks:
            raise InvalidOperationError(f"usage block {block_index} out of range")
        first = block_index * self.entries_per_block
        count = min(self.entries_per_block, self.num_segments - first)
        require(
            len(payload) >= count * SEG_USAGE_ENTRY_SIZE,
            "segment usage block truncated",
        )
        self._score_dirty.update(range(first, first + count))
        for i in range(count):
            live, last, flags = _ENTRY.unpack_from(payload, i * SEG_USAGE_ENTRY_SIZE)
            seg = self._segments[first + i]
            seg.live_bytes = live
            seg.last_write = last
            seg.quarantined = bool(flags & _FLAG_QUARANTINED)
            seg.clean = live == 0 and not seg.quarantined
            self._notify(first + i)
