"""Segment summary blocks (Section 3.2).

Each partial-segment write is led by a summary block identifying every
block in the write: its kind, owning file, position within the file, and
the file's uid version. Summaries serve the cleaner (liveness without a
bitmap) and roll-forward (finding recently written inodes). A CRC over the
described payloads makes a torn partial write self-invalidating.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace

from repro.core.blocks import checksum, require
from repro.core.constants import (
    SUMMARY_ENTRY_SIZE,
    SUMMARY_HEADER_SIZE,
    SUMMARY_MAGIC,
    BlockKind,
)
from repro.core.errors import CorruptionError, InvalidOperationError

# magic, self_crc, seq, write_time, nentries, crc, youngest_mtime,
# next_segment — ``self_crc`` covers the whole summary block (with the
# field itself zeroed) and lives in former pad bytes, so the header keeps
# its size. It makes rot *inside* the summary — entry identities, the
# payload CRC, the threading pointer — detectable, which payload CRCs
# alone cannot see. Zero means "unwritten" (pre-CRC images), and such
# summaries are accepted unchecked for backward compatibility.
_HEADER = struct.Struct("<IIQdIIdQ")
assert _HEADER.size == SUMMARY_HEADER_SIZE

# kind, pad, block_crc, inum, offset, version — the per-block CRC lives in
# what used to be pad bytes, so the entry (and the whole summary) keeps its
# size and the log's timing is untouched by read-path integrity checking.
_ENTRY = struct.Struct("<B3xIQQQ")
assert _ENTRY.size == SUMMARY_ENTRY_SIZE


def summary_capacity(block_size: int) -> int:
    """Maximum blocks one summary block can describe."""
    return (block_size - SUMMARY_HEADER_SIZE) // SUMMARY_ENTRY_SIZE


@dataclass(frozen=True)
class SummaryEntry:
    """Identity of one block within a partial-segment write.

    ``offset`` is the block's position within its owning structure: the
    file block number for data, the logical index for indirect blocks, the
    map/table block index for inode-map and usage blocks, zero otherwise.
    ``version`` is the owning file's uid version at write time (zero for
    structures without one). ``block_crc`` is the CRC-32 of the described
    block's payload, letting reads and the scrubber verify each block
    individually (silent bit-rot becomes a detected error).
    """

    kind: BlockKind
    inum: int = 0
    offset: int = 0
    version: int = 0
    block_crc: int = 0

    def pack(self) -> bytes:
        return _ENTRY.pack(
            int(self.kind), self.block_crc, self.inum, self.offset, self.version
        )

    @classmethod
    def unpack(cls, raw: bytes, pos: int) -> "SummaryEntry":
        kind_raw, block_crc, inum, offset, version = _ENTRY.unpack_from(raw, pos)
        try:
            kind = BlockKind(kind_raw)
        except ValueError as exc:
            raise CorruptionError(f"bad block kind {kind_raw} in summary") from exc
        return cls(
            kind=kind, inum=inum, offset=offset, version=version, block_crc=block_crc
        )


@dataclass
class SegmentSummary:
    """A parsed (or to-be-written) segment summary.

    Attributes:
        seq: globally monotonic partial-write sequence number; recovery
            orders partial writes by it.
        write_time: simulated time of the write.
        youngest_mtime: modification time of the youngest block in the
            write (Section 3.6's age estimate for cost-benefit cleaning).
        entries: one per described block, in on-disk order; the described
            blocks immediately follow the summary block.
        crc: CRC-32 over the described payloads (filled by ``pack``).
        next_segment: the segment the log continues into after the current
            one fills — the paper's segment-by-segment threading, which
            lets roll-forward follow the log without scanning the disk.
            ``NO_SEGMENT`` when the writer has no reserved successor.
    """

    seq: int
    write_time: float
    youngest_mtime: float = 0.0
    entries: list[SummaryEntry] = field(default_factory=list)
    crc: int = 0
    next_segment: int = 0xFFFFFFFFFFFFFFFF

    def pack(self, payloads: list[bytes], block_size: int) -> bytes:
        """Serialize the summary, computing the CRC over ``payloads``."""
        if len(payloads) != len(self.entries):
            raise InvalidOperationError(
                f"{len(self.entries)} entries describe {len(payloads)} payloads"
            )
        if len(self.entries) > summary_capacity(block_size):
            raise InvalidOperationError(
                f"{len(self.entries)} entries exceed summary capacity "
                f"{summary_capacity(block_size)}"
            )
        self.crc = checksum(payloads)
        self.entries = [
            replace(e, block_crc=checksum([p]))
            for e, p in zip(self.entries, payloads)
        ]
        body = b"".join(e.pack() for e in self.entries)

        def header(self_crc: int) -> bytes:
            return _HEADER.pack(
                SUMMARY_MAGIC,
                self_crc,
                self.seq,
                self.write_time,
                len(self.entries),
                self.crc,
                self.youngest_mtime,
                self.next_segment,
            )

        # Self-CRC over the final block contents with the field zeroed.
        block = (header(0) + body).ljust(block_size, b"\0")
        return header(checksum([block])) + block[_HEADER.size :]

    @classmethod
    def unpack(cls, payload: bytes, block_size: int) -> "SegmentSummary":
        """Parse a summary block; raises :class:`CorruptionError` if invalid."""
        require(len(payload) >= SUMMARY_HEADER_SIZE, "summary block truncated")
        (
            magic,
            self_crc,
            seq,
            write_time,
            nentries,
            crc,
            youngest,
            next_segment,
        ) = _HEADER.unpack_from(payload, 0)
        require(magic == SUMMARY_MAGIC, "bad summary magic")
        if self_crc:
            zeroed = payload[:4] + b"\0\0\0\0" + payload[8:]
            require(
                checksum([zeroed]) == self_crc,
                "summary block fails its self-CRC (bit-rot inside the summary)",
            )
        require(0 <= nentries <= summary_capacity(block_size), "summary entry count out of range")
        entries = []
        pos = SUMMARY_HEADER_SIZE
        require(
            len(payload) >= SUMMARY_HEADER_SIZE + nentries * SUMMARY_ENTRY_SIZE,
            "summary entries truncated",
        )
        for _ in range(nentries):
            entries.append(SummaryEntry.unpack(payload, pos))
            pos += SUMMARY_ENTRY_SIZE
        return cls(
            seq=seq,
            write_time=write_time,
            youngest_mtime=youngest,
            entries=entries,
            crc=crc,
            next_segment=next_segment,
        )

    def verify(self, payloads: list[bytes]) -> bool:
        """True if ``payloads`` match the recorded CRC (torn-write check)."""
        return len(payloads) == len(self.entries) and checksum(payloads) == self.crc


def try_parse_summary(payload: bytes, block_size: int) -> SegmentSummary | None:
    """Parse a block as a summary, returning None when it is not one."""
    try:
        return SegmentSummary.unpack(payload, block_size)
    except CorruptionError:
        return None
