"""Inodes and inode-block packing.

As in the paper (Section 3.1), an inode holds the file's attributes plus
the disk addresses of its first ten blocks; larger files add a single- and
a double-indirect block. Inodes are written to the log in *inode blocks*
that pack several inodes each; the inode map records where each file's
current inode lives.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.core.blocks import require
from repro.core.constants import INODE_SIZE, NULL_ADDR, NUM_DIRECT, FileType
from repro.core.errors import CorruptionError, InvalidOperationError

# inum, version, ftype, pad, nlink, size, mtime, ctime, 10 direct,
# indirect, double-indirect  (144 bytes packed, padded to INODE_SIZE)
_INODE = struct.Struct("<QQB3xIQdd10QQQ")
assert _INODE.size <= INODE_SIZE


@dataclass
class Inode:
    """One file's on-disk attributes and block pointers.

    Attributes:
        inum: inode number (``ROOT_INUM`` for the root directory).
        version: the inode-map version current when this inode instance
            was written; together with ``inum`` it forms the paper's "uid".
        ftype: regular file or directory.
        nlink: directory entries referring to this inode.
        size: file length in bytes.
        mtime: last modification, simulated seconds.
        ctime: creation time, simulated seconds.
        direct: disk addresses of the first ten blocks.
        indirect: address of the single-indirect block, or ``NULL_ADDR``.
        dindirect: address of the double-indirect block, or ``NULL_ADDR``.
    """

    inum: int
    version: int = 0
    ftype: FileType = FileType.REGULAR
    nlink: int = 1
    size: int = 0
    mtime: float = 0.0
    ctime: float = 0.0
    direct: list[int] = field(default_factory=lambda: [NULL_ADDR] * NUM_DIRECT)
    indirect: int = NULL_ADDR
    dindirect: int = NULL_ADDR

    def __post_init__(self) -> None:
        if self.inum <= 0:
            raise InvalidOperationError(f"invalid inode number {self.inum}")
        if len(self.direct) != NUM_DIRECT:
            raise InvalidOperationError(
                f"direct pointer array must have {NUM_DIRECT} entries"
            )

    @property
    def is_directory(self) -> bool:
        """True for directory inodes."""
        return self.ftype == FileType.DIRECTORY

    def nblocks(self, block_size: int) -> int:
        """Number of data blocks implied by the file size."""
        return (self.size + block_size - 1) // block_size

    def to_bytes(self) -> bytes:
        """Serialize to a fixed ``INODE_SIZE`` record."""
        packed = _INODE.pack(
            self.inum,
            self.version,
            int(self.ftype),
            self.nlink,
            self.size,
            self.mtime,
            self.ctime,
            *self.direct,
            self.indirect,
            self.dindirect,
        )
        return packed.ljust(INODE_SIZE, b"\0")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Inode":
        """Parse a fixed-size inode record."""
        require(len(raw) >= _INODE.size, "inode record truncated")
        fields = _INODE.unpack_from(raw, 0)
        inum, version, ftype_raw, nlink, size, mtime, ctime = fields[:7]
        direct = list(fields[7 : 7 + NUM_DIRECT])
        indirect, dindirect = fields[7 + NUM_DIRECT :]
        try:
            ftype = FileType(ftype_raw)
        except ValueError as exc:
            raise CorruptionError(f"bad file type {ftype_raw} in inode {inum}") from exc
        return cls(
            inum=inum,
            version=version,
            ftype=ftype,
            nlink=nlink,
            size=size,
            mtime=mtime,
            ctime=ctime,
            direct=direct,
            indirect=indirect,
            dindirect=dindirect,
        )

    def copy(self) -> "Inode":
        """Deep copy (direct pointer list included)."""
        return Inode(
            inum=self.inum,
            version=self.version,
            ftype=self.ftype,
            nlink=self.nlink,
            size=self.size,
            mtime=self.mtime,
            ctime=self.ctime,
            direct=list(self.direct),
            indirect=self.indirect,
            dindirect=self.dindirect,
        )


def inodes_per_block(block_size: int) -> int:
    """How many packed inodes fit in one inode block."""
    return block_size // INODE_SIZE


def pack_inode_block(inodes: list[Inode], block_size: int) -> bytes:
    """Pack inodes into one zero-padded inode-block payload."""
    cap = inodes_per_block(block_size)
    if len(inodes) > cap:
        raise InvalidOperationError(f"{len(inodes)} inodes exceed block capacity {cap}")
    payload = b"".join(ino.to_bytes() for ino in inodes)
    return payload.ljust(block_size, b"\0")


def unpack_inode_block(payload: bytes, block_size: int) -> list[Inode]:
    """Parse every inode in an inode-block payload.

    A slot whose inode number is zero terminates the block (zero padding).
    """
    out: list[Inode] = []
    for start in range(0, (len(payload) // INODE_SIZE) * INODE_SIZE, INODE_SIZE):
        chunk = payload[start : start + INODE_SIZE]
        (inum,) = struct.unpack_from("<Q", chunk, 0)
        if inum == 0:
            break
        out.append(Inode.from_bytes(chunk))
    return out


def addrs_per_indirect(block_size: int) -> int:
    """Block addresses held by one indirect block."""
    return block_size // 8


def max_file_blocks(block_size: int) -> int:
    """Largest file (in blocks) addressable by the inode geometry."""
    per = addrs_per_indirect(block_size)
    return NUM_DIRECT + per + per * per
