"""Crash recovery: roll-forward (Section 4.2).

After reboot the file system initializes itself from the newest checkpoint
and then scans the log segments written after it, following the
next-segment threading recorded in summary blocks. Inodes found in the
scan are re-applied to the inode map (incorporating their data blocks
automatically); segment-usage counts are adjusted by diffing each
recovered inode against the previous version; and the directory-operation
log is replayed to restore consistency between directory entries and inode
reference counts — including removing the entry for a file whose inode was
never written, the one operation that cannot be completed.

This module also holds the disaster-recovery scavenger (:func:`scavenge`):
when *both* checkpoint regions are unreadable, the whole segment area is
scanned for intact partial writes and the entire surviving log history is
replayed in sequence order from an empty file system, rebuilding the inode
map and segment usage table with no checkpoint at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.checkpoint import Checkpoint
from repro.core.constants import (
    INODE_SIZE,
    NO_SEGMENT,
    NULL_ADDR,
    PENDING_ADDR,
    ROOT_INUM,
    BlockKind,
    DirOp,
    FileType,
)
from repro.core.dirlog import DirOpRecord, unpack_block
from repro.core.errors import CorruptionError, MediaError, TrimmedBlockError
from repro.core.inode import Inode, unpack_inode_block
from repro.core.mapping import FileMap
from repro.core.nvlog import NVDirOp, NVMeta, NVPatch, unpack_body
from repro.core.summary import SegmentSummary, try_parse_summary
from repro.obs.events import RECOVER_SCAVENGE


@dataclass
class RecoveryReport:
    """What a roll-forward pass found and fixed."""

    partial_writes_replayed: int = 0
    torn_writes_dropped: int = 0
    inodes_recovered: int = 0
    blocks_recovered: int = 0
    dirops_applied: int = 0
    orphan_entries_removed: int = 0
    files_freed: int = 0
    elapsed: float = 0.0
    segments_scanned: int = 0
    scavenged: bool = False
    # NVM staging-log replay (the second persistence domain).
    nvm_records_replayed: int = 0
    nvm_records_dropped: int = 0
    nvm_dirops_applied: int = 0
    nvm_patches_applied: int = 0
    nvm_metas_applied: int = 0
    nvm_lost: bool = False


@dataclass
class _PartialWrite:
    summary: SegmentSummary
    segment: int
    offset: int
    # Only metadata payloads are read during the scan; data blocks are
    # skipped over, which is what keeps recovery time proportional to the
    # number of files recovered rather than the volume of data (Table 3).
    payloads: dict[int, bytes] = field(default_factory=dict)


_METADATA_KINDS = (BlockKind.INODE, BlockKind.DIROP_LOG)


def _collect_partial_writes(fs, cp: Checkpoint, report: RecoveryReport) -> list[_PartialWrite]:
    """Follow the threaded log from the checkpoint's tail, in seq order.

    Walks summaries with strictly consecutive sequence numbers starting
    at ``cp.log_seq``, reading each summary block and the inode /
    directory-log blocks it describes. Because partial writes are issued
    strictly in sequence, only the *last* one can be torn by the crash;
    it is CRC-verified against its full payload and dropped if torn.
    """
    writes: list[_PartialWrite] = []
    expected_seq = cp.log_seq
    seg = cp.tail_segment
    offset = cp.tail_offset
    seen: set[int] = set()
    seg_blocks = fs.config.segment_blocks
    # If the tail segment was already full at checkpoint time, the log
    # continued in the successor the checkpoint reserved.
    initial_next = None if cp.next_segment == NO_SEGMENT else cp.next_segment
    while seg is not None and seg not in seen and 0 <= seg < fs.layout.num_segments:
        seen.add(seg)
        report.segments_scanned += 1
        start = fs.layout.segment_start(seg)
        next_seg: int | None = initial_next
        initial_next = None
        stop = False
        while offset < seg_blocks - 1:
            try:
                block = fs.disk.read_block(start + offset)
            except TrimmedBlockError:
                # A trimmed, never-reprogrammed page cannot hold a valid
                # summary: the device is saying nothing was written here
                # after the segment's TRIM, so the log ends at this point.
                stop = True
                break
            summary = try_parse_summary(block, fs.config.block_size)
            if summary is None or summary.seq != expected_seq:
                stop = True
                break
            n = len(summary.entries)
            if offset + 1 + n > seg_blocks:
                stop = True
                break
            payloads: dict[int, bytes] = {}
            for i, entry in enumerate(summary.entries):
                if entry.kind in _METADATA_KINDS:
                    payloads[i] = fs.disk.read_block(start + offset + 1 + i)
            writes.append(
                _PartialWrite(summary=summary, segment=seg, offset=offset, payloads=payloads)
            )
            expected_seq += 1
            offset += 1 + n
            next_seg = None if summary.next_segment == NO_SEGMENT else summary.next_segment
        if stop:
            # Sequence numbers are strictly consecutive, so an invalid or
            # stale summary mid-segment means the log ends here.
            break
        seg = next_seg
        offset = 0
    if writes:
        last = writes[-1]
        full = (
            fs.disk.read_blocks(
                fs.layout.segment_start(last.segment) + last.offset + 1,
                len(last.summary.entries),
            )
            if last.summary.entries
            else []
        )
        if not last.summary.verify(full):
            writes.pop()  # torn by the crash: the log ends one write earlier
            report.torn_writes_dropped += 1
    return writes


def _inode_block_addrs(fs, inode: Inode) -> list[tuple[str, int]]:
    """All allocated (kind, addr) blocks of one inode, reading indirects."""
    fmap = FileMap(inode, fs.config.block_size, fs._read_log_block, lambda: None)
    return fmap.all_block_addrs(inode.nblocks(fs.config.block_size))


def _read_old_inode(fs, inum: int, addr: int) -> Inode | None:
    """Read the pre-crash inode instance at ``addr``, if parseable."""
    try:
        payload = fs._read_log_block(addr)
    except (CorruptionError, MediaError):
        return None
    for candidate in unpack_inode_block(payload, fs.config.block_size):
        if candidate.inum == inum:
            return candidate
    return None


def _replay_inode(fs, inode: Inode, addr: int, report: RecoveryReport) -> None:
    """Apply one recovered inode: update the map and segment usage."""
    slot = fs.imap.get(inode.inum)
    if inode.version < slot.version:
        return  # the file was deleted/truncated after this inode was written
    if slot.addr == addr and slot.version == inode.version:
        return  # already current (e.g. double replay)
    bs = fs.config.block_size

    # All reads happen before any accounting mutation, so a media error
    # mid-replay propagates out with the usage table still consistent.
    new_blocks = _inode_block_addrs(fs, inode)
    old_inode = fs._inodes.get(inode.inum)
    old_addr = slot.addr
    if old_inode is None and old_addr not in (NULL_ADDR, PENDING_ADDR):
        old_inode = _read_old_inode(fs, inode.inum, old_addr)
    old_blocks = [] if old_inode is None else _inode_block_addrs(fs, old_inode)

    for _, block_addr in old_blocks:
        fs.usage.remove_live(fs.layout.segment_of(block_addr), bs)
    if old_addr not in (NULL_ADDR, PENDING_ADDR):
        fs.usage.remove_live(fs.layout.segment_of(old_addr), INODE_SIZE)
    for _, block_addr in new_blocks:
        fs.usage.add_live(fs.layout.segment_of(block_addr), bs, inode.mtime)
    fs.usage.add_live(fs.layout.segment_of(addr), INODE_SIZE, inode.mtime)

    fs.imap.set_addr(inode.inum, addr)
    slot.version = inode.version
    fs._inodes[inode.inum] = inode
    fs._filemaps.pop(inode.inum, None)
    fs._dir_states.pop(inode.inum, None)
    # Drop any cached blocks (including dirty fix-up blocks written by
    # earlier directory-log replays): this inode instance was written
    # after them in the log, so its on-disk content supersedes them.
    fs.cache.drop_file(inode.inum)
    report.inodes_recovered += 1
    report.blocks_recovered += len(new_blocks)


def _replay_dirop(fs, record: DirOpRecord, report: RecoveryReport) -> None:
    """Restore directory/inode consistency for one logged operation."""
    inum = record.file_inum
    alive = fs.imap.is_allocated(inum)

    def dir_alive(dinum: int) -> bool:
        return fs.imap.is_allocated(dinum) and fs.get_inode(dinum).is_directory

    def entry_points_here(dinum: int, name: str) -> bool:
        return dir_alive(dinum) and fs._dir_state(dinum).lookup(name) == inum

    def ensure_entry(dinum: int, name: str) -> None:
        if dir_alive(dinum) and fs._dir_state(dinum).lookup(name) is None:
            fs._dir_insert(dinum, name, inum)

    def drop_entry(dinum: int, name: str) -> None:
        if entry_points_here(dinum, name):
            fs._dir_remove(dinum, name)

    applied = False
    if record.op in (DirOp.CREATE, DirOp.LINK):
        if alive:
            ensure_entry(record.dir1, record.name1)
            inode = fs.get_inode(inum)
            if inode.nlink != record.refcount:
                inode.nlink = record.refcount
                fs._mark_inode_dirty(inum)
            applied = True
        else:
            # The inode was never written: remove the orphaned entry.
            if entry_points_here(record.dir1, record.name1):
                fs._dir_remove(record.dir1, record.name1)
                report.orphan_entries_removed += 1
                applied = True
    elif record.op == DirOp.UNLINK:
        drop_entry(record.dir1, record.name1)
        if alive:
            if record.refcount <= 0:
                fs._free_inode(inum)
                report.files_freed += 1
            else:
                inode = fs.get_inode(inum)
                inode.nlink = record.refcount
                fs._mark_inode_dirty(inum)
        applied = True
    elif record.op == DirOp.RENAME:
        if alive:
            drop_entry(record.dir1, record.name1)
            ensure_entry(record.dir2, record.name2)
            inode = fs.get_inode(inum)
            if inode.nlink != record.refcount:
                inode.nlink = record.refcount
                fs._mark_inode_dirty(inum)
        else:
            drop_entry(record.dir1, record.name1)
            drop_entry(record.dir2, record.name2)
        applied = True
    if applied:
        report.dirops_applied += 1


def roll_forward(fs, cp: Checkpoint) -> RecoveryReport:
    """Recover everything durably written after the last checkpoint.

    Returns a report; the caller is responsible for writing a fresh
    checkpoint afterwards (``LFS.mount`` does).
    """
    report = RecoveryReport()
    start_time = fs.disk.clock.now
    with fs._span("recovery.rollforward", from_seq=cp.log_seq):
        writes = _collect_partial_writes(fs, cp, report)
        report.partial_writes_replayed = len(writes)

        # Replay strictly in log order, interleaving directory-log records
        # with inode updates. This is what the paper's ordering guarantee —
        # "each directory operation log entry appears in the log before the
        # corresponding directory block or inode" — buys: an UNLINK replays
        # against the inode-map state of its own moment in the log, so a
        # later re-creation of the same inode number is never clobbered.
        for pw in writes:
            base = fs.layout.segment_start(pw.segment) + pw.offset + 1
            for i, payload in sorted(pw.payloads.items()):
                entry = pw.summary.entries[i]
                if entry.kind == BlockKind.DIROP_LOG:
                    for record in unpack_block(payload):
                        _replay_dirop(fs, record, report)
                elif entry.kind == BlockKind.INODE:
                    for inode in unpack_inode_block(payload, fs.config.block_size):
                        _replay_inode(fs, inode, base + i, report)

        if writes:
            last = writes[-1]
            end_offset = last.offset + 1 + len(last.summary.entries)
            next_seg = (
                None
                if last.summary.next_segment == NO_SEGMENT
                else last.summary.next_segment
            )
            fs.writer.restore_cursor(
                last.segment, end_offset, last.summary.seq + 1, next_seg
            )
        report.elapsed = fs.disk.clock.now - start_time
    return report


# ======================================================================
# NVM staging-log replay (the second persistence domain)
#
# Staged records are *re-executed*, not fixed up: an NVM-staged CREATE
# whose inode never reached the on-disk log has nothing for
# :func:`_replay_dirop` to key on — that pass would treat the entry as an
# orphan and remove it, deleting an acknowledged file. Re-execution
# instead materializes the missing inode (the record carries its file
# type) and replays the operation through the live directory paths, which
# regenerate the directory blocks dirty in cache. Replay leaves state
# dirty and the records in place; the next flush (normally the
# post-recovery checkpoint) makes everything durable and truncates the
# staging log.
#
# Re-execution must also stay conservative when the durable disk state
# already reflects a *later, unacknowledged but flushed* operation (a
# threshold or destage flush that tore before its NVM truncate):
#  - content: a file whose durable inode mtime is strictly newer than the
#    record's staged META was covered completely by a later flush (data
#    blocks precede the inode within every flush), so its patches and
#    meta are skipped — the newer consistent state wins;
#  - namespace: an entry is inserted only into a vacant slot, removed
#    only while it still points at the staged inode, and a CREATE/LINK
#    whose link count is already satisfied is treated as superseded.
# Either way the recovered state lands inside the crash oracle's bounds:
# the staged (acknowledged) state or a later applied one.


def _nvm_materialize(fs, inum: int, ftype: FileType) -> Inode:
    """Bring to life an inode that never reached the on-disk log.

    Mirrors :meth:`LFS.create`'s allocation: the slot points at
    ``PENDING_ADDR`` until the next flush writes the inode. The mtime is
    zeroed so the staleness guard never mistakes a materialized inode for
    newer durable state; the record's META supplies the real values.
    """
    fs.imap.set_addr(inum, PENDING_ADDR)
    if inum >= fs.imap._next_inum:
        fs.imap._next_inum = inum + 1
    inode = Inode(
        inum=inum,
        version=fs.imap.version_of(inum),
        ftype=ftype,
        nlink=0,
        mtime=0.0,
        ctime=0.0,
    )
    fs._inodes[inum] = inode
    fs._mark_inode_dirty(inum)
    if ftype == FileType.DIRECTORY:
        from repro.core.filesystem import _DirState

        fs._dir_states[inum] = _DirState([])
    return inode


def _nvm_stale_files(fs, metas: list[NVMeta]) -> set[int]:
    """Files whose durable inode is strictly newer than this record.

    A newer durable mtime proves a later flush covered the file
    completely — within every flush the data items precede the inode
    item, so a durable inode implies durable data. Re-imposing the
    record's older acked content over it would manufacture a state that
    never existed; skipping leaves a later consistent state, which the
    crash bounds accept.
    """
    stale: set[int] = set()
    for meta in metas:
        if not fs.imap.is_allocated(meta.inum):
            continue
        try:
            inode = fs.get_inode(meta.inum)
        except (CorruptionError, MediaError):
            continue
        if inode.mtime > meta.mtime:
            stale.add(meta.inum)
    return stale


def _nvm_apply_dirop(fs, op: NVDirOp, report: RecoveryReport | None) -> None:
    """Re-execute one staged directory operation (see module notes)."""
    rec = op.record
    inum = rec.file_inum

    def dir_alive(dinum: int) -> bool:
        return fs.imap.is_allocated(dinum) and fs.get_inode(dinum).is_directory

    def lookup(dinum: int, name: str) -> int | None:
        if not dir_alive(dinum):
            return None
        return fs._dir_state(dinum).lookup(name)

    def set_nlink(n: int) -> None:
        inode = fs.get_inode(inum)
        if inode.nlink != n:
            inode.nlink = n
            fs._mark_inode_dirty(inum)

    applied = False
    if rec.op in (DirOp.CREATE, DirOp.LINK):
        target = lookup(rec.dir1, rec.name1)
        if target == inum:
            set_nlink(rec.refcount)
            applied = True
        elif target is None and dir_alive(rec.dir1):
            if fs.imap.is_allocated(inum):
                if fs.get_inode(inum).nlink >= rec.refcount:
                    # The link count is satisfied without this entry: a
                    # later durable operation moved or removed it.
                    return
            else:
                _nvm_materialize(fs, inum, op.ftype)
            fs._dir_insert(rec.dir1, rec.name1, inum)
            set_nlink(rec.refcount)
            applied = True
        # else: another inode owns the name — a later durable operation
        # claimed it; the staged op is superseded.
    elif rec.op == DirOp.UNLINK:
        if lookup(rec.dir1, rec.name1) == inum:
            fs._dir_remove(rec.dir1, rec.name1)
        if fs.imap.is_allocated(inum):
            if rec.refcount <= 0:
                fs._free_inode(inum)
                if report is not None:
                    report.files_freed += 1
            else:
                set_nlink(rec.refcount)
        applied = True
    elif rec.op == DirOp.RENAME:
        src = lookup(rec.dir1, rec.name1)
        dst = lookup(rec.dir2, rec.name2)
        if dst == inum:
            if src == inum:
                fs._dir_remove(rec.dir1, rec.name1)  # half-applied move
            applied = True
        elif src == inum and dst is None and dir_alive(rec.dir2):
            fs._dir_remove(rec.dir1, rec.name1)
            fs._dir_insert(rec.dir2, rec.name2, inum)
            set_nlink(rec.refcount)
            applied = True
        elif (
            not fs.imap.is_allocated(inum)
            and src is None
            and dst is None
            and dir_alive(rec.dir2)
        ):
            # The renamed inode never reached any domain's durable state
            # (both its CREATE and this RENAME were staged only, and an
            # earlier record should have materialized it — defensive).
            _nvm_materialize(fs, inum, op.ftype)
            fs._dir_insert(rec.dir2, rec.name2, inum)
            set_nlink(rec.refcount)
            applied = True
    if applied and report is not None:
        report.nvm_dirops_applied += 1


def _nvm_apply_patch(fs, patch: NVPatch, report: RecoveryReport | None) -> None:
    """Apply one staged byte-range delta through the cache."""
    if not fs.imap.is_allocated(patch.inum):
        return
    inode = fs.get_inode(patch.inum)
    if inode.is_directory:
        return
    bs = fs.config.block_size
    fbn = patch.offset // bs
    block_off = patch.offset % bs
    base = bytearray(fs._read_data_block(patch.inum, fbn))
    base[block_off : block_off + len(patch.data)] = patch.data
    fs.cache.write(patch.inum, fbn, bytes(base), inode.mtime)
    if patch.offset + len(patch.data) > inode.size:
        inode.size = patch.offset + len(patch.data)
    fs._mark_inode_dirty(patch.inum)
    if report is not None:
        report.nvm_patches_applied += 1


def _nvm_apply_meta(fs, meta: NVMeta, report: RecoveryReport | None) -> None:
    """Apply one staged (size, mtime); a shrink replays as a truncate."""
    if not fs.imap.is_allocated(meta.inum):
        return
    inode = fs.get_inode(meta.inum)
    if inode.is_directory:
        return
    bs = fs.config.block_size
    if meta.size < inode.size:
        first_dead_fbn = (meta.size + bs - 1) // bs
        fmap = fs.filemap(meta.inum)
        freed = fmap.clear_from(first_dead_fbn, inode.nblocks(bs))
        for _, addr in freed:
            fs.usage.remove_live(fs.layout.segment_of(addr), bs)
        fs.cache.drop_from(meta.inum, first_dead_fbn)
        if meta.size == 0:
            inode.version = fs.imap.bump_version(meta.inum)
    inode.size = meta.size
    inode.mtime = meta.mtime
    fs._mark_inode_dirty(meta.inum)
    if report is not None:
        report.nvm_metas_applied += 1


def replay_nvm(fs, report: RecoveryReport | None = None) -> None:
    """Replay surviving NVM staging records on top of roll-forward state.

    Records apply in append order; within a record, directory operations
    first (they may materialize the inodes the patches target), then
    patches, then metas. Damage confined to the final record is the
    expected torn tail of a mid-append power cut — that append was never
    acknowledged, so it is dropped (and, if it was the only content,
    truncated away). Damage earlier in the log means acknowledged records
    are gone: the valid prefix is still applied, then the mount degrades
    to read-only rather than silently continue from a hole in the acked
    history.
    """
    nvram = fs.nvram
    result = nvram.read_records()
    with fs._span("recovery.nvm", records=len(result.bodies), dropped=result.dropped):
        for body in result.bodies:
            dirops, patches, metas = unpack_body(body)
            stale = _nvm_stale_files(fs, metas)
            for op in dirops:
                _nvm_apply_dirop(fs, op, report)
            for patch in patches:
                if patch.inum in stale:
                    continue
                _nvm_apply_patch(fs, patch, report)
            for meta in metas:
                if meta.inum in stale:
                    continue
                _nvm_apply_meta(fs, meta, report)
    if report is not None:
        report.nvm_records_replayed += len(result.bodies)
        report.nvm_records_dropped += result.dropped
    if result.lost:
        if report is not None:
            report.nvm_lost = True
        fs._degrade_read_only(
            "NVM staging log damaged mid-log; acknowledged synchronous "
            "writes were lost"
        )
    elif not result.bodies and result.dropped:
        # Only a torn tail survived — an append that was never
        # acknowledged. Dropping it is the expected crash residue, not a
        # loss, so the log is simply reset.
        nvram.truncate_all(uncovered=0)


def _scan_all_segments(fs, report: RecoveryReport) -> list[_PartialWrite]:
    """Find every intact partial write on the device, segment by segment.

    Unlike roll-forward, the log threading cannot be trusted here (it
    starts from a checkpoint we no longer have), so each segment is walked
    independently from its first block. Within one segment the writes of
    the current epoch are contiguous from offset 0 with strictly
    increasing sequence numbers; any stale summary left over from an
    earlier life of the segment carries a *lower* seq (sequence numbers
    are global and never reused), so requiring monotonic growth cuts the
    walk off exactly at the epoch boundary. Fully stale segments (cleaned
    but not yet rewritten) replay harmlessly: the global seq-ordered
    replay supersedes every block they describe.

    Each write is verified against its whole-write CRC; torn tails, rotted
    payloads, and writes hit by latent sector errors are dropped (counted
    in ``torn_writes_dropped``) rather than replayed wrong.
    """
    writes: list[_PartialWrite] = []
    seg_blocks = fs.config.segment_blocks
    bs = fs.config.block_size

    def find_resume(seg_start: int, from_off: int, prev: int) -> int | None:
        # A damaged summary must not hide the intact writes after it:
        # locate the next current-epoch summary by peek (locator only —
        # the resumed block is re-read for real), relying on seqs within
        # an epoch strictly increasing so stale residue cannot match.
        for off in range(from_off + 1, seg_blocks - 1):
            cand = try_parse_summary(fs.disk.peek(seg_start + off), bs)
            if (
                cand is not None
                and cand.seq > prev
                and off + 1 + len(cand.entries) <= seg_blocks
            ):
                return off
        return None

    for seg in range(fs.layout.num_segments):
        report.segments_scanned += 1
        start = fs.layout.segment_start(seg)
        offset = 0
        prev_seq = 0
        while offset < seg_blocks - 1:
            try:
                block = fs.disk.read_block(start + offset)
            except MediaError:
                block = None
            summary = (
                try_parse_summary(block, bs) if block is not None else None
            )
            bad_walk = (
                summary is None
                or summary.seq <= prev_seq
                or offset + 1 + len(summary.entries) > seg_blocks
            )
            if bad_walk:
                resume = find_resume(start, offset, prev_seq)
                if resume is None:
                    break
                report.torn_writes_dropped += 1
                offset = resume
                continue
            n = len(summary.entries)
            try:
                full = fs.disk.read_blocks(start + offset + 1, n) if n else []
            except MediaError:
                full = None
            if full is not None and summary.verify(full):
                payloads = {
                    i: full[i]
                    for i, entry in enumerate(summary.entries)
                    if entry.kind in _METADATA_KINDS
                }
                writes.append(
                    _PartialWrite(
                        summary=summary, segment=seg, offset=offset, payloads=payloads
                    )
                )
            else:
                report.torn_writes_dropped += 1
            prev_seq = summary.seq
            offset += 1 + n
    return writes


def scavenge(fs) -> RecoveryReport:
    """Rebuild the file system from segment summaries alone (lfsck of last
    resort, for when *both* checkpoint regions are unreadable).

    The whole segment area is scanned for intact partial writes, which are
    then replayed in global sequence order against the empty in-memory
    state ``fs`` was constructed with — the same replay primitives as
    roll-forward, applied to the entire surviving history instead of a
    checkpoint's suffix. The inode map, segment usage table, directory
    consistency, allocation hint, and log cursor all come back out of the
    scan; quarantine verdicts recorded only in the lost usage table do
    not (a following scrub can re-establish them).

    The caller is responsible for writing a fresh checkpoint afterwards.
    Raises :class:`CorruptionError` when no intact partial write survives.
    """
    report = RecoveryReport(scavenged=True)
    start_time = fs.disk.clock.now
    with fs._span("recovery.scavenge"):
        writes = _scan_all_segments(fs, report)
        if not writes:
            raise CorruptionError(
                "scavenge failed: no intact partial write found in the segment area"
            )
        writes.sort(key=lambda pw: pw.summary.seq)
        report.partial_writes_replayed = len(writes)
        # Catch the clock up to the newest surviving write so recovered
        # mtimes and usage-table age stamps stay in the past.
        fs.disk.clock.advance_to(max(pw.summary.write_time for pw in writes))

        for pw in writes:
            base = fs.layout.segment_start(pw.segment) + pw.offset + 1
            for i, payload in sorted(pw.payloads.items()):
                entry = pw.summary.entries[i]
                if entry.kind == BlockKind.DIROP_LOG:
                    for record in unpack_block(payload):
                        _replay_dirop(fs, record, report)
                elif entry.kind == BlockKind.INODE:
                    for inode in unpack_inode_block(payload, fs.config.block_size):
                        try:
                            _replay_inode(fs, inode, base + i, report)
                        except (CorruptionError, MediaError):
                            # This instance's block tree is unreadable; an
                            # earlier intact instance (if any) stays current.
                            continue

        last = writes[-1]
        end_offset = last.offset + 1 + len(last.summary.entries)
        next_seg = (
            None if last.summary.next_segment == NO_SEGMENT else last.summary.next_segment
        )
        if next_seg is not None and not (
            0 <= next_seg < fs.layout.num_segments and fs.usage.get(next_seg).clean
        ):
            next_seg = None  # the recorded successor is gone; reserve afresh
        fs.writer.restore_cursor(last.segment, end_offset, last.summary.seq + 1, next_seg)

        allocated = fs.imap.allocated_inums()
        fs.imap._next_inum = (max(allocated) + 1) if allocated else ROOT_INUM + 1
        # Every map/usage block must make it into the fresh checkpoint: the
        # old on-disk copies are unreachable without the lost regions.
        fs.imap.mark_all_dirty()
        fs.usage.mark_all_dirty()

        report.elapsed = fs.disk.clock.now - start_time
        if fs.obs is not None:
            fs.obs.emit(
                RECOVER_SCAVENGE,
                segments=report.segments_scanned,
                inodes=report.inodes_recovered,
                partial_writes=report.partial_writes_replayed,
            )
    return report
