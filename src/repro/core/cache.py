"""The file cache / write buffer.

The premise of a log-structured file system (Section 2.1) is that main
memory absorbs reads and batches writes: "collect large amounts of new
data in a file cache in main memory, then write the data to disk in a
single large I/O". This cache holds file data blocks keyed by
``(inum, file block number)``, tracks dirty state and per-block
modification times (used for age-sorting during cleaning), and evicts
clean blocks LRU when full.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.errors import InvalidOperationError


@dataclass
class CacheEntry:
    """One cached file block."""

    payload: bytes
    dirty: bool
    mtime: float


class BlockCache:
    """An LRU write-back cache of file data blocks.

    Dirty blocks are never evicted here — the file system is responsible
    for flushing when :meth:`over_capacity` or the dirty count says so.
    """

    def __init__(self, capacity_blocks: int = 8192) -> None:
        if capacity_blocks < 1:
            raise InvalidOperationError("cache capacity must be >= 1 block")
        self.capacity_blocks = capacity_blocks
        self._entries: "OrderedDict[tuple[int, int], CacheEntry]" = OrderedDict()
        self._dirty: set[tuple[int, int]] = set()
        self.hits = 0
        self.misses = 0
        # Optional observability hook (repro.obs.Observation); None = off.
        self.obs = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def dirty_count(self) -> int:
        """Number of dirty blocks awaiting a log write."""
        return len(self._dirty)

    def lookup(self, inum: int, fbn: int) -> CacheEntry | None:
        """Return the cached entry (refreshing LRU), or None on a miss."""
        key = (inum, fbn)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def peek(self, inum: int, fbn: int) -> CacheEntry | None:
        """Unmetered lookup: no hit/miss accounting, no LRU refresh.

        For *internal* traffic — the cleaner's liveness checks, flush
        placement — so ``hit_rate`` and eviction order reflect only
        application lookups.
        """
        return self._entries.get((inum, fbn))

    def contains(self, inum: int, fbn: int) -> bool:
        """Membership test without perturbing LRU order or hit counters."""
        return (inum, fbn) in self._entries

    def insert_clean(self, inum: int, fbn: int, payload: bytes, mtime: float = 0.0) -> None:
        """Cache a block read from disk."""
        key = (inum, fbn)
        existing = self._entries.get(key)
        if existing is not None and existing.dirty:
            raise InvalidOperationError(
                f"refusing to overwrite dirty block {key} with a clean read"
            )
        self._entries[key] = CacheEntry(payload=payload, dirty=False, mtime=mtime)
        self._entries.move_to_end(key)
        self._evict_if_needed()

    def write(self, inum: int, fbn: int, payload: bytes, mtime: float) -> None:
        """Buffer a modified block (marks it dirty)."""
        key = (inum, fbn)
        self._entries[key] = CacheEntry(payload=payload, dirty=True, mtime=mtime)
        self._entries.move_to_end(key)
        self._dirty.add(key)
        self._evict_if_needed()

    def mark_clean(self, inum: int, fbn: int) -> None:
        """Mark a block clean after it has been written to the log."""
        key = (inum, fbn)
        entry = self._entries.get(key)
        if entry is not None:
            entry.dirty = False
        self._dirty.discard(key)

    def drop(self, inum: int, fbn: int) -> None:
        """Forget one block (dirty or not) — used by delete/truncate."""
        self._entries.pop((inum, fbn), None)
        self._dirty.discard((inum, fbn))

    def drop_file(self, inum: int) -> None:
        """Forget every cached block of one file."""
        doomed = [key for key in self._entries if key[0] == inum]
        for key in doomed:
            del self._entries[key]
            self._dirty.discard(key)

    def drop_from(self, inum: int, first_fbn: int) -> None:
        """Forget blocks of ``inum`` at or past ``first_fbn`` (truncate)."""
        doomed = [key for key in self._entries if key[0] == inum and key[1] >= first_fbn]
        for key in doomed:
            del self._entries[key]
            self._dirty.discard(key)

    def dirty_blocks(self) -> list[tuple[int, int, CacheEntry]]:
        """Every dirty block as ``(inum, fbn, entry)``, sorted by key."""
        out = []
        for key in sorted(self._dirty):
            entry = self._entries.get(key)
            if entry is not None:
                out.append((key[0], key[1], entry))
        return out

    def clear_all(self) -> None:
        """Drop everything (crash simulation: RAM contents are lost)."""
        self._entries.clear()
        self._dirty.clear()

    def _evict_if_needed(self) -> None:
        """Evict clean LRU entries while over capacity.

        Pops from the LRU end; a dirty entry encountered there is rotated
        to the MRU end (it is pinned until flushed anyway), keeping the
        scan amortized O(1) per insert. If everything is dirty the cache
        may exceed capacity; the file system's flush policy bounds how
        long that can last.
        """
        scans = len(self._entries)
        while len(self._entries) > self.capacity_blocks and scans > 0:
            if len(self._entries) <= len(self._dirty):
                return  # nothing evictable
            key, entry = self._entries.popitem(last=False)
            if entry.dirty:
                self._entries[key] = entry  # rotate to MRU end
                scans -= 1
                continue
            scans -= 1
            if self.obs is not None:
                self.obs.emit("cache.evict", inum=key[0], fbn=key[1])

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from memory."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
