"""The directory operation log (Section 4.2).

Every directory mutation writes a record — operation code, directory and
file inode numbers, entry name(s), and the file's new reference count —
into the log *before* the corresponding directory block or inode. During
roll-forward these records let recovery restore consistency between
directory entries and inode reference counts, and they make rename atomic.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.constants import DirOp
from repro.core.errors import CorruptionError, InvalidOperationError

# op, pad, file_inum, refcount, dir1_inum, dir2_inum, name1len, name2len
_HEAD = struct.Struct("<B3xQiQQHH")


@dataclass(frozen=True)
class DirOpRecord:
    """One logged directory operation.

    For CREATE/LINK/UNLINK only ``dir1``/``name1`` are used; RENAME uses
    ``dir1``/``name1`` as the source and ``dir2``/``name2`` as the
    destination. ``refcount`` is the inode's link count *after* the
    operation (the paper's "new reference count for the inode named in the
    entry").
    """

    op: DirOp
    file_inum: int
    refcount: int
    dir1: int
    name1: str
    dir2: int = 0
    name2: str = ""

    def pack(self) -> bytes:
        n1 = self.name1.encode("utf-8")
        n2 = self.name2.encode("utf-8")
        if len(n1) > 0xFFFF or len(n2) > 0xFFFF:
            raise InvalidOperationError("directory-log name too long")
        head = _HEAD.pack(
            int(self.op),
            self.file_inum,
            self.refcount,
            self.dir1,
            self.dir2,
            len(n1),
            len(n2),
        )
        return head + n1 + n2

    @classmethod
    def unpack_from(cls, payload: bytes, pos: int) -> tuple["DirOpRecord", int]:
        """Parse one record at ``pos``; returns (record, next position)."""
        if pos + _HEAD.size > len(payload):
            raise CorruptionError("directory-log record truncated")
        op_raw, file_inum, refcount, dir1, dir2, n1len, n2len = _HEAD.unpack_from(
            payload, pos
        )
        try:
            op = DirOp(op_raw)
        except ValueError as exc:
            raise CorruptionError(f"bad directory-log opcode {op_raw}") from exc
        end = pos + _HEAD.size + n1len + n2len
        if end > len(payload):
            raise CorruptionError("directory-log names truncated")
        n1 = payload[pos + _HEAD.size : pos + _HEAD.size + n1len]
        n2 = payload[pos + _HEAD.size + n1len : end]
        try:
            record = cls(
                op=op,
                file_inum=file_inum,
                refcount=refcount,
                dir1=dir1,
                name1=n1.decode("utf-8"),
                dir2=dir2,
                name2=n2.decode("utf-8"),
            )
        except UnicodeDecodeError as exc:
            raise CorruptionError("directory-log name is not valid UTF-8") from exc
        return record, end


def pack_records(records: list[DirOpRecord], block_size: int) -> list[bytes]:
    """Pack records into as many block payloads as needed.

    Each block starts with a 4-byte record count; records never span
    blocks.
    """
    blocks: list[bytes] = []
    current: list[bytes] = []
    used = 4
    count = 0

    def flush() -> None:
        nonlocal current, used, count
        if count:
            payload = struct.pack("<I", count) + b"".join(current)
            blocks.append(payload.ljust(block_size, b"\0"))
        current, used, count = [], 4, 0

    for record in records:
        raw = record.pack()
        if len(raw) + 4 > block_size:
            raise InvalidOperationError("directory-log record larger than a block")
        if used + len(raw) > block_size:
            flush()
        current.append(raw)
        used += len(raw)
        count += 1
    flush()
    return blocks


def unpack_block(payload: bytes) -> list[DirOpRecord]:
    """Parse every record in one directory-log block."""
    if len(payload) < 4:
        raise CorruptionError("directory-log block truncated")
    (count,) = struct.unpack_from("<I", payload, 0)
    records = []
    pos = 4
    for _ in range(count):
        record, pos = DirOpRecord.unpack_from(payload, pos)
        records.append(record)
    return records
