"""The superblock (Table 1): static configuration at a fixed location.

Block 0 holds the parameters needed to interpret the rest of the disk —
block size, segment size, inode-map capacity, and the placement of the two
checkpoint regions and the segment area. It is written once by mkfs and
never changes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.blocks import require
from repro.core.config import DiskLayout, LFSConfig
from repro.core.constants import SUPERBLOCK_MAGIC

_FORMAT = struct.Struct("<IIQQQQQQQQ")
FORMAT_VERSION = 1


@dataclass(frozen=True)
class Superblock:
    """Parsed superblock contents."""

    block_size: int
    segment_bytes: int
    max_inodes: int
    num_segments: int
    segment_area_start: int
    checkpoint_blocks: int
    checkpoint_a: int
    checkpoint_b: int

    def to_bytes(self, block_size: int) -> bytes:
        payload = _FORMAT.pack(
            SUPERBLOCK_MAGIC,
            FORMAT_VERSION,
            self.block_size,
            self.segment_bytes,
            self.max_inodes,
            self.num_segments,
            self.segment_area_start,
            self.checkpoint_blocks,
            self.checkpoint_a,
            self.checkpoint_b,
        )
        return payload.ljust(block_size, b"\0")

    @classmethod
    def from_bytes(cls, payload: bytes) -> "Superblock":
        require(len(payload) >= _FORMAT.size, "superblock truncated")
        (
            magic,
            version,
            block_size,
            segment_bytes,
            max_inodes,
            num_segments,
            segment_area_start,
            checkpoint_blocks,
            checkpoint_a,
            checkpoint_b,
        ) = _FORMAT.unpack_from(payload, 0)
        require(magic == SUPERBLOCK_MAGIC, "bad superblock magic (not an LFS disk?)")
        require(version == FORMAT_VERSION, f"unsupported format version {version}")
        return cls(
            block_size=block_size,
            segment_bytes=segment_bytes,
            max_inodes=max_inodes,
            num_segments=num_segments,
            segment_area_start=segment_area_start,
            checkpoint_blocks=checkpoint_blocks,
            checkpoint_a=checkpoint_a,
            checkpoint_b=checkpoint_b,
        )

    @classmethod
    def from_layout(cls, config: LFSConfig, layout: DiskLayout) -> "Superblock":
        return cls(
            block_size=config.block_size,
            segment_bytes=config.segment_bytes,
            max_inodes=config.max_inodes,
            num_segments=layout.num_segments,
            segment_area_start=layout.segment_area_start,
            checkpoint_blocks=layout.checkpoint_blocks,
            checkpoint_a=layout.checkpoint_a,
            checkpoint_b=layout.checkpoint_b,
        )

    def layout(self) -> DiskLayout:
        """Reconstruct the disk layout recorded here."""
        return DiskLayout(
            num_blocks=0,  # not needed once placement is fixed
            checkpoint_blocks=self.checkpoint_blocks,
            checkpoint_a=self.checkpoint_a,
            checkpoint_b=self.checkpoint_b,
            segment_area_start=self.segment_area_start,
            num_segments=self.num_segments,
            segment_blocks=self.segment_bytes // self.block_size,
        )
