"""Directory file format.

A directory is an ordinary file whose data blocks hold packed entries
(inode number, name). Each block is self-contained: entries never span
blocks, and a zero name length terminates the block's used region. Insert
rewrites only the single block that gains the entry; remove compacts the
single block that loses it — so a create in a directory of N entries dirties
one block, not N/entries-per-block blocks.
"""

from __future__ import annotations

import struct

from repro.core.errors import CorruptionError, InvalidOperationError

_ENTRY_HEAD = struct.Struct("<QH")

MAX_NAME_LEN = 255


def entry_size(name: str) -> int:
    """Bytes one entry occupies in a directory block."""
    encoded = name.encode("utf-8")
    return _ENTRY_HEAD.size + len(encoded)


def validate_name(name: str) -> bytes:
    """Check a file name and return its encoded form."""
    if not name or name in (".", ".."):
        raise InvalidOperationError(f"invalid file name {name!r}")
    if "/" in name or "\0" in name:
        raise InvalidOperationError(f"file name {name!r} contains '/' or NUL")
    encoded = name.encode("utf-8")
    if len(encoded) > MAX_NAME_LEN:
        raise InvalidOperationError(f"file name longer than {MAX_NAME_LEN} bytes")
    return encoded


def parse_block(payload: bytes) -> list[tuple[str, int]]:
    """Decode every entry in one directory block.

    Returns (name, inum) pairs in block order.
    """
    entries: list[tuple[str, int]] = []
    pos = 0
    limit = len(payload)
    while pos + _ENTRY_HEAD.size <= limit:
        inum, namelen = _ENTRY_HEAD.unpack_from(payload, pos)
        if namelen == 0:
            break
        end = pos + _ENTRY_HEAD.size + namelen
        if end > limit:
            raise CorruptionError("directory entry overruns its block")
        name_bytes = payload[pos + _ENTRY_HEAD.size : end]
        try:
            name = name_bytes.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CorruptionError("directory entry name is not valid UTF-8") from exc
        entries.append((name, inum))
        pos = end
    return entries


def pack_block(entries: list[tuple[str, int]], block_size: int) -> bytes:
    """Encode entries into one zero-padded directory block payload."""
    parts = []
    used = 0
    for name, inum in entries:
        encoded = validate_name(name)
        record = _ENTRY_HEAD.pack(inum, len(encoded)) + encoded
        used += len(record)
        if used > block_size:
            raise InvalidOperationError("directory entries overflow one block")
        parts.append(record)
    return b"".join(parts).ljust(block_size, b"\0")


def block_used_bytes(entries: list[tuple[str, int]]) -> int:
    """Bytes the given entries occupy when packed."""
    return sum(entry_size(name) for name, _ in entries)


def block_has_room(entries: list[tuple[str, int]], name: str, block_size: int) -> bool:
    """True if one more entry for ``name`` fits alongside ``entries``."""
    return block_used_bytes(entries) + entry_size(name) <= block_size
