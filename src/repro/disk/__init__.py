"""Simulated disk substrate.

The paper's evaluation is entirely about disk-time economics: seeks versus
sequential transfer. This package provides an in-memory block device with a
service-time model (seek + rotational latency + transfer) calibrated by
default to the Wren IV disk used in the paper, plus deterministic crash
injection for recovery experiments.
"""

from repro.disk.device import Disk
from repro.disk.faults import CrashInjector, DiskCrashed
from repro.disk.geometry import DiskGeometry
from repro.disk.timing import IOStats, SimClock

__all__ = [
    "CrashInjector",
    "Disk",
    "DiskCrashed",
    "DiskGeometry",
    "IOStats",
    "SimClock",
]
