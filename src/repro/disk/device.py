"""The simulated block device.

``Disk`` stores block contents in memory and charges simulated service time
for every request using its :class:`~repro.disk.geometry.DiskGeometry`.
Multi-block requests to contiguous addresses pay one seek plus one streamed
transfer — exactly the economics that make log-structured writes fast.

Contents live in contiguous ``bytearray`` extents (allocated lazily in
fixed-size chunks so multi-gigabyte devices cost nothing until written)
rather than a per-block dict. Read APIs still return immutable ``bytes``
snapshots — callers retain payloads (the block cache, torture recordings),
so handing out live views would alias later writes. :meth:`view` is the
explicit zero-copy path for scan-and-discard consumers (checksums, image
dumps): a read-only ``memoryview`` of the underlying extent, valid only
until the next write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.errors import DiskRangeError, MediaError, TrimmedBlockError
from repro.disk.faults import CrashInjector, DiskCrashed, MediaFaultModel
from repro.disk.geometry import DiskGeometry, FlashGeometry
from repro.disk.timing import IOStats, RetryPolicy, SimClock
from repro.obs.events import FLASH_ERASE, MEDIA_ERROR, MEDIA_RETRY

# Blocks per lazily allocated image extent. 4096 blocks is 16 MiB at the
# default 4 KiB block size — big enough that any segment-sized request
# stays inside one extent, small enough that sparse images stay cheap.
_CHUNK_BLOCKS = 4096


@dataclass(frozen=True)
class DiskState:
    """A picklable snapshot of device contents (see ``Disk.snapshot_state``).

    ``chunks`` mirrors the lazy extent table (``None`` = never allocated);
    ``written`` is the exact set of block addresses ever written, which
    must be preserved independently of the extents so that
    ``written_addresses()`` round-trips through snapshot/restore.

    The four flash fields capture a flash device's erase-block state
    (``None`` on non-flash devices and in snapshots from before the flash
    model existed); they round-trip so erase counts are conserved across
    snapshot/restore — the torture replay harness depends on it.
    """

    chunks: tuple[bytes | None, ...]
    written: frozenset[int]
    erase_counts: tuple[int, ...] | None = None
    programmed: frozenset[int] | None = None
    trimmed: frozenset[int] | None = None
    dirty_blocks: frozenset[int] | None = None


@dataclass(frozen=True)
class FlashMetrics:
    """A point-in-time scrape of a flash device's wear state.

    Registered in the metrics registry as source ``"flash"`` when an
    observation attaches to a flash-geometry disk, so erase totals and
    the wear spread show up in snapshots, reports, and bench deltas.
    """

    erase_blocks: int
    erases_total: int
    wear_min: int
    wear_max: int
    wear_spread: int
    programmed_pages: int
    trimmed_pages: int


class _FlashState:
    """Erase-block bookkeeping layered onto a flash-geometry ``Disk``.

    ``programmed`` holds pages written since their erase block was last
    erased (programming any of them again forces an erase first);
    ``trimmed`` holds pages whose contents the FS declared dead — reads
    fail with :class:`TrimmedBlockError` until they are rewritten;
    ``dirty`` holds erase-block indices programmed into since their last
    erase; ``erase_counts`` is the per-erase-block wear ledger.
    """

    __slots__ = ("geometry", "erase_counts", "programmed", "trimmed", "dirty")

    def __init__(self, geometry: FlashGeometry) -> None:
        self.geometry = geometry
        self.erase_counts: list[int] = [0] * geometry.num_erase_blocks
        self.programmed: set[int] = set()
        self.trimmed: set[int] = set()
        self.dirty: set[int] = set()

    def pages_of(self, eb: int) -> range:
        """Block addresses covered by erase block ``eb``."""
        ebb = self.geometry.erase_block_blocks
        return range(eb * ebb, min((eb + 1) * ebb, self.geometry.num_blocks))

    def metrics(self) -> FlashMetrics:
        counts = self.erase_counts
        return FlashMetrics(
            erase_blocks=len(counts),
            erases_total=sum(counts),
            wear_min=min(counts) if counts else 0,
            wear_max=max(counts) if counts else 0,
            wear_spread=(max(counts) - min(counts)) if counts else 0,
            programmed_pages=len(self.programmed),
            trimmed_pages=len(self.trimmed),
        )


class Disk:
    """An in-memory block device with a disk-arm service-time model.

    Blocks never written read back as all zeroes. The head position is
    tracked so that a request beginning where the previous one ended is
    recognized as sequential and pays no positioning cost.
    """

    def __init__(
        self,
        geometry: DiskGeometry | None = None,
        *,
        clock: SimClock | None = None,
    ) -> None:
        self.geometry = geometry if geometry is not None else DiskGeometry.wren4()
        self.clock = clock if clock is not None else SimClock()
        # Erase-block state exists only on flash geometries; everywhere
        # else ``flash is None`` and the flash paths cost one check.
        self.flash: _FlashState | None = (
            _FlashState(self.geometry)
            if isinstance(self.geometry, FlashGeometry)
            else None
        )
        self.stats = IOStats()
        self.faults = CrashInjector()
        self.media = MediaFaultModel()
        self.retry = RetryPolicy()
        # Optional observability hook (repro.obs.Observation). None means
        # disabled: the only cost on the request path is this one check.
        self.obs = None
        # Lazily allocated contiguous extents; _written tracks the exact
        # block addresses ever stored (writes, torn remnants, bit rot).
        nchunks = -(-self.geometry.num_blocks // _CHUNK_BLOCKS)
        self._chunks: list[bytearray | None] = [None] * nchunks
        self._written: set[int] = set()
        self._zero_block = bytes(self.geometry.block_size)
        # ``_head`` is the address at which the *next* request would be
        # sequential — one past the last block accessed (see _account).
        # A fresh device parks the arm at the start of the platter
        # (_head = 0), so the very first access to block 0 streams with
        # no positioning cost, while the first access to any other block
        # pays a full seek plus rotational latency.
        self._head = 0

    # ------------------------------------------------------------------
    # validation helpers

    def _check_range(self, addr: int, count: int = 1) -> None:
        if count <= 0:
            raise DiskRangeError(f"request for {count} blocks")
        if addr < 0 or addr + count > self.geometry.num_blocks:
            raise DiskRangeError(
                f"blocks [{addr}, {addr + count}) outside device of "
                f"{self.geometry.num_blocks} blocks"
            )

    def _check_payload(self, data: bytes) -> bytes:
        if len(data) > self.geometry.block_size:
            raise DiskRangeError(
                f"payload of {len(data)} bytes exceeds block size "
                f"{self.geometry.block_size}"
            )
        if len(data) < self.geometry.block_size:
            data = data + bytes(self.geometry.block_size - len(data))
        return data

    # ------------------------------------------------------------------
    # image storage

    def _chunk(self, index: int) -> bytearray:
        """The extent holding chunk ``index``, allocated on first touch."""
        c = self._chunks[index]
        if c is None:
            lo = index * _CHUNK_BLOCKS
            span = min(_CHUNK_BLOCKS, self.geometry.num_blocks - lo)
            c = self._chunks[index] = bytearray(span * self.geometry.block_size)
        return c

    def _load(self, addr: int) -> bytes:
        """One block's contents as an immutable snapshot."""
        if addr not in self._written:
            return self._zero_block
        bs = self.geometry.block_size
        index, slot = divmod(addr, _CHUNK_BLOCKS)
        off = slot * bs
        return bytes(self._chunks[index][off : off + bs])

    def _store(self, addr: int, payload: bytes) -> None:
        """Store one exactly-block-sized payload into the image."""
        bs = self.geometry.block_size
        index, slot = divmod(addr, _CHUNK_BLOCKS)
        off = slot * bs
        self._chunk(index)[off : off + bs] = payload
        self._written.add(addr)

    def _account(
        self, to_block: int, nblocks: int, *, write: bool, force_latency: bool = False
    ) -> None:
        nbytes = nblocks * self.geometry.block_size
        if self.flash is not None:
            # Flash: no arm, no rotation — position and ``force_latency``
            # are irrelevant; reads and programs pay asymmetric fixed
            # latencies plus a channel-striped transfer.
            elapsed = self.geometry.service_time(nbytes, write=write)
            seeked = False
            self.clock.advance(elapsed)
            self.stats.busy_time += elapsed
            self.stats.transfer_time += elapsed
        else:
            elapsed = self.geometry.access_time(self._head, to_block, nbytes)
            seeked = to_block != self._head
            if force_latency and not seeked:
                # An individually issued request misses the rotation even
                # when the target is adjacent (no controller streaming) —
                # how the paper's SunOS performs "individual disk
                # operations for each block".
                elapsed += self.geometry.rotation_time / 2.0
                seeked = True
            self.clock.advance(elapsed)
            self.stats.busy_time += elapsed
            self.stats.transfer_time += self.geometry.transfer_time(nbytes)
            if seeked:
                self.stats.seeks += 1
                self.stats.seek_time += elapsed - self.geometry.transfer_time(nbytes)
        if write:
            self.stats.writes += 1
            self.stats.blocks_written += nblocks
            self.stats.bytes_written += nbytes
        else:
            self.stats.reads += 1
            self.stats.blocks_read += nblocks
            self.stats.bytes_read += nbytes
        self._head = to_block + nblocks
        if self.obs is not None:
            self.obs.on_io(
                self.clock.now, to_block, nblocks, elapsed, write=write, seeked=seeked
            )

    def _media_check(self, addr: int, count: int, op: str) -> None:
        """Run the sick-disk gauntlet for one request, with bounded retry.

        Dormant (no registered faults) this is a single attribute check.
        Otherwise each attempt probes every block of the request; a media
        error waits out the policy's backoff (clock time, *not* busy
        time — the arm is recovering, not transferring) and retries.
        Exhausting the attempts surfaces the last :class:`MediaError`.
        """
        if not self.media.active:
            return
        attempt = 1
        while True:
            try:
                for i in range(count):
                    self.media.check_access(addr + i, op)
                return
            except MediaError as exc:
                if attempt >= self.retry.attempts:
                    self.stats.media_errors += 1
                    if self.obs is not None:
                        self.obs.emit(
                            MEDIA_ERROR, addr=exc.addr, op=op, attempts=attempt
                        )
                    raise
                attempt += 1
                backoff = self.retry.backoff_before(attempt)
                self.clock.advance(backoff)
                self.stats.retries += 1
                self.stats.retry_time += backoff
                if self.obs is not None:
                    self.obs.emit(
                        MEDIA_RETRY,
                        addr=exc.addr,
                        op=op,
                        attempt=attempt,
                        backoff=backoff,
                    )

    # ------------------------------------------------------------------
    # flash erase-block semantics

    def _flash_check_read(self, addr: int, count: int) -> None:
        """Enforce the flash honesty contract on a semantic read.

        A trimmed-but-not-rewritten page has no contents anymore: the
        read fails with a typed :class:`TrimmedBlockError` rather than
        returning whatever bytes the image still holds. (``peek`` and
        ``view`` stay raw — they are the forensic, non-semantic probes.)
        """
        fl = self.flash
        if fl is None or not fl.trimmed:
            return
        for a in range(addr, addr + count):
            if a in fl.trimmed:
                raise TrimmedBlockError(
                    "block was trimmed and not rewritten", addr=a, op="read"
                )

    def _flash_prepare(self, addr: int, nblocks: int) -> None:
        """Enforce erase-before-reuse ahead of a program.

        Reprogramming any page still programmed from a previous write
        forces an erase of its whole erase block first (charged to the
        clock and the wear ledger). A range the FS trimmed ahead of time
        was already erased by :meth:`trim`, so reuse pays no stall —
        that is the entire point of TRIM.
        """
        fl = self.flash
        if fl is None:
            return
        ebb = self.geometry.erase_block_blocks
        span = range(addr, addr + nblocks)
        for eb in range(addr // ebb, (addr + nblocks - 1) // ebb + 1):
            lo = max(addr, eb * ebb)
            hi = min(addr + nblocks, (eb + 1) * ebb)
            if any(a in fl.programmed for a in range(lo, hi)):
                self._erase_block(eb, reason="reuse")
        fl.programmed.update(span)
        fl.trimmed.difference_update(span)
        fl.dirty.update(range(addr // ebb, (addr + nblocks - 1) // ebb + 1))

    def _erase_block(self, eb: int, *, reason: str) -> None:
        """Erase one erase block: wear +1, erase latency on the clock.

        Like retry backoff, erase time advances the clock but not
        ``busy_time`` (busy time stays the sum of served transfers so
        per-cause attribution adds up). Contents are preserved — the
        model's FTL migrates surviving pages — but every page in the
        block becomes programmable again without a further erase.
        """
        fl = self.flash
        fl.erase_counts[eb] += 1
        fl.programmed.difference_update(fl.pages_of(eb))
        fl.dirty.discard(eb)
        self.stats.erases += 1
        latency = self.geometry.erase_latency
        self.clock.advance(latency)
        self.stats.erase_time += latency
        if self.obs is not None:
            ebb = self.geometry.erase_block_blocks
            self.obs.emit(
                FLASH_ERASE,
                block=eb,
                start=eb * ebb,
                blocks=len(fl.pages_of(eb)),
                count=fl.erase_counts[eb],
                reason=reason,
            )

    def trim(self, addr: int, count: int = 1) -> int:
        """Declare ``count`` blocks dead (TRIM); returns erases performed.

        On a non-flash geometry this is a free no-op. On flash the pages
        are marked trimmed — reads raise :class:`TrimmedBlockError`
        until they are rewritten — and any erase block left with no
        programmed pages is erased immediately ("erase ahead of reuse"),
        so the next log write into a trimmed segment pays no erase
        stall. The TRIM command itself costs no simulated time; the
        erases it triggers are charged normally.
        """
        self._check_range(addr, count)
        fl = self.flash
        if fl is None:
            return 0
        span = range(addr, addr + count)
        fl.programmed.difference_update(span)
        fl.trimmed.update(span)
        erased = 0
        for eb in range(addr // fl.geometry.erase_block_blocks,
                        (addr + count - 1) // fl.geometry.erase_block_blocks + 1):
            if eb in fl.dirty and not any(
                a in fl.programmed for a in fl.pages_of(eb)
            ):
                self._erase_block(eb, reason="trim")
                erased += 1
        return erased

    def flash_metrics(self) -> FlashMetrics | None:
        """Wear/state scrape for the metrics registry (None off flash)."""
        return self.flash.metrics() if self.flash is not None else None

    # ------------------------------------------------------------------
    # I/O

    def read_block(self, addr: int, *, force_latency: bool = False) -> bytes:
        """Read one block; unwritten blocks are zero-filled.

        ``force_latency`` models an individually issued request that
        cannot stream from the previous one (pays rotational latency even
        when the address is adjacent).
        """
        self._check_range(addr)
        self.faults.check_read(addr)
        self._flash_check_read(addr, 1)
        self._media_check(addr, 1, "read")
        self._account(addr, 1, write=False, force_latency=force_latency)
        return self._load(addr)

    def read_blocks(self, addr: int, count: int) -> list[bytes]:
        """Read ``count`` contiguous blocks as one streamed request."""
        self._check_range(addr, count)
        self.faults.check_read(addr)
        self._flash_check_read(addr, count)
        self._media_check(addr, count, "read")
        self._account(addr, count, write=False)
        return [self._load(addr + i) for i in range(count)]

    def write_block(self, addr: int, data: bytes, *, force_latency: bool = False) -> None:
        """Write one block (short payloads are zero-padded).

        See :meth:`read_block` for ``force_latency``.
        """
        self._check_range(addr)
        data = self._check_payload(data)
        self._media_check(addr, 1, "write")
        self._flash_prepare(addr, 1)
        self._persist(addr, data)
        self._account(addr, 1, write=True, force_latency=force_latency)

    def _persist(self, addr: int, payload: bytes) -> None:
        """Store one block, honoring the crash injector's verdict.

        If the injector trips on this block, a torn-mode crash still
        persists a partial payload before the exception propagates.
        """
        try:
            self.faults.check_write(addr)
        except DiskCrashed:
            torn = self.faults.torn_payload(payload, self._load(addr))
            if torn is not None:
                self._store(addr, torn)
            raise
        self._store(addr, payload)

    def write_blocks(
        self, addr: int, blocks: Sequence[bytes], *, force_latency: bool = False
    ) -> None:
        """Write contiguous blocks as one streamed request.

        Under crash injection the request may persist a durable *prefix*
        and then raise — mirroring a power cut in the middle of a large
        sequential transfer. In the injector's ``reorder`` mode the
        queued blocks persist in a seeded order instead, so the durable
        part is an arbitrary subset; in ``torn`` mode the dying block
        keeps a partial payload.

        See :meth:`read_block` for ``force_latency``.
        """
        if not blocks:
            raise DiskRangeError("empty multi-block write")
        self._check_range(addr, len(blocks))
        payloads = [self._check_payload(b) for b in blocks]
        self._media_check(addr, len(payloads), "write")
        self._flash_prepare(addr, len(payloads))
        self._account(addr, len(payloads), write=True, force_latency=force_latency)
        for i in self.faults.request_order(len(payloads)):
            self._persist(addr + i, payloads[i])

    # ------------------------------------------------------------------
    # inspection / lifecycle

    def peek(self, addr: int) -> bytes:
        """Read block contents without advancing time (for tests/tools)."""
        self._check_range(addr)
        return self._load(addr)

    def view(self, addr: int, count: int = 1) -> memoryview:
        """A read-only window onto stored bytes — no time, no copy.

        Zero-copy whenever the range sits inside one image extent (any
        segment-sized range does); a range spanning extents, or one whose
        extent was never allocated, falls back to a snapshot. The view
        aliases live storage: it is valid only until the next write, and
        callers that retain payloads must use :meth:`peek` instead.
        """
        self._check_range(addr, count)
        bs = self.geometry.block_size
        index, slot = divmod(addr, _CHUNK_BLOCKS)
        if (addr + count - 1) // _CHUNK_BLOCKS == index:
            c = self._chunks[index]
            if c is None:
                return memoryview(bytes(count * bs))
            off = slot * bs
            return memoryview(c).toreadonly()[off : off + count * bs]
        return memoryview(b"".join(self._load(addr + i) for i in range(count)))

    def corrupt_block(self, addr: int, payload: bytes) -> None:
        """Silently replace stored bytes — no time, no stats, no faults.

        This is the bit-rot injection channel: the device's own write path
        never ran, so nothing above it can know the contents changed until
        a checksum fails.
        """
        self._check_range(addr)
        self._store(addr, self._check_payload(payload))

    def written_addresses(self) -> Iterable[int]:
        """Addresses of every block that has ever been written."""
        return self._written

    def snapshot_state(self) -> DiskState:
        """Capture contents for later :meth:`restore_state` (picklable)."""
        fl = self.flash
        return DiskState(
            chunks=tuple(bytes(c) if c is not None else None for c in self._chunks),
            written=frozenset(self._written),
            erase_counts=tuple(fl.erase_counts) if fl is not None else None,
            programmed=frozenset(fl.programmed) if fl is not None else None,
            trimmed=frozenset(fl.trimmed) if fl is not None else None,
            dirty_blocks=frozenset(fl.dirty) if fl is not None else None,
        )

    def restore_state(self, state: DiskState) -> None:
        """Replace contents with a prior :meth:`snapshot_state` capture."""
        if len(state.chunks) != len(self._chunks):
            raise DiskRangeError(
                f"snapshot of {len(state.chunks)} extents does not fit a "
                f"device of {len(self._chunks)} extents"
            )
        self._chunks = [
            bytearray(c) if c is not None else None for c in state.chunks
        ]
        self._written = set(state.written)
        if self.flash is not None:
            if state.erase_counts is not None:
                self.flash.erase_counts = list(state.erase_counts)
                self.flash.programmed = set(state.programmed or ())
                self.flash.trimmed = set(state.trimmed or ())
                self.flash.dirty = set(state.dirty_blocks or ())
            else:
                # Snapshot predates the flash model (or came from a
                # non-flash device): start from factory-fresh blocks.
                self.flash = _FlashState(self.geometry)

    def crash(
        self, *, after_writes: int | None = None, mode: str = "clean", seed: int = 0
    ) -> None:
        """Cut power now, or arm a cut after ``after_writes`` more writes.

        ``mode``/``seed`` select the dying write's behavior (see
        :meth:`CrashInjector.arm_after_writes`): a clean cut, a torn
        block, or seeded reordering of queued requests.
        """
        if after_writes is None:
            self.faults.force_crash()
        else:
            self.faults.arm_after_writes(after_writes, mode=mode, seed=seed)

    def power_on(self) -> None:
        """Bring a crashed device back; contents persist, head resets."""
        self.faults.power_on()
        self._head = 0

    def reset_stats(self) -> IOStats:
        """Replace the counters with fresh ones, returning the old ones."""
        old = self.stats
        self.stats = IOStats()
        return old

    def __repr__(self) -> str:
        return (
            f"Disk(blocks={self.geometry.num_blocks}, "
            f"block_size={self.geometry.block_size}, "
            f"written={len(self._written)})"
        )
