"""The simulated block device.

``Disk`` stores block contents in memory and charges simulated service time
for every request using its :class:`~repro.disk.geometry.DiskGeometry`.
Multi-block requests to contiguous addresses pay one seek plus one streamed
transfer — exactly the economics that make log-structured writes fast.

Contents live in contiguous ``bytearray`` extents (allocated lazily in
fixed-size chunks so multi-gigabyte devices cost nothing until written)
rather than a per-block dict. Read APIs still return immutable ``bytes``
snapshots — callers retain payloads (the block cache, torture recordings),
so handing out live views would alias later writes. :meth:`view` is the
explicit zero-copy path for scan-and-discard consumers (checksums, image
dumps): a read-only ``memoryview`` of the underlying extent, valid only
until the next write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.errors import DiskRangeError, MediaError
from repro.disk.faults import CrashInjector, DiskCrashed, MediaFaultModel
from repro.disk.geometry import DiskGeometry
from repro.disk.timing import IOStats, RetryPolicy, SimClock
from repro.obs.events import MEDIA_ERROR, MEDIA_RETRY

# Blocks per lazily allocated image extent. 4096 blocks is 16 MiB at the
# default 4 KiB block size — big enough that any segment-sized request
# stays inside one extent, small enough that sparse images stay cheap.
_CHUNK_BLOCKS = 4096


@dataclass(frozen=True)
class DiskState:
    """A picklable snapshot of device contents (see ``Disk.snapshot_state``).

    ``chunks`` mirrors the lazy extent table (``None`` = never allocated);
    ``written`` is the exact set of block addresses ever written, which
    must be preserved independently of the extents so that
    ``written_addresses()`` round-trips through snapshot/restore.
    """

    chunks: tuple[bytes | None, ...]
    written: frozenset[int]


class Disk:
    """An in-memory block device with a disk-arm service-time model.

    Blocks never written read back as all zeroes. The head position is
    tracked so that a request beginning where the previous one ended is
    recognized as sequential and pays no positioning cost.
    """

    def __init__(
        self,
        geometry: DiskGeometry | None = None,
        *,
        clock: SimClock | None = None,
    ) -> None:
        self.geometry = geometry if geometry is not None else DiskGeometry.wren4()
        self.clock = clock if clock is not None else SimClock()
        self.stats = IOStats()
        self.faults = CrashInjector()
        self.media = MediaFaultModel()
        self.retry = RetryPolicy()
        # Optional observability hook (repro.obs.Observation). None means
        # disabled: the only cost on the request path is this one check.
        self.obs = None
        # Lazily allocated contiguous extents; _written tracks the exact
        # block addresses ever stored (writes, torn remnants, bit rot).
        nchunks = -(-self.geometry.num_blocks // _CHUNK_BLOCKS)
        self._chunks: list[bytearray | None] = [None] * nchunks
        self._written: set[int] = set()
        self._zero_block = bytes(self.geometry.block_size)
        # ``_head`` is the address at which the *next* request would be
        # sequential — one past the last block accessed (see _account).
        # A fresh device parks the arm at the start of the platter
        # (_head = 0), so the very first access to block 0 streams with
        # no positioning cost, while the first access to any other block
        # pays a full seek plus rotational latency.
        self._head = 0

    # ------------------------------------------------------------------
    # validation helpers

    def _check_range(self, addr: int, count: int = 1) -> None:
        if count <= 0:
            raise DiskRangeError(f"request for {count} blocks")
        if addr < 0 or addr + count > self.geometry.num_blocks:
            raise DiskRangeError(
                f"blocks [{addr}, {addr + count}) outside device of "
                f"{self.geometry.num_blocks} blocks"
            )

    def _check_payload(self, data: bytes) -> bytes:
        if len(data) > self.geometry.block_size:
            raise DiskRangeError(
                f"payload of {len(data)} bytes exceeds block size "
                f"{self.geometry.block_size}"
            )
        if len(data) < self.geometry.block_size:
            data = data + bytes(self.geometry.block_size - len(data))
        return data

    # ------------------------------------------------------------------
    # image storage

    def _chunk(self, index: int) -> bytearray:
        """The extent holding chunk ``index``, allocated on first touch."""
        c = self._chunks[index]
        if c is None:
            lo = index * _CHUNK_BLOCKS
            span = min(_CHUNK_BLOCKS, self.geometry.num_blocks - lo)
            c = self._chunks[index] = bytearray(span * self.geometry.block_size)
        return c

    def _load(self, addr: int) -> bytes:
        """One block's contents as an immutable snapshot."""
        if addr not in self._written:
            return self._zero_block
        bs = self.geometry.block_size
        index, slot = divmod(addr, _CHUNK_BLOCKS)
        off = slot * bs
        return bytes(self._chunks[index][off : off + bs])

    def _store(self, addr: int, payload: bytes) -> None:
        """Store one exactly-block-sized payload into the image."""
        bs = self.geometry.block_size
        index, slot = divmod(addr, _CHUNK_BLOCKS)
        off = slot * bs
        self._chunk(index)[off : off + bs] = payload
        self._written.add(addr)

    def _account(
        self, to_block: int, nblocks: int, *, write: bool, force_latency: bool = False
    ) -> None:
        nbytes = nblocks * self.geometry.block_size
        elapsed = self.geometry.access_time(self._head, to_block, nbytes)
        seeked = to_block != self._head
        if force_latency and not seeked:
            # An individually issued request misses the rotation even when
            # the target is adjacent (no controller streaming) — how the
            # paper's SunOS performs "individual disk operations for each
            # block".
            elapsed += self.geometry.rotation_time / 2.0
            seeked = True
        self.clock.advance(elapsed)
        self.stats.busy_time += elapsed
        self.stats.transfer_time += self.geometry.transfer_time(nbytes)
        if seeked:
            self.stats.seeks += 1
            self.stats.seek_time += elapsed - self.geometry.transfer_time(nbytes)
        if write:
            self.stats.writes += 1
            self.stats.blocks_written += nblocks
            self.stats.bytes_written += nbytes
        else:
            self.stats.reads += 1
            self.stats.blocks_read += nblocks
            self.stats.bytes_read += nbytes
        self._head = to_block + nblocks
        if self.obs is not None:
            self.obs.on_io(
                self.clock.now, to_block, nblocks, elapsed, write=write, seeked=seeked
            )

    def _media_check(self, addr: int, count: int, op: str) -> None:
        """Run the sick-disk gauntlet for one request, with bounded retry.

        Dormant (no registered faults) this is a single attribute check.
        Otherwise each attempt probes every block of the request; a media
        error waits out the policy's backoff (clock time, *not* busy
        time — the arm is recovering, not transferring) and retries.
        Exhausting the attempts surfaces the last :class:`MediaError`.
        """
        if not self.media.active:
            return
        attempt = 1
        while True:
            try:
                for i in range(count):
                    self.media.check_access(addr + i, op)
                return
            except MediaError as exc:
                if attempt >= self.retry.attempts:
                    self.stats.media_errors += 1
                    if self.obs is not None:
                        self.obs.emit(
                            MEDIA_ERROR, addr=exc.addr, op=op, attempts=attempt
                        )
                    raise
                attempt += 1
                backoff = self.retry.backoff_before(attempt)
                self.clock.advance(backoff)
                self.stats.retries += 1
                self.stats.retry_time += backoff
                if self.obs is not None:
                    self.obs.emit(
                        MEDIA_RETRY,
                        addr=exc.addr,
                        op=op,
                        attempt=attempt,
                        backoff=backoff,
                    )

    # ------------------------------------------------------------------
    # I/O

    def read_block(self, addr: int, *, force_latency: bool = False) -> bytes:
        """Read one block; unwritten blocks are zero-filled.

        ``force_latency`` models an individually issued request that
        cannot stream from the previous one (pays rotational latency even
        when the address is adjacent).
        """
        self._check_range(addr)
        self.faults.check_read(addr)
        self._media_check(addr, 1, "read")
        self._account(addr, 1, write=False, force_latency=force_latency)
        return self._load(addr)

    def read_blocks(self, addr: int, count: int) -> list[bytes]:
        """Read ``count`` contiguous blocks as one streamed request."""
        self._check_range(addr, count)
        self.faults.check_read(addr)
        self._media_check(addr, count, "read")
        self._account(addr, count, write=False)
        return [self._load(addr + i) for i in range(count)]

    def write_block(self, addr: int, data: bytes, *, force_latency: bool = False) -> None:
        """Write one block (short payloads are zero-padded).

        See :meth:`read_block` for ``force_latency``.
        """
        self._check_range(addr)
        data = self._check_payload(data)
        self._media_check(addr, 1, "write")
        self._persist(addr, data)
        self._account(addr, 1, write=True, force_latency=force_latency)

    def _persist(self, addr: int, payload: bytes) -> None:
        """Store one block, honoring the crash injector's verdict.

        If the injector trips on this block, a torn-mode crash still
        persists a partial payload before the exception propagates.
        """
        try:
            self.faults.check_write(addr)
        except DiskCrashed:
            torn = self.faults.torn_payload(payload, self._load(addr))
            if torn is not None:
                self._store(addr, torn)
            raise
        self._store(addr, payload)

    def write_blocks(self, addr: int, blocks: Sequence[bytes]) -> None:
        """Write contiguous blocks as one streamed request.

        Under crash injection the request may persist a durable *prefix*
        and then raise — mirroring a power cut in the middle of a large
        sequential transfer. In the injector's ``reorder`` mode the
        queued blocks persist in a seeded order instead, so the durable
        part is an arbitrary subset; in ``torn`` mode the dying block
        keeps a partial payload.
        """
        if not blocks:
            raise DiskRangeError("empty multi-block write")
        self._check_range(addr, len(blocks))
        payloads = [self._check_payload(b) for b in blocks]
        self._media_check(addr, len(payloads), "write")
        self._account(addr, len(payloads), write=True)
        for i in self.faults.request_order(len(payloads)):
            self._persist(addr + i, payloads[i])

    # ------------------------------------------------------------------
    # inspection / lifecycle

    def peek(self, addr: int) -> bytes:
        """Read block contents without advancing time (for tests/tools)."""
        self._check_range(addr)
        return self._load(addr)

    def view(self, addr: int, count: int = 1) -> memoryview:
        """A read-only window onto stored bytes — no time, no copy.

        Zero-copy whenever the range sits inside one image extent (any
        segment-sized range does); a range spanning extents, or one whose
        extent was never allocated, falls back to a snapshot. The view
        aliases live storage: it is valid only until the next write, and
        callers that retain payloads must use :meth:`peek` instead.
        """
        self._check_range(addr, count)
        bs = self.geometry.block_size
        index, slot = divmod(addr, _CHUNK_BLOCKS)
        if (addr + count - 1) // _CHUNK_BLOCKS == index:
            c = self._chunks[index]
            if c is None:
                return memoryview(bytes(count * bs))
            off = slot * bs
            return memoryview(c).toreadonly()[off : off + count * bs]
        return memoryview(b"".join(self._load(addr + i) for i in range(count)))

    def corrupt_block(self, addr: int, payload: bytes) -> None:
        """Silently replace stored bytes — no time, no stats, no faults.

        This is the bit-rot injection channel: the device's own write path
        never ran, so nothing above it can know the contents changed until
        a checksum fails.
        """
        self._check_range(addr)
        self._store(addr, self._check_payload(payload))

    def written_addresses(self) -> Iterable[int]:
        """Addresses of every block that has ever been written."""
        return self._written

    def snapshot_state(self) -> DiskState:
        """Capture contents for later :meth:`restore_state` (picklable)."""
        return DiskState(
            chunks=tuple(bytes(c) if c is not None else None for c in self._chunks),
            written=frozenset(self._written),
        )

    def restore_state(self, state: DiskState) -> None:
        """Replace contents with a prior :meth:`snapshot_state` capture."""
        if len(state.chunks) != len(self._chunks):
            raise DiskRangeError(
                f"snapshot of {len(state.chunks)} extents does not fit a "
                f"device of {len(self._chunks)} extents"
            )
        self._chunks = [
            bytearray(c) if c is not None else None for c in state.chunks
        ]
        self._written = set(state.written)

    def crash(
        self, *, after_writes: int | None = None, mode: str = "clean", seed: int = 0
    ) -> None:
        """Cut power now, or arm a cut after ``after_writes`` more writes.

        ``mode``/``seed`` select the dying write's behavior (see
        :meth:`CrashInjector.arm_after_writes`): a clean cut, a torn
        block, or seeded reordering of queued requests.
        """
        if after_writes is None:
            self.faults.force_crash()
        else:
            self.faults.arm_after_writes(after_writes, mode=mode, seed=seed)

    def power_on(self) -> None:
        """Bring a crashed device back; contents persist, head resets."""
        self.faults.power_on()
        self._head = 0

    def reset_stats(self) -> IOStats:
        """Replace the counters with fresh ones, returning the old ones."""
        old = self.stats
        self.stats = IOStats()
        return old

    def __repr__(self) -> str:
        return (
            f"Disk(blocks={self.geometry.num_blocks}, "
            f"block_size={self.geometry.block_size}, "
            f"written={len(self._written)})"
        )
