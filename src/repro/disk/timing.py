"""Simulated clock and I/O statistics.

Every experiment in this reproduction reports *simulated* time: the clock
only advances when the disk performs work or when a harness explicitly
charges CPU time. This keeps all results deterministic and independent of
the speed of the Python interpreter running them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


class SimClock:
    """A monotonically non-decreasing simulated clock, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("start time must be non-negative")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        return self._now

    def advance_to(self, when: float) -> float:
        """Move time forward to ``when`` if it is in the future.

        A ``when`` in the past is a no-op; NaN is rejected loudly (every
        comparison against NaN is false, so without the explicit check a
        NaN target would silently leave the clock untouched).
        """
        if when != when:
            raise ValueError("cannot advance the clock to NaN")
        if when > self._now:
            self._now = when
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"


@dataclass
class IOStats:
    """Counters describing the traffic a disk has served.

    ``busy_time`` is the total seconds the disk spent servicing requests;
    dividing by elapsed simulated time gives the utilization figures the
    paper quotes (e.g. "SunOS kept the disk busy 85% of the time").
    """

    reads: int = 0
    writes: int = 0
    blocks_read: int = 0
    blocks_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    seeks: int = 0
    busy_time: float = 0.0
    seek_time: float = 0.0
    transfer_time: float = 0.0
    # Sick-disk counters: ``retry_time`` is simulated seconds spent in
    # retry backoff. It advances the clock but is *not* part of
    # ``busy_time`` — busy-time stays the sum of successfully served
    # requests, so per-cause attribution still adds up.
    retries: int = 0
    retry_time: float = 0.0
    media_errors: int = 0
    # Flash counters: ``erases`` is whole erase-block erasures and
    # ``erase_time`` the simulated seconds they took. Like retry backoff,
    # erase time advances the clock but is *not* part of ``busy_time`` —
    # busy time stays the sum of served transfers, so per-cause
    # attribution still adds up exactly.
    erases: int = 0
    erase_time: float = 0.0

    def snapshot(self) -> "IOStats":
        """Return an independent copy of the current counters.

        Iterates ``dataclasses.fields`` so a counter added to this class
        can never be silently dropped from copies (and hence from bench
        deltas).
        """
        return IOStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Return the difference between these counters and ``earlier``.

        Field-driven for the same reason as :meth:`snapshot`: a new
        counter participates in deltas automatically.
        """
        return IOStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    @property
    def total_ops(self) -> int:
        """Total read plus write requests."""
        return self.reads + self.writes

    @property
    def total_bytes(self) -> int:
        """Total bytes moved in either direction."""
        return self.bytes_read + self.bytes_written

    def raw_utilization(self, elapsed: float) -> float:
        """Unclamped ``busy_time / elapsed``.

        A ratio above 1.0 is impossible on a correctly metered device, so
        this is the number to assert on: the clamped :meth:`utilization`
        would silently mask busy-time double-charged by accounting bugs.
        """
        if elapsed <= 0:
            return 0.0
        return self.busy_time / elapsed

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the disk was busy (clamped for display)."""
        return min(1.0, self.raw_utilization(elapsed))


@dataclass
class RetryPolicy:
    """Bounded retry with exponential simulated-time backoff.

    An access that raises a media error is retried up to ``attempts - 1``
    times. Attempts are numbered from 1, so re-attempts are numbered
    2, 3, ...; before re-attempt *n* the device waits
    ``backoff * multiplier**(n - 2)`` simulated seconds — the first
    retry waits exactly ``backoff`` — charged to the clock and tallied
    in :attr:`IOStats.retry_time`. Transient errors cost disk time, not
    correctness; latent sector errors exhaust the budget and surface as
    :class:`~repro.core.errors.MediaError`.
    """

    attempts: int = 3
    backoff: float = 0.005
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")
        if self.backoff < 0 or self.multiplier <= 0:
            raise ValueError("backoff must be >= 0 and multiplier > 0")

    def backoff_before(self, attempt: int) -> float:
        """Seconds to wait before re-attempt number ``attempt`` (2, 3, ...).

        ``backoff * multiplier**(attempt - 2)``: re-attempt 2 (the first
        retry) waits ``backoff``, re-attempt 3 waits
        ``backoff * multiplier``, and so on.
        """
        return self.backoff * self.multiplier ** (attempt - 2)


@dataclass
class BandwidthReport:
    """Bandwidth achieved by a phase of a benchmark."""

    label: str
    nbytes: int
    elapsed: float
    extra: dict = field(default_factory=dict)

    @property
    def bytes_per_second(self) -> float:
        """Achieved bandwidth; zero if no time elapsed."""
        if self.elapsed <= 0:
            return 0.0
        return self.nbytes / self.elapsed

    @property
    def kilobytes_per_second(self) -> float:
        """Bandwidth in the paper's Figure 9 units."""
        return self.bytes_per_second / 1024.0
