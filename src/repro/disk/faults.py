"""Deterministic crash injection for recovery experiments.

The paper's recovery guarantees are defined entirely by what is durable on
disk when the machine dies. ``CrashInjector`` lets a test cut the write
stream after an exact number of block writes — mid-checkpoint, mid-segment,
wherever — after which the device refuses all traffic until it is
"powered on" again. Because the file system must then re-mount purely from
on-disk bytes, this exercises the real recovery path.
"""

from __future__ import annotations

from repro.core.errors import LFSError


class DiskCrashed(LFSError):
    """Raised when a request reaches a disk whose power has been cut."""


class CrashInjector:
    """Arms a disk to fail after a fixed number of future block writes.

    A count of ``n`` means the next ``n`` block writes succeed and are
    durable; the write of block ``n + 1`` (and everything after it) raises
    :class:`DiskCrashed` without persisting anything. Reads also fail once
    the crash has fired, matching a powered-off device.
    """

    def __init__(self) -> None:
        self._writes_remaining: int | None = None
        self._crashed = False

    @property
    def crashed(self) -> bool:
        """True once the injected crash has fired (or was forced)."""
        return self._crashed

    @property
    def armed(self) -> bool:
        """True while a countdown is pending."""
        return self._writes_remaining is not None and not self._crashed

    def arm_after_writes(self, count: int) -> None:
        """Allow ``count`` more block writes, then crash."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._writes_remaining = count
        self._crashed = False

    def force_crash(self) -> None:
        """Cut power immediately."""
        self._crashed = True
        self._writes_remaining = None

    def power_on(self) -> None:
        """Restore the device after a crash; disarms any countdown."""
        self._crashed = False
        self._writes_remaining = None

    def check_read(self) -> None:
        """Raise if a read arrives while the device is down."""
        if self._crashed:
            raise DiskCrashed("read issued to a crashed disk")

    def check_write(self) -> None:
        """Account one block write; raise if it must not persist."""
        if self._crashed:
            raise DiskCrashed("write issued to a crashed disk")
        if self._writes_remaining is None:
            return
        if self._writes_remaining == 0:
            self._crashed = True
            self._writes_remaining = None
            raise DiskCrashed("injected crash: write limit reached")
        self._writes_remaining -= 1
