"""Deterministic fault injection for recovery experiments.

The paper's recovery guarantees are defined entirely by what is durable on
disk when the machine dies. ``CrashInjector`` lets a test cut the write
stream after an exact number of block writes — mid-checkpoint, mid-segment,
wherever — after which the device refuses all traffic until it is
"powered on" again. Because the file system must then re-mount purely from
on-disk bytes, this exercises the real recovery path.

Beyond the clean power cut, two failure modes real disks exhibit are
modelled (both seeded, so every fault is reproducible):

* **torn writes** — the block that trips the crash persists only a prefix
  of its new contents, the rest keeping whatever was on disk before;
* **reordered writes** — the blocks of a queued multi-block request may
  persist in any order, so the crash leaves an arbitrary *subset* of the
  request durable rather than a prefix. Request boundaries act as write
  barriers (the simulated device completes each request before the next
  is issued), matching how the checkpoint scheme of Section 4.1 expects
  ordering to be enforced.
"""

from __future__ import annotations

import random

from repro.core.errors import LFSError

#: Supported fault modes for :meth:`CrashInjector.arm_after_writes`.
FAULT_MODES = ("clean", "torn", "reorder")


class DiskCrashed(LFSError):
    """Raised when a request reaches a disk whose power has been cut.

    Carries the failing block address and operation so a crash deep in a
    torture sweep can be triaged from the message alone.

    Attributes:
        addr: block address of the request that failed (None if unknown,
            e.g. a forced crash with no request in flight).
        op: ``"read"`` or ``"write"`` (None if unknown).
    """

    def __init__(self, message: str, *, addr: int | None = None, op: str | None = None):
        if addr is not None and op is not None:
            message = f"{message} [{op} of block {addr}]"
        super().__init__(message)
        self.addr = addr
        self.op = op


class CrashInjector:
    """Arms a disk to fail after a fixed number of future block writes.

    A count of ``n`` means the next ``n`` block writes succeed and are
    durable; the write of block ``n + 1`` (and everything after it) raises
    :class:`DiskCrashed` without persisting anything — except under the
    ``torn`` mode, where the tripping block persists a partial payload.
    Reads also fail once the crash has fired, matching a powered-off
    device.
    """

    def __init__(self) -> None:
        self._writes_remaining: int | None = None
        self._crashed = False
        self._mode = "clean"
        self._rng: random.Random | None = None

    @property
    def crashed(self) -> bool:
        """True once the injected crash has fired (or was forced)."""
        return self._crashed

    @property
    def armed(self) -> bool:
        """True while a countdown is pending."""
        return self._writes_remaining is not None and not self._crashed

    @property
    def mode(self) -> str:
        """The active fault mode (``clean``, ``torn``, or ``reorder``)."""
        return self._mode

    def arm_after_writes(self, count: int, *, mode: str = "clean", seed: int = 0) -> None:
        """Allow ``count`` more block writes, then crash.

        ``mode`` selects what the dying write does: ``"clean"`` persists
        nothing, ``"torn"`` persists a seeded prefix of the payload, and
        ``"reorder"`` persists queued multi-block requests in a seeded
        order so the crash strands an arbitrary subset of the request.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if mode not in FAULT_MODES:
            raise ValueError(f"unknown fault mode {mode!r} (want one of {FAULT_MODES})")
        self._writes_remaining = count
        self._crashed = False
        self._mode = mode
        self._rng = random.Random(seed) if mode != "clean" else None

    def force_crash(self) -> None:
        """Cut power immediately."""
        self._crashed = True
        self._writes_remaining = None

    def power_on(self) -> None:
        """Restore the device after a crash; disarms any countdown."""
        self._crashed = False
        self._writes_remaining = None
        self._mode = "clean"
        self._rng = None

    def request_order(self, nblocks: int) -> list[int]:
        """Order in which a queued multi-block request's blocks persist.

        Identity except under ``reorder`` with a crash pending — once a
        request persists completely, the order it happened in is
        unobservable, so a healthy drive's reordering needs no modelling.
        """
        order = list(range(nblocks))
        if self._mode == "reorder" and self.armed and self._rng is not None and nblocks > 1:
            self._rng.shuffle(order)
        return order

    def torn_payload(self, new: bytes, old: bytes) -> bytes | None:
        """Partial persistence for the block that tripped the crash.

        Returns a seeded splice of ``new``'s prefix over ``old``'s tail
        under the ``torn`` mode, or None (persist nothing) otherwise.
        """
        if self._mode != "torn" or self._rng is None or len(new) < 2:
            return None
        cut = self._rng.randrange(1, len(new))
        return new[:cut] + old[cut:]

    def check_read(self, addr: int | None = None) -> None:
        """Raise if a read arrives while the device is down."""
        if self._crashed:
            raise DiskCrashed("read issued to a crashed disk", addr=addr, op="read")

    def check_write(self, addr: int | None = None) -> None:
        """Account one block write; raise if it must not persist."""
        if self._crashed:
            raise DiskCrashed("write issued to a crashed disk", addr=addr, op="write")
        if self._writes_remaining is None:
            return
        if self._writes_remaining == 0:
            self._crashed = True
            self._writes_remaining = None
            raise DiskCrashed("injected crash: write limit reached", addr=addr, op="write")
        self._writes_remaining -= 1
