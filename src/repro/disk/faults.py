"""Deterministic fault injection for recovery experiments.

The paper's recovery guarantees are defined entirely by what is durable on
disk when the machine dies. ``CrashInjector`` lets a test cut the write
stream after an exact number of block writes — mid-checkpoint, mid-segment,
wherever — after which the device refuses all traffic until it is
"powered on" again. Because the file system must then re-mount purely from
on-disk bytes, this exercises the real recovery path.

Beyond the clean power cut, two failure modes real disks exhibit are
modelled (both seeded, so every fault is reproducible):

* **torn writes** — the block that trips the crash persists only a prefix
  of its new contents, the rest keeping whatever was on disk before;
* **reordered writes** — the blocks of a queued multi-block request may
  persist in any order, so the crash leaves an arbitrary *subset* of the
  request durable rather than a prefix. Request boundaries act as write
  barriers (the simulated device completes each request before the next
  is issued), matching how the checkpoint scheme of Section 4.1 expects
  ordering to be enforced.
"""

from __future__ import annotations

import random

from repro.core.errors import LFSError, MediaError

#: Supported fault modes for :meth:`CrashInjector.arm_after_writes`.
FAULT_MODES = ("clean", "torn", "reorder")


class DiskCrashed(LFSError):
    """Raised when a request reaches a disk whose power has been cut.

    Carries the failing block address and operation so a crash deep in a
    torture sweep can be triaged from the message alone.

    Attributes:
        addr: block address of the request that failed (None if unknown,
            e.g. a forced crash with no request in flight).
        op: ``"read"`` or ``"write"`` (None if unknown).
    """

    def __init__(self, message: str, *, addr: int | None = None, op: str | None = None):
        if addr is not None and op is not None:
            message = f"{message} [{op} of block {addr}]"
        super().__init__(message)
        self.addr = addr
        self.op = op


class CrashInjector:
    """Arms a disk to fail after a fixed number of future block writes.

    A count of ``n`` means the next ``n`` block writes succeed and are
    durable; the write of block ``n + 1`` (and everything after it) raises
    :class:`DiskCrashed` without persisting anything — except under the
    ``torn`` mode, where the tripping block persists a partial payload.
    Reads also fail once the crash has fired, matching a powered-off
    device.
    """

    def __init__(self) -> None:
        self._writes_remaining: int | None = None
        self._crashed = False
        self._mode = "clean"
        self._rng: random.Random | None = None

    @property
    def crashed(self) -> bool:
        """True once the injected crash has fired (or was forced)."""
        return self._crashed

    @property
    def armed(self) -> bool:
        """True while a countdown is pending."""
        return self._writes_remaining is not None and not self._crashed

    @property
    def mode(self) -> str:
        """The active fault mode (``clean``, ``torn``, or ``reorder``)."""
        return self._mode

    def arm_after_writes(self, count: int, *, mode: str = "clean", seed: int = 0) -> None:
        """Allow ``count`` more block writes, then crash.

        ``mode`` selects what the dying write does: ``"clean"`` persists
        nothing, ``"torn"`` persists a seeded prefix of the payload, and
        ``"reorder"`` persists queued multi-block requests in a seeded
        order so the crash strands an arbitrary subset of the request.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if mode not in FAULT_MODES:
            raise ValueError(f"unknown fault mode {mode!r} (want one of {FAULT_MODES})")
        self._writes_remaining = count
        self._crashed = False
        self._mode = mode
        self._rng = random.Random(seed) if mode != "clean" else None

    def force_crash(self) -> None:
        """Cut power immediately."""
        self._crashed = True
        self._writes_remaining = None

    def power_on(self) -> None:
        """Restore the device after a crash; disarms any countdown."""
        self._crashed = False
        self._writes_remaining = None
        self._mode = "clean"
        self._rng = None

    def request_order(self, nblocks: int) -> list[int]:
        """Order in which a queued multi-block request's blocks persist.

        Identity except under ``reorder`` with a crash pending — once a
        request persists completely, the order it happened in is
        unobservable, so a healthy drive's reordering needs no modelling.
        """
        order = list(range(nblocks))
        if self._mode == "reorder" and self.armed and self._rng is not None and nblocks > 1:
            self._rng.shuffle(order)
        return order

    def torn_payload(self, new: bytes, old: bytes) -> bytes | None:
        """Partial persistence for the block that tripped the crash.

        Returns a seeded splice of ``new``'s prefix over ``old``'s tail
        under the ``torn`` mode, or None (persist nothing) otherwise.
        """
        if self._mode != "torn" or self._rng is None or len(new) < 2:
            return None
        cut = self._rng.randrange(1, len(new))
        return new[:cut] + old[cut:]

    def check_read(self, addr: int | None = None) -> None:
        """Raise if a read arrives while the device is down."""
        if self._crashed:
            raise DiskCrashed("read issued to a crashed disk", addr=addr, op="read")

    def check_write(self, addr: int | None = None) -> None:
        """Account one block write; raise if it must not persist."""
        if self._crashed:
            raise DiskCrashed("write issued to a crashed disk", addr=addr, op="write")
        if self._writes_remaining is None:
            return
        if self._writes_remaining == 0:
            self._crashed = True
            self._writes_remaining = None
            raise DiskCrashed("injected crash: write limit reached", addr=addr, op="write")
        self._writes_remaining -= 1


# ----------------------------------------------------------------------
# sick-disk media faults


class MediaFaultModel:
    """Seeded, deterministic model of a sick (but powered) disk.

    Three failure classes real drives exhibit, orthogonal to power cuts:

    * **latent sector errors** — a block is permanently unreadable (and
      unwritable: the sector is gone); every access raises
      :class:`~repro.core.errors.MediaError`, no matter how often retried;
    * **transient I/O errors** — an access to a block fails the first *k*
      attempts and then succeeds, modelling recoverable positioning or ECC
      hiccups that a bounded retry policy should absorb;
    * **silent bit-rot** — handled at injection time
      (:func:`inject_media_faults` flips seeded bytes *in the stored
      image*); the device happily returns the rotted bytes, so only
      checksum verification above the device can catch it.

    The model is dormant by default: ``active`` stays False until a fault
    is registered, and the device skips all media checks while it is.
    """

    def __init__(self) -> None:
        self.latent: set[int] = set()
        #: addr -> number of future accesses that still fail
        self.transient: dict[int, int] = {}
        #: addrs whose stored payload was silently rotted (bookkeeping for
        #: tests and scrub reports; the device never consults this)
        self.rotted: set[int] = set()

    @property
    def active(self) -> bool:
        """True once any latent or transient fault is registered."""
        return bool(self.latent) or bool(self.transient)

    def add_latent(self, addr: int) -> None:
        """Mark one block as a latent (permanent) sector error."""
        self.latent.add(addr)

    def add_transient(self, addr: int, failures: int) -> None:
        """Make the next ``failures`` accesses of ``addr`` fail."""
        if failures < 1:
            raise ValueError("failures must be positive")
        self.transient[addr] = failures

    def clear(self) -> None:
        """Forget all registered faults (rot stays in the image)."""
        self.latent.clear()
        self.transient.clear()
        self.rotted.clear()

    def check_access(self, addr: int, op: str) -> None:
        """Raise :class:`MediaError` if this access of ``addr`` fails.

        Transient counters tick down on every access, so a retry loop
        observes fail, fail, ..., success; latent sectors never recover.
        """
        if addr in self.latent:
            raise MediaError("latent sector error", addr=addr, op=op)
        remaining = self.transient.get(addr)
        if remaining is not None:
            if remaining <= 1:
                del self.transient[addr]
            else:
                self.transient[addr] = remaining - 1
            raise MediaError("transient I/O error", addr=addr, op=op)


def inject_media_faults(
    disk,
    *,
    seed: int,
    rot: int = 0,
    latent: int = 0,
    transient: int = 0,
    transient_failures: int = 2,
    candidates: list[int] | None = None,
) -> dict[str, list[int]]:
    """Seed a populated disk with media faults, fully reproducibly.

    Draws disjoint victim sets from ``candidates`` (default: every block
    address the image has ever written, sorted) with ``random.Random(seed)``:
    ``rot`` blocks get 1–3 seeded byte flips persisted silently into the
    stored image, ``latent`` blocks become permanently unreadable, and
    ``transient`` blocks fail their next ``transient_failures`` accesses.

    Returns ``{"rot": [...], "latent": [...], "transient": [...]}`` so a
    test can check detection has no false negatives or positives.
    """
    from repro.core.errors import DiskRangeError

    rng = random.Random(seed)
    if candidates is None:
        candidates = sorted(disk.written_addresses())
    need = rot + latent + transient
    if need > len(candidates):
        raise ValueError(
            f"asked for {need} fault sites but only {len(candidates)} candidate blocks"
        )
    victims = rng.sample(sorted(candidates), need)
    plan = {
        "rot": sorted(victims[:rot]),
        "latent": sorted(victims[rot : rot + latent]),
        "transient": sorted(victims[rot + latent :]),
    }
    for addr in plan["rot"]:
        original = disk.peek(addr)
        if not original:
            raise DiskRangeError(f"cannot rot empty block {addr}")
        payload = bytearray(original)
        for _ in range(rng.randint(1, 3)):
            off = rng.randrange(len(payload))
            payload[off] ^= 1 << rng.randrange(8)
        while bytes(payload) == original:  # flips may cancel; rot must rot
            payload[rng.randrange(len(payload))] ^= 1 << rng.randrange(8)
        disk.corrupt_block(addr, bytes(payload))
        disk.media.rotted.add(addr)
    for addr in plan["latent"]:
        disk.media.add_latent(addr)
    for addr in plan["transient"]:
        disk.media.add_transient(addr, transient_failures)
    return plan
