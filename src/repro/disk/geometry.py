"""Disk geometry and the service-time model.

All performance results in this reproduction are expressed in *simulated*
disk time computed from a geometry: a request pays a seek (unless it starts
where the previous request ended), half a rotation of latency, and a
transfer time proportional to its size. This is the same first-order model
the paper uses when it reasons about write cost ("seeks and rotational
latency are negligible both for writing and for cleaning" for large
segments).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DiskGeometry:
    """Physical parameters of a simulated disk.

    Attributes:
        block_size: bytes per block (the unit of all I/O).
        num_blocks: total blocks on the device.
        avg_seek_time: seconds for an average seek between two
            non-adjacent positions.
        rotation_time: seconds per platter revolution; a non-sequential
            access pays half of this on average as rotational latency.
        transfer_bandwidth: sustained sequential bytes/second.
        track_blocks: blocks per track, used to scale short seeks. A seek
            whose distance is under one track costs ``min_seek_time``.
        min_seek_time: seconds for a minimal (track-to-track) seek.
    """

    block_size: int = 4096
    num_blocks: int = 81920
    avg_seek_time: float = 0.0175
    rotation_time: float = 0.0166
    transfer_bandwidth: float = 1.3e6
    track_blocks: int = 32
    min_seek_time: float = 0.004

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if self.transfer_bandwidth <= 0:
            raise ValueError("transfer_bandwidth must be positive")
        if self.avg_seek_time < 0 or self.min_seek_time < 0:
            raise ValueError("seek times must be non-negative")
        if self.min_seek_time > self.avg_seek_time:
            raise ValueError("min_seek_time cannot exceed avg_seek_time")

    @property
    def capacity_bytes(self) -> int:
        """Total device capacity in bytes."""
        return self.block_size * self.num_blocks

    def transfer_time(self, nbytes: int) -> float:
        """Seconds needed to move ``nbytes`` at full sequential bandwidth."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.transfer_bandwidth

    def seek_time(self, from_block: int, to_block: int) -> float:
        """Seconds to reposition the head from one block to another.

        Sequential continuation (``to_block == from_block``) is free; a
        short hop within a track costs the minimum seek; anything longer
        costs between the minimum and the average seek, scaled by the
        square root of the distance fraction (a standard first-order
        approximation of arm motion).
        """
        distance = abs(to_block - from_block)
        if distance == 0:
            return 0.0
        if distance < self.track_blocks:
            return self.min_seek_time
        fraction = min(1.0, distance / self.num_blocks)
        # sqrt profile: short seeks dominated by settle time, long seeks by
        # arm travel; average seek corresponds to ~1/3 of full stroke.
        scaled = fraction ** 0.5
        span = self.avg_seek_time - self.min_seek_time
        return self.min_seek_time + span * min(1.0, scaled / (1.0 / 3.0) ** 0.5)

    def access_time(self, from_block: int, to_block: int, nbytes: int) -> float:
        """Total service time for one request.

        A request that starts exactly where the previous one ended pays only
        transfer time (the head is already in position, as in a log write);
        any repositioning pays seek plus average (half-revolution)
        rotational latency.
        """
        positioning = 0.0
        if to_block != from_block:
            positioning = self.seek_time(from_block, to_block) + self.rotation_time / 2.0
        return positioning + self.transfer_time(nbytes)

    @classmethod
    def wren4(cls, *, block_size: int = 4096, num_blocks: int = 81920) -> "DiskGeometry":
        """The CDC Wren IV disk used in the paper's Section 5.1.

        1.3 MB/s maximum transfer bandwidth, 17.5 ms average seek time.
        The default ``num_blocks`` gives the paper's ~300 MB usable file
        system with 4 KB blocks.
        """
        return cls(
            block_size=block_size,
            num_blocks=num_blocks,
            avg_seek_time=0.0175,
            rotation_time=0.0166,
            transfer_bandwidth=1.3e6,
        )

    @classmethod
    def modern_hdd(cls, *, block_size: int = 4096, num_blocks: int = 2_621_440) -> "DiskGeometry":
        """A contemporary 7200 RPM drive for what-if experiments.

        ~150 MB/s sequential, ~8.5 ms average seek. The paper's argument —
        bandwidth improves, access time does not — makes LFS's advantage
        grow on this geometry.
        """
        return cls(
            block_size=block_size,
            num_blocks=num_blocks,
            avg_seek_time=0.0085,
            rotation_time=0.00833,
            transfer_bandwidth=150e6,
            min_seek_time=0.0008,
        )


@dataclass(frozen=True)
class FlashGeometry(DiskGeometry):
    """An SSD-class device: no positional seek, erases instead.

    Flash inverts the Wren IV's economics: random and sequential access
    cost the same (there is no arm), reads are an order of magnitude
    cheaper than programs, and reprogramming a page first requires
    erasing its whole *erase block* — the one operation slower than
    everything else. :class:`~repro.disk.device.Disk` detects this
    geometry and layers erase-block state on top of the plain image:
    erase-before-reuse enforcement, per-erase-block wear counts, and a
    TRIM command (``Disk.trim``) so the file system can tell the device
    which blocks are dead.

    Attributes:
        read_latency: fixed per-request command latency for reads.
        program_latency: fixed per-request latency for writes (programs).
        erase_latency: seconds to erase one erase block.
        erase_block_blocks: device blocks per erase block. The file
            system aligns its segment area to this boundary at format
            time, so whole dead segments map onto whole erase blocks
            and TRIM can erase ahead of reuse.
        channels: independent flash channels; a multi-block request
            stripes its transfer across up to this many channels
            (``transfer_bandwidth`` is per channel).
    """

    read_latency: float = 60e-6
    program_latency: float = 800e-6
    erase_latency: float = 0.003
    erase_block_blocks: int = 256
    channels: int = 4

    def __post_init__(self) -> None:
        super().__post_init__()
        if min(self.read_latency, self.program_latency, self.erase_latency) < 0:
            raise ValueError("flash latencies must be non-negative")
        if self.erase_block_blocks <= 0:
            raise ValueError("erase_block_blocks must be positive")
        if self.channels <= 0:
            raise ValueError("channels must be positive")

    @property
    def num_erase_blocks(self) -> int:
        """Erase blocks on the device (the last one may be partial)."""
        return -(-self.num_blocks // self.erase_block_blocks)

    def erase_block_of(self, addr: int) -> int:
        """Index of the erase block containing block ``addr``."""
        return addr // self.erase_block_blocks

    def seek_time(self, from_block: int, to_block: int) -> float:
        """Flash has no arm: repositioning is free."""
        return 0.0

    def service_time(self, nbytes: int, *, write: bool) -> float:
        """One request: fixed command latency + channel-striped transfer."""
        nblocks = max(1, -(-nbytes // self.block_size))
        lanes = min(self.channels, nblocks)
        latency = self.program_latency if write else self.read_latency
        return latency + self.transfer_time(nbytes) / lanes

    def access_time(self, from_block: int, to_block: int, nbytes: int) -> float:
        """Read-side service time (for geometry-only callers).

        The device's accounting path uses :meth:`service_time` directly
        so reads and programs get their asymmetric latencies.
        """
        return self.service_time(nbytes, write=False)

    @classmethod
    def nand(
        cls,
        *,
        block_size: int = 4096,
        num_blocks: int = 81920,
        erase_block_blocks: int = 256,
        channels: int = 4,
    ) -> "FlashGeometry":
        """A first-order SLC-NAND SSD profile for what-if experiments.

        ~60 us page read, ~800 us page program, ~3 ms block erase,
        200 MB/s per channel across 4 channels. With the standard 512 KB
        segments the default erase block (256 x 4 KB = 1 MB) spans two
        segments.
        """
        return cls(
            block_size=block_size,
            num_blocks=num_blocks,
            avg_seek_time=0.0,
            rotation_time=0.0,
            transfer_bandwidth=200e6,
            min_seek_time=0.0,
            erase_block_blocks=erase_block_blocks,
            channels=channels,
        )


@dataclass
class CpuModel:
    """A trivial CPU-time model used by benchmark harnesses.

    Figure 8(b) of the paper predicts how each file system scales with CPU
    speed: Sprite LFS was CPU-bound (disk 17% busy) while SunOS was
    disk-bound (disk 85% busy). To reproduce that prediction we charge a
    fixed CPU cost per file-system operation and scale it by a speed
    factor.

    Attributes:
        seconds_per_op: CPU seconds charged per logical operation at
            speedup 1.0 (a Sun-4/260-class machine).
        speedup: CPU speed multiplier; 2.0 halves per-op CPU time.
    """

    seconds_per_op: float = 0.004
    speedup: float = 1.0
    cpu_time: float = field(default=0.0, init=False)

    def charge(self, ops: int = 1) -> float:
        """Charge CPU time for ``ops`` operations and return it."""
        if ops < 0:
            raise ValueError("ops must be non-negative")
        elapsed = ops * self.seconds_per_op / self.speedup
        self.cpu_time += elapsed
        return elapsed

    def reset(self) -> None:
        """Zero the accumulated CPU time."""
        self.cpu_time = 0.0
