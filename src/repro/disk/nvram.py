"""The NVM staging device: a second persistence domain.

Section 5.1 of the paper names small synchronous writes as the workload
where the log's batching advantage evaporates, and its future-work answer
is non-volatile RAM. This module models that board: a byte-addressable
staging log with its own timing profile (fixed per-request latency plus a
bandwidth bound — no arm, no rotation), its own picklable
snapshot/restore state, and its own seeded fault injection (torn records,
record corruption, whole-device failure).

The device stores *framed records*: each append is one atomic unit wrapped
in a magic/sequence/length/CRC header. A power cut can leave a torn tail
(the record being appended), never a torn middle — appends are issued one
at a time — so :meth:`read_records` distinguishes the expected torn-tail
residue (dropped silently: that append was never acknowledged) from
mid-log damage (acknowledged data is gone; the mount path degrades to
read-only rather than guess).

Simulated time: appends and scans advance the shared :class:`SimClock`
and accrue ``busy_time`` in :class:`NVMStats`, so busy-time attribution
and the watchdog's busy-vs-elapsed invariants extend across both domains.
Truncation is a pointer reset and costs nothing.
"""

from __future__ import annotations

import struct
import random
import zlib
from dataclasses import dataclass, field

from repro.core.errors import NVMDeviceFailedError, NVMError
from repro.disk.timing import SimClock

_MAGIC = b"NVR1"
# magic, record seq, body length, body crc32
_FRAME = struct.Struct("<4sQII")

#: Per-record framing overhead in bytes (for destage-threshold math).
RECORD_OVERHEAD = _FRAME.size


@dataclass(frozen=True)
class NVMProfile:
    """Timing/capacity profile of one NVM staging board.

    Attributes:
        capacity_bytes: size of the staging log.
        write_latency: fixed seconds per append (byte-addressable — no
            positioning component).
        read_latency: fixed seconds per recovery scan request.
        bandwidth: sustained transfer rate in bytes/second; the bound the
            sync-write benchmark is measured against.
    """

    capacity_bytes: int = 1024 * 1024
    write_latency: float = 5.0e-6
    read_latency: float = 5.0e-6
    bandwidth: float = 1.0e6

    def __post_init__(self) -> None:
        if self.capacity_bytes < _FRAME.size + 1:
            raise NVMError("NVM capacity too small for a single record")
        if self.write_latency < 0 or self.read_latency < 0:
            raise NVMError("NVM latency must be >= 0")
        if self.bandwidth <= 0:
            raise NVMError("NVM bandwidth must be > 0")

    @classmethod
    def sram_board(cls) -> "NVMProfile":
        """A 1991-plausible battery-backed SRAM board: 1 MiB, ~5 µs
        access, 1 MB/s of sustained bus bandwidth."""
        return cls(
            capacity_bytes=1024 * 1024,
            write_latency=5.0e-6,
            read_latency=5.0e-6,
            bandwidth=1.0e6,
        )


@dataclass
class NVMStats:
    """Counters for the staging log (registered as source ``"nvm"``)."""

    appends: int = 0
    bytes_staged: int = 0
    truncates: int = 0
    records_destaged: int = 0
    replays: int = 0
    records_replayed: int = 0
    records_dropped: int = 0
    failures: int = 0
    busy_time: float = 0.0


@dataclass(frozen=True)
class NVMState:
    """A picklable snapshot of staging-log contents (framed bytes)."""

    records: tuple[bytes, ...]
    next_seq: int
    dead: bool = False


@dataclass
class NVMReadResult:
    """What a recovery scan found in the staging log.

    ``bodies`` is the valid prefix of record payloads, in append order.
    ``dropped`` counts invalid framed records. ``lost`` is True when the
    damage was *not* confined to the final record — acknowledged data is
    unrecoverable and the caller must degrade rather than stay silent.
    """

    bodies: list[bytes] = field(default_factory=list)
    dropped: int = 0
    lost: bool = False


class NVMDevice:
    """A byte-addressable persistent staging log with fault injection."""

    def __init__(
        self,
        profile: NVMProfile | None = None,
        *,
        clock: SimClock | None = None,
    ) -> None:
        self.profile = profile if profile is not None else NVMProfile.sram_board()
        self.clock = clock if clock is not None else SimClock()
        self.stats = NVMStats()
        self.dead = False
        # Optional observability hook (repro.obs.Observation); None = off.
        self.obs = None
        # Recorder hooks for the torture harness: called synchronously on
        # every append (with the framed bytes) and truncate (with the
        # number of records dropped).
        self.on_append = None
        self.on_truncate = None
        self._records: list[bytes] = []
        self._used = 0
        self._next_seq = 1

    # ------------------------------------------------------------------
    # state

    @property
    def used_bytes(self) -> int:
        """Bytes currently occupied by staged records (incl. torn tail)."""
        return self._used

    @property
    def record_count(self) -> int:
        return len(self._records)

    @property
    def free_bytes(self) -> int:
        return self.profile.capacity_bytes - self._used

    def fits(self, body_len: int) -> bool:
        """Would a record with ``body_len`` payload bytes fit right now?"""
        return self._used + _FRAME.size + body_len <= self.profile.capacity_bytes

    def _check_alive(self, op: str) -> None:
        if self.dead:
            raise NVMDeviceFailedError(
                "NVM device failed", addr=self._used, op=op
            )

    def _charge(self, nbytes: int, latency: float) -> float:
        elapsed = latency + nbytes / self.profile.bandwidth
        self.clock.advance(elapsed)
        self.stats.busy_time += elapsed
        return elapsed

    # ------------------------------------------------------------------
    # I/O

    def append_record(self, body: bytes) -> int:
        """Append one CRC-framed record; returns its sequence number.

        The frame is the atomicity unit: a crash mid-append leaves a torn
        frame that :meth:`read_records` drops, exactly as a torn segment
        write is rejected whole by its summary CRC.
        """
        self._check_alive("append")
        if not body:
            raise NVMError("empty NVM record", addr=self._used, op="append")
        framed = _FRAME.pack(_MAGIC, self._next_seq, len(body), zlib.crc32(body)) + body
        if self._used + len(framed) > self.profile.capacity_bytes:
            raise NVMError(
                f"staging log full ({self._used}+{len(framed)} of "
                f"{self.profile.capacity_bytes} bytes)",
                addr=self._used,
                op="append",
            )
        elapsed = self._charge(len(framed), self.profile.write_latency)
        seq = self._next_seq
        self._next_seq += 1
        self._records.append(framed)
        self._used += len(framed)
        self.stats.appends += 1
        self.stats.bytes_staged += len(framed)
        if self.obs is not None:
            self.obs.on_nvm_io(self.clock.now, len(framed), elapsed)
            from repro.obs.events import NVM_APPEND

            self.obs.emit(
                NVM_APPEND,
                seq=seq,
                bytes=len(framed),
                records=len(self._records),
                used=self._used,
                elapsed=elapsed,
            )
        if self.on_append is not None:
            self.on_append(framed)
        return seq

    def truncate_all(self, *, uncovered: int = 0) -> int:
        """Drop every staged record; returns how many were dropped.

        Called by the file system only after a flush has made every
        covered byte durable in the on-disk log. ``uncovered`` is the
        caller's count of still-dirty state at truncation time — the
        watchdog asserts it is zero (nvm-truncate-covered-by-disk).
        Truncation is a pointer reset: no simulated time.
        """
        self._check_alive("truncate")
        n = len(self._records)
        nbytes = self._used
        self._records.clear()
        self._used = 0
        self.stats.truncates += 1
        self.stats.records_destaged += n
        if self.obs is not None:
            from repro.obs.events import NVM_TRUNCATE

            self.obs.emit(
                NVM_TRUNCATE, records=n, bytes=nbytes, uncovered=uncovered
            )
        if self.on_truncate is not None:
            self.on_truncate(n)
        return n

    def read_records(self) -> NVMReadResult:
        """Scan surviving records for recovery (charges one streamed read).

        Frames are validated in order; the valid prefix's bodies are
        returned. Damage confined to the final frame is the expected torn
        tail of a mid-append power cut (``lost=False``); an invalid frame
        with valid successors — or any earlier damage — means
        acknowledged records are gone (``lost=True``).
        """
        self._check_alive("read")
        if self._used:
            elapsed = self._charge(self._used, self.profile.read_latency)
            if self.obs is not None:
                self.obs.on_nvm_io(self.clock.now, self._used, elapsed)
        result = NVMReadResult()
        first_bad = None
        for i, framed in enumerate(self._records):
            body = self._parse(framed)
            if body is None:
                first_bad = i
                break
            result.bodies.append(body)
        if first_bad is not None:
            result.dropped = len(self._records) - first_bad
            result.lost = first_bad < len(self._records) - 1
        self.stats.replays += 1
        self.stats.records_replayed += len(result.bodies)
        self.stats.records_dropped += result.dropped
        return result

    @staticmethod
    def _parse(framed: bytes) -> bytes | None:
        """Body of one framed record, or None if the frame is invalid."""
        if len(framed) < _FRAME.size:
            return None
        magic, _seq, length, crc = _FRAME.unpack_from(framed, 0)
        if magic != _MAGIC or len(framed) != _FRAME.size + length:
            return None
        body = framed[_FRAME.size :]
        if zlib.crc32(body) != crc:
            return None
        return body

    # ------------------------------------------------------------------
    # fault injection (torture harness)

    def tear_last_record(self, seed: int = 0) -> None:
        """Truncate the final record's bytes — a power cut mid-append."""
        if not self._records:
            return
        last = self._records[-1]
        keep = random.Random(seed).randrange(0, len(last))
        self._used -= len(last) - keep
        self._records[-1] = last[:keep]
        if not self._records[-1]:
            self._records.pop()

    def corrupt_record(self, index: int, seed: int = 0) -> None:
        """Flip seeded bytes inside record ``index`` (NVM media loss).

        Flips land in the record *body*: a body flip always breaks the
        frame CRC, whereas a flip confined to the frame's sequence field
        would slip past validation and make the damage seed-dependent.
        """
        framed = bytearray(self._records[index])
        rng = random.Random(seed)
        start = _FRAME.size if len(framed) > _FRAME.size else 0
        for _ in range(max(1, len(framed) // 64)):
            pos = rng.randrange(start, len(framed))
            framed[pos] ^= 1 + rng.randrange(255)
        self._records[index] = bytes(framed)

    def fail_device(self) -> None:
        """Kill the whole board; every future request raises."""
        self.dead = True
        self.stats.failures += 1

    # ------------------------------------------------------------------
    # snapshot / restore

    def snapshot_state(self) -> NVMState:
        """Capture contents for later :meth:`restore_state` (picklable)."""
        return NVMState(
            records=tuple(self._records), next_seq=self._next_seq, dead=self.dead
        )

    def restore_state(self, state: NVMState) -> None:
        """Replace contents with a prior snapshot (no time charged)."""
        self._records = list(state.records)
        self._used = sum(len(r) for r in self._records)
        self._next_seq = state.next_seq
        self.dead = state.dead

    def __repr__(self) -> str:
        return (
            f"NVMDevice(records={len(self._records)}, used={self._used}, "
            f"capacity={self.profile.capacity_bytes}, dead={self.dead})"
        )
