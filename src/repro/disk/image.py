"""Disk-image persistence: save/load a simulated disk to a host file.

The format is a small header (geometry + clock) followed by one record
per written block, so images of mostly-empty disks stay small. This is
what lets the command-line interface operate on durable file-system
images across invocations.
"""

from __future__ import annotations

import struct

from repro.core.blocks import require
from repro.core.errors import CorruptionError
from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry
from repro.disk.timing import SimClock

_MAGIC = 0x4C46_5349  # "LFSI"
_HEADER = struct.Struct("<IIQQdddddQd")  # magic, block_size, num_blocks,
# track_blocks, avg_seek, rotation, bandwidth, min_seek, clock, nrecords, pad


def save_disk(disk: Disk, path: str) -> int:
    """Write a disk image; returns the number of block records saved."""
    records = sorted(disk.written_addresses())
    geo = disk.geometry
    header = _HEADER.pack(
        _MAGIC,
        geo.block_size,
        geo.num_blocks,
        geo.track_blocks,
        geo.avg_seek_time,
        geo.rotation_time,
        geo.transfer_bandwidth,
        geo.min_seek_time,
        disk.clock.now,
        len(records),
        0.0,
    )
    with open(path, "wb") as fh:
        fh.write(header)
        for addr in records:
            fh.write(struct.pack("<Q", addr))
            fh.write(disk.view(addr))
    return len(records)


def load_disk(path: str) -> Disk:
    """Reconstruct a disk (contents, geometry, and clock) from an image."""
    with open(path, "rb") as fh:
        raw = fh.read(_HEADER.size)
        require(len(raw) == _HEADER.size, "disk image header truncated")
        (
            magic,
            block_size,
            num_blocks,
            track_blocks,
            avg_seek,
            rotation,
            bandwidth,
            min_seek,
            clock_now,
            nrecords,
            _,
        ) = _HEADER.unpack(raw)
        require(magic == _MAGIC, "not a disk image (bad magic)")
        geometry = DiskGeometry(
            block_size=block_size,
            num_blocks=num_blocks,
            avg_seek_time=avg_seek,
            rotation_time=rotation,
            transfer_bandwidth=bandwidth,
            track_blocks=track_blocks,
            min_seek_time=min_seek,
        )
        disk = Disk(geometry, clock=SimClock(clock_now))
        for _ in range(nrecords):
            addr_raw = fh.read(8)
            payload = fh.read(block_size)
            if len(addr_raw) != 8 or len(payload) != block_size:
                raise CorruptionError("disk image block records truncated")
            (addr,) = struct.unpack("<Q", addr_raw)
            disk._store(addr, payload)
    return disk
