"""The cleaning simulator's core model (Section 3.5).

"The simulator models a file system as a fixed number of 4-kbyte files,
with the number chosen to produce a particular overall disk capacity
utilization. At each step, the simulator overwrites one of the files with
new data. [...] The simulator runs until all clean segments are
exhausted, then simulates the actions of a cleaner until a threshold
number of clean segments is available again."

Files are one block each. No read traffic is modeled. All results are in
block counts, which is exactly the currency of the write-cost metric.
"""

from __future__ import annotations

import random
from bisect import bisect_left, insort
from dataclasses import dataclass, field

from repro.simulator.patterns import AccessPattern, UniformPattern
from repro.simulator.policies import (
    GroupingPolicy,
    SelectionPolicy,
    cost_benefit_key,
    rank,
)
from repro.simulator.writecost import measured_write_cost
from repro.victims import LazyVictimHeap, partial_sort


@dataclass
class SimConfig:
    """Parameters of one simulation run.

    Attributes:
        num_segments: segments on the simulated disk.
        blocks_per_segment: one-block files per segment.
        utilization: overall disk capacity utilization; fixes the file
            population size.
        selection: greedy or cost-benefit victim selection.
        grouping: whether the cleaner age-sorts live blocks on the way out.
        clean_threshold: the cleaner runs until this many clean segments
            are available again. The defaults model the paper's regime of
            fine-grained cleaning — the cleaner kicks in exactly when the
            log runs dry and reclaims one segment at a time — which is
            what makes locality *hurt* the greedy policy (fresh segments
            are consumed before their hot blocks have died, and cold
            segments linger just above the cleaning point). Large
            thresholds with big passes let fresh segments decay fully
            before cleaning and wash the effect out.
        segments_per_pass: victims examined per cleaning pass.
        seed: RNG seed (runs are deterministic).
        warmup_factor: steps before the first measurement window, as a
            multiple of total blocks.
        measure_factor: steps per measurement window, as a multiple of
            total blocks.
        stable_tol: relative write-cost change between consecutive windows
            below which the run is considered converged (the paper runs
            "until the write cost stabilized").
        stable_windows: consecutive converged windows required.
        max_windows: hard cap on measurement windows. Hot-and-cold runs
            need many windows: the cold-segment free-space hoarding that
            drives Figure 5 develops over several cold-file lifetimes.
        incremental: use the incremental victim-selection engine (a
            lazy-invalidation heap for greedy, top-k partial selection
            for cost-benefit). Victim choice is bit-identical to the
            legacy full-scan/full-sort path, which remains available as
            a reference oracle with ``incremental=False``.
    """

    num_segments: int = 100
    blocks_per_segment: int = 128
    utilization: float = 0.75
    selection: SelectionPolicy = SelectionPolicy.GREEDY
    grouping: GroupingPolicy = GroupingPolicy.NONE
    clean_threshold: int = 2
    segments_per_pass: int = 1
    seed: int = 42
    warmup_factor: float = 6.0
    measure_factor: float = 4.0
    stable_tol: float = 0.04
    stable_windows: int = 2
    max_windows: int = 40
    incremental: bool = True

    def __post_init__(self) -> None:
        if self.num_segments < 4 or self.blocks_per_segment < 1:
            raise ValueError("disk too small to simulate")
        if not 0.0 < self.utilization < 1.0:
            raise ValueError("utilization must be in (0, 1)")
        total = self.num_segments * self.blocks_per_segment
        files = round(self.utilization * total)
        free_segments = self.num_segments - (files + self.blocks_per_segment - 1) // self.blocks_per_segment
        if free_segments < 3:
            raise ValueError(
                f"utilization {self.utilization} leaves no room for the cleaner"
            )
        if self.clean_threshold < 1:
            raise ValueError("clean_threshold must be >= 1")

    @property
    def total_blocks(self) -> int:
        return self.num_segments * self.blocks_per_segment

    @property
    def num_files(self) -> int:
        return round(self.utilization * self.total_blocks)


@dataclass
class SimResult:
    """Measured outcome of a simulation run."""

    config: SimConfig
    pattern_name: str
    write_cost: float
    new_blocks: int
    moved_blocks: int
    read_blocks: int
    segments_cleaned: int
    total_steps: int = 0
    cleaned_utilizations: list[float] = field(repr=False, default_factory=list)
    utilization_histogram: list[float] = field(repr=False, default_factory=list)

    @property
    def avg_cleaned_utilization(self) -> float:
        """Mean utilization of segments the cleaner processed."""
        if not self.cleaned_utilizations:
            return 0.0
        return sum(self.cleaned_utilizations) / len(self.cleaned_utilizations)


class Simulator:
    """One simulated log-structured disk under churn."""

    def __init__(self, config: SimConfig, pattern: AccessPattern | None = None) -> None:
        self.config = config
        self.pattern = pattern if pattern is not None else UniformPattern()
        self.rng = random.Random(config.seed)
        self.pattern.bind(config.num_files, self.rng)

        S, B = config.num_segments, config.blocks_per_segment
        self.file_seg = [-1] * config.num_files
        self.file_mtime = [0.0] * config.num_files
        self.seg_live = [0] * S
        self.seg_mtime = [0.0] * S
        # Per-segment live-file membership, iterated in *log order* (the
        # order blocks were appended): insertion-ordered dicts with None
        # values. Log order is what a real segment scan would yield, it
        # is deterministic across engines (unlike set hash order), and
        # the vectorized engine's slot table reproduces it exactly.
        self.seg_files: list[dict[int, None]] = [{} for _ in range(S)]
        self.clean_segs = list(range(S - 1, -1, -1))  # stack, pop() -> seg 0 first
        self.clean_set = set(self.clean_segs)  # O(1) membership, kept in sync
        self.cur_seg = self.clean_segs.pop()
        self.clean_set.discard(self.cur_seg)
        # All non-clean segments, kept sorted ascending: the cleaner's
        # candidate universe, maintained incrementally instead of being
        # rebuilt by an O(num_segments) range scan per cleaner call.
        self._inlog: list[int] = [self.cur_seg]
        self.cur_fill = 0
        self.out_seg = -1  # cleaner's output segment
        self.out_fill = 0
        self.step_no = 0

        # counters (split into total and post-warmup "measured")
        self.new_blocks = 0
        self.moved_blocks = 0
        self.read_blocks = 0
        self.segments_cleaned = 0
        self.measuring = False
        self.m_new = 0
        self.m_moved = 0
        self.m_read = 0
        self.cleaned_utilizations: list[float] = []
        self.util_snapshots: list[float] = []

        # Incremental victim selection: segments whose live count changed
        # since the heap last saw them. The hot write path only records
        # the segment number; scores are folded into the heap right
        # before a selection, so a pass costs O(changed log S) instead of
        # the legacy O(S log S) full re-sort.
        self._victims = LazyVictimHeap()
        self._score_dirty: set[int] = set(range(S))

        # initial layout: every file written once, in file order
        for f in range(config.num_files):
            self._append_new(f)

    # ------------------------------------------------------------------
    # write path

    def _take_clean(self) -> int:
        if not self.clean_segs:
            self._run_cleaner()
        if not self.clean_segs:
            raise RuntimeError("cleaner could not produce a clean segment")
        seg = self.clean_segs.pop()
        self.clean_set.discard(seg)
        insort(self._inlog, seg)
        return seg

    def _append_new(self, f: int) -> None:
        """Write file ``f`` at the head of the log."""
        if self.cur_fill >= self.config.blocks_per_segment:
            self.cur_seg = self._take_clean()
            self.cur_fill = 0
        seg = self.cur_seg
        self.file_seg[f] = seg
        self.seg_live[seg] += 1
        self.seg_files[seg][f] = None
        self._score_dirty.add(seg)
        if self.file_mtime[f] > self.seg_mtime[seg]:
            self.seg_mtime[seg] = self.file_mtime[f]
        self.cur_fill += 1
        self.new_blocks += 1
        if self.measuring:
            self.m_new += 1

    def _append_moved(self, f: int) -> None:
        """Write a live file the cleaner is carrying to its output head."""
        if self.out_seg < 0 or self.out_fill >= self.config.blocks_per_segment:
            if not self.clean_segs:
                raise RuntimeError("cleaner ran out of output segments")
            self.out_seg = self.clean_segs.pop()
            self.clean_set.discard(self.out_seg)
            insort(self._inlog, self.out_seg)
            self.out_fill = 0
        seg = self.out_seg
        self.file_seg[f] = seg
        self.seg_live[seg] += 1
        self.seg_files[seg][f] = None
        self._score_dirty.add(seg)
        if self.file_mtime[f] > self.seg_mtime[seg]:
            self.seg_mtime[seg] = self.file_mtime[f]
        self.out_fill += 1
        self.moved_blocks += 1
        if self.measuring:
            self.m_moved += 1

    def step(self) -> None:
        """Overwrite one file chosen by the access pattern."""
        self.step_no += 1
        f = self.pattern.next_file()
        old = self.file_seg[f]
        if old >= 0:
            self.seg_live[old] -= 1
            self.seg_files[old].pop(f, None)
            self._score_dirty.add(old)
        self.file_mtime[f] = float(self.step_no)
        self._append_new(f)

    # ------------------------------------------------------------------
    # cleaning

    def _candidates(self) -> list[int]:
        # ``_inlog`` is exactly the non-clean segments, already sorted
        # ascending, so no range scan over all of num_segments is needed
        return [
            s for s in self._inlog if s != self.cur_seg and s != self.out_seg
        ]

    def _victim_excluded(self, seg: int) -> bool:
        return seg in self.clean_set or seg == self.cur_seg or seg == self.out_seg

    def _flush_victim_scores(self) -> None:
        """Fold deferred live-count changes into the victim heap."""
        update = self._victims.update
        remove = self._victims.remove
        live = self.seg_live
        clean = self.clean_set
        for seg in self._score_dirty:
            if seg in clean:
                remove(seg)
            else:
                update(seg, live[seg])
        self._score_dirty.clear()

    def _legacy_victims(self, count: int) -> list[int]:
        """Reference oracle: the original full-scan, full-sort selection."""
        candidates = self._candidates()
        if not candidates:
            return []
        B = self.config.blocks_per_segment
        ranked = rank(
            self.config.selection,
            candidates,
            self,
            float(self.step_no),
            B,
        )
        # A fully live segment yields nothing: cleaning it is pure
        # cost (benefit is zero under both policies), so never pick
        # one while anything better exists.
        ranked = [s for s in ranked if self.seg_live[s] < B]
        return ranked[:count]

    def _select_victims(self, count: int) -> list[int]:
        """Pick the next ``count`` victims; bit-identical to the oracle.

        Greedy scores depend only on live counts, so they live in a
        persistent lazy-invalidation heap updated from the deferred
        dirty set. Cost-benefit scores move with the clock and cannot be
        cached across passes; they use top-k partial selection instead
        of a full sort.
        """
        if not self.config.incremental:
            return self._legacy_victims(count)
        B = self.config.blocks_per_segment
        if self.config.selection is SelectionPolicy.GREEDY:
            self._flush_victim_scores()
            return self._victims.select(
                count, exclude=self._victim_excluded, stop_score=B
            )
        ratio = cost_benefit_key(self, float(self.step_no), B)
        live = self.seg_live
        candidates = [s for s in self._candidates() if live[s] < B]
        return partial_sort(candidates, count, key=lambda s: -ratio(s))

    def _run_cleaner(self) -> None:
        """Clean until the threshold of clean segments is available."""
        B = self.config.blocks_per_segment
        if self.measuring:
            for s in self._candidates():
                self.util_snapshots.append(self.seg_live[s] / B)
        while len(self.clean_segs) < self.config.clean_threshold:
            victims = self._select_victims(self.config.segments_per_pass)
            if not victims:
                break  # everything left is fully live: no reclaimable space
            live_files: list[int] = []
            for v in victims:
                u = self.seg_live[v] / B
                self.cleaned_utilizations.append(u)
                if self.seg_live[v] > 0:
                    self.read_blocks += B
                    if self.measuring:
                        self.m_read += B
                live_files.extend(self.seg_files[v])
                # the victim's space is reclaimed; its live data is in hand
                self.seg_live[v] = 0
                self.seg_files[v] = {}
                self.seg_mtime[v] = 0.0
                self.clean_segs.append(v)
                self.clean_set.add(v)
                del self._inlog[bisect_left(self._inlog, v)]
                self._score_dirty.add(v)
                self.segments_cleaned += 1
            if self.config.grouping == GroupingPolicy.AGE_SORT:
                live_files.sort(key=lambda f: self.file_mtime[f])
            for f in live_files:
                self._append_moved(f)

    # SegmentView protocol -------------------------------------------------

    def live_blocks(self, seg: int) -> int:
        """Live blocks in a segment (policy callback)."""
        return self.seg_live[seg]

    def segment_mtime(self, seg: int) -> float:
        """Youngest block's modified time (policy callback)."""
        return self.seg_mtime[seg]

    # ------------------------------------------------------------------
    # runs

    def _reset_window(self) -> None:
        self.m_new = self.m_moved = self.m_read = 0
        self.cleaned_utilizations.clear()
        self.util_snapshots.clear()

    def run(self) -> SimResult:
        """Run to steady state and return the last window's measurements.

        Measurement proceeds in windows; the run ends once the per-window
        write cost has stopped moving (``stable_tol`` over
        ``stable_windows`` consecutive windows) or ``max_windows`` is
        reached — the paper's "until the write cost stabilized and all
        cold-start variance had been removed".
        """
        cfg = self.config
        warmup = int(cfg.warmup_factor * cfg.total_blocks)
        window = max(1, int(cfg.measure_factor * cfg.total_blocks))
        for _ in range(warmup):
            self.step()
        self.measuring = True
        prev_cost = None
        stable = 0
        for _ in range(cfg.max_windows):
            self._reset_window()
            for _ in range(window):
                self.step()
            cost = measured_write_cost(self.m_new, self.m_moved, self.m_read)
            if prev_cost is not None and prev_cost > 0:
                if abs(cost - prev_cost) / prev_cost <= cfg.stable_tol:
                    stable += 1
                else:
                    stable = 0
            prev_cost = cost
            if stable >= cfg.stable_windows:
                break
        return SimResult(
            config=cfg,
            pattern_name=self.pattern.name,
            write_cost=prev_cost if prev_cost is not None else 1.0,
            new_blocks=self.m_new,
            moved_blocks=self.m_moved,
            read_blocks=self.m_read,
            segments_cleaned=self.segments_cleaned,
            total_steps=self.step_no,
            cleaned_utilizations=list(self.cleaned_utilizations),
            utilization_histogram=list(self.util_snapshots),
        )
