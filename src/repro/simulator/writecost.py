"""Write-cost arithmetic (Section 3.4, formula 1, and Figure 3).

The write cost is the average disk-busy time per byte of new data,
expressed as a multiple of the no-overhead ideal. For a log-structured
file system with large segments it reduces to bytes moved over new bytes:

    write cost = (N + N*u + N*(1-u)) / (N*(1-u)) = 2 / (1-u)

where ``u`` is the utilization of the segments cleaned. The paper's two
reference points: Unix FFS achieves 5-10% of disk bandwidth on small-file
workloads (write cost 10-20, drawn as 10), and an improved FFS with
logging, delayed writes, and request sorting could reach ~25% (cost 4).
"""

from __future__ import annotations

FFS_TODAY_WRITE_COST = 10.0
FFS_IMPROVED_WRITE_COST = 4.0


def lfs_write_cost(u: float) -> float:
    """Formula (1): write cost of cleaning segments at utilization ``u``.

    A segment with no live blocks need not be read at all, so the cost at
    u = 0 is exactly 1.0.
    """
    if not 0.0 <= u < 1.0:
        raise ValueError(f"utilization {u} must be in [0, 1)")
    if u == 0.0:
        return 1.0
    return 2.0 / (1.0 - u)


def measured_write_cost(new_blocks: int, moved_blocks: int, read_blocks: int) -> float:
    """Write cost from raw simulator counters.

    ``new_blocks`` of new data were written, the cleaner rewrote
    ``moved_blocks`` of live data, and read ``read_blocks`` while doing
    it: cost is total traffic over new data.
    """
    if new_blocks <= 0:
        return 1.0
    return (new_blocks + moved_blocks + read_blocks) / new_blocks


def bandwidth_fraction(write_cost: float) -> float:
    """Fraction of raw disk bandwidth that reaches new data."""
    if write_cost < 1.0:
        raise ValueError("write cost cannot be below 1.0")
    return 1.0 / write_cost
