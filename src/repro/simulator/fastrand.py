"""Bit-exact vectorized replication of :class:`random.Random` draws.

The vectorized simulator must consume randomness in batches, yet produce
*the same file sequence* as the reference engine, which calls
``Random.randrange`` / ``Random.random`` one step at a time. CPython's
``random.Random`` is a Mersenne Twister (MT19937) whose state is fully
exposed by ``getstate()``, and every draw the simulator performs maps to
a deterministic consumption of the generator's 32-bit word stream:

- ``random()`` consumes two words ``a, b`` and returns
  ``((a >> 5) * 2**26 + (b >> 6)) / 2**53``;
- ``randrange(n)`` (via ``_randbelow``) repeatedly consumes one word,
  keeps its top ``n.bit_length()`` bits, and rejects values ``>= n``.

:class:`MTStream` regenerates that exact word stream by seating the
``getstate()`` tuple (624 key words + position) directly into numpy's
own ``np.random.MT19937`` bit generator — the identical algorithm, so
its bulk ``integers`` fill emits CPython's stream at C speed (~125M
words/s, verified word-for-word in tests). The samplers then replay the
*consumption pattern* of the access patterns in
:mod:`repro.simulator.patterns`:

- :class:`UniformSampler` — ``randrange(n)`` per step. Rejection
  sampling is order-preserving over the word stream, so a batch is just
  ``values[values < n]`` with the consumed-word count tracked.
- :class:`HotColdSampler` — ``random() < hot_access_fraction`` then a
  branch-dependent ``randrange``. Word offsets depend on earlier
  rejections, so the per-offset successor function (``next offset and
  sample value if a draw started here``) is precomputed vectorized and
  the actual chain of offsets is walked in a tight scalar loop.
- :class:`GenericSampler` — fallback for custom patterns: calls
  ``next_file()`` per step (still batched into an array, not fast but
  always bit-identical).

Every sampler's output for any call sequence ``take(k1), take(k2), ...``
equals the first ``k1+k2+...`` results of the corresponding pattern's
``next_file()`` stream — asserted in tests/test_fast_simulator.py.
"""

from __future__ import annotations

import random

try:  # pragma: no cover - exercised via HAVE_NUMPY in both states
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

HAVE_NUMPY = np is not None

_N = 624
_INV_2_53 = 1.0 / 9007199254740992.0  # 2**-53, the constant random() uses
_FULL_RANGE = 1 << 32


class MTStream:
    """The 32-bit output word stream of ``random.Random(seed)``.

    Words come out in the exact order ``genrand_uint32`` would produce
    them, so any consumer that mirrors CPython's draw logic gets
    bit-identical results. CPython's state tuple is seated directly into
    ``np.random.MT19937`` (the same twist and tempering); a full-range
    ``integers`` fill then consumes exactly one untouched word per
    output, and the generator position carries across calls.
    """

    def __init__(self, seed: int) -> None:
        if np is None:  # pragma: no cover
            raise RuntimeError("MTStream requires numpy")
        version, internal, _gauss = random.Random(seed).getstate()
        if version != 3:  # pragma: no cover - stable since Python 2.6
            raise RuntimeError(f"unsupported random.Random state version {version}")
        bg = np.random.MT19937()
        bg.state = {
            "bit_generator": "MT19937",
            "state": {
                "key": np.array(internal[:_N], dtype=np.uint32),
                "pos": internal[_N],
            },
        }
        self._gen = np.random.Generator(bg)

    def words(self, count: int) -> "np.ndarray":
        """The next ``count`` output words as a ``uint32`` array."""
        return self._gen.integers(0, _FULL_RANGE, size=count, dtype=np.uint32)


class _BufferedWords:
    """A growable prefix of a word stream with a consumed-position cursor."""

    def __init__(self, seed: int) -> None:
        self._stream = MTStream(seed)
        self._words = np.empty(0, dtype=np.uint32)
        self._pos = 0

    @property
    def pending(self) -> "np.ndarray":
        return self._words[self._pos :]

    def ensure(self, count: int) -> None:
        """Grow the unconsumed window to at least ``count`` words."""
        short = count - (len(self._words) - self._pos)
        if short > 0:
            fresh = self._stream.words(max(short, 512))
            self._words = np.concatenate([self._words[self._pos :], fresh])
            self._pos = 0

    def consume(self, count: int) -> None:
        self._pos += count


class UniformSampler:
    """Batched, bit-exact ``randrange(num_files)`` (uniform pattern)."""

    def __init__(self, num_files: int, seed: int) -> None:
        if num_files < 1:
            raise ValueError("need at least one file")
        if num_files.bit_length() > 32:
            raise ValueError("population too large for 32-bit draws")
        self._n = num_files
        self._shift = np.uint32(32 - num_files.bit_length())
        # expected words per draw: 2**bit_length / n, always in [1, 2)
        self._per = float(1 << num_files.bit_length()) / num_files
        self._buf = _BufferedWords(seed)

    def take(self, count: int) -> "np.ndarray":
        """The next ``count`` file indices, as an int64 array."""
        n = self._n
        out = np.empty(count, dtype=np.int64)
        if count == 0:
            return out
        got = 0
        self._buf.ensure(int(count * self._per * 1.02) + 16)
        while True:
            vals = self._buf.pending >> self._shift
            hits = np.flatnonzero(vals < n)
            need = count - got
            if len(hits) >= need:
                out[got:] = vals[hits[:need]]
                self._buf.consume(int(hits[need - 1]) + 1)
                return out
            # everything pending after the last acceptance is a rejection,
            # so the whole window is consumed before refilling
            out[got : got + len(hits)] = vals[hits]
            got += len(hits)
            self._buf.consume(len(vals))
            self._buf.ensure(int((count - got) * self._per * 1.1) + 16)


class HotColdSampler:
    """Batched, bit-exact hot-and-cold draws.

    Per step the pattern consumes two words for ``random()`` and then a
    rejection-sampled ``randrange`` whose modulus depends on the branch.
    For a window of pending words this precomputes, for every offset
    ``o`` at which a step could start, the offset the *next* step starts
    at (rejection runs resolved with a vectorized next-acceptance index,
    a reverse ``minimum.accumulate``). The inherently sequential chain of
    start offsets is then walked with pointer doubling: composing the
    successor table with itself four times yields a table that jumps 16
    samples at once, so the scalar walk only touches every 16th offset
    and the intermediate ones are reconstructed by vectorized gathers.
    Sample values never enter the walk at all — they are gathered in one
    shot from the accepted word of each collected start offset.
    """

    _STRIDE = 16  # samples per composed pointer-doubling jump

    def __init__(
        self,
        num_files: int,
        hot_fraction: float,
        hot_access_fraction: float,
        seed: int,
    ) -> None:
        if num_files < 2:
            raise ValueError("need at least two files for two groups")
        self._num_hot = max(1, round(num_files * hot_fraction))
        self._num_cold = num_files - self._num_hot
        if self._num_cold < 1:
            raise ValueError("hot_fraction leaves no cold files")
        self._haf = hot_access_fraction
        self._sh_hot = np.uint32(32 - self._num_hot.bit_length())
        self._sh_cold = np.uint32(32 - self._num_cold.bit_length())
        self._buf = _BufferedWords(seed)
        self._idx = np.empty(0, dtype=np.int32)

    def _estimate(self, count: int) -> int:
        nh, nc = self._num_hot, self._num_cold
        per_hot = (1 << nh.bit_length()) / nh
        per_cold = (1 << nc.bit_length()) / nc
        per = 2.0 + self._haf * per_hot + (1.0 - self._haf) * per_cold
        return int(count * per * 1.2) + 64

    # successor arrays cost ~15 temporaries of 8 bytes/word; chunking
    # large requests keeps the working set bounded (and window-sized
    # requests, the simulator's usage, pass through untouched)
    _CHUNK = 1 << 16

    def take(self, count: int) -> "np.ndarray":
        if count <= self._CHUNK:
            return self._take_chunk(count)
        parts = []
        left = count
        while left > 0:
            parts.append(self._take_chunk(min(left, self._CHUNK)))
            left -= self._CHUNK
        return np.concatenate(parts)

    def _take_chunk(self, count: int) -> "np.ndarray":
        out = np.empty(count, dtype=np.int64)
        got = 0
        offset = 0  # position within the pending window
        stride = self._STRIDE
        self._buf.ensure(self._estimate(count))
        while got < count:
            w = self._buf.pending
            m = len(w)
            hv, cv, hb, j1 = self._successors(w, m)
            sent = m + 3
            # pointer doubling: j2 jumps 2 samples, ..., j16 jumps 16;
            # the sentinel self-loop survives every composition (take is
            # measurably faster than fancy indexing for this gather)
            j2 = j1.take(j1)
            j4 = j2.take(j2)
            j8 = j4.take(j4)
            j16 = j8.take(j8)
            need = count - got
            o = offset
            anchors: list[int] = []
            jump = j16.item
            append = anchors.append
            while need >= stride:
                nx = jump(o)
                if nx == sent:
                    break
                append(o)
                o = nx
                need -= stride
            # the tail (and any run that outgrew the window) walks the
            # single-sample table until it hits the sentinel
            tail: list[int] = []
            jump1 = j1.item
            append = tail.append
            while need > 0:
                nx = jump1(o)
                if nx == sent:
                    break
                append(o)
                o = nx
                need -= 1
            if anchors:
                s = np.array(anchors, dtype=np.int64)
                for jt in (j8, j4, j2, j1):
                    d = np.empty(2 * len(s), dtype=np.int64)
                    d[0::2] = s
                    d[1::2] = jt[s]
                    s = d
                if tail:
                    s = np.concatenate([s, np.array(tail, dtype=np.int64)])
            elif tail:
                s = np.array(tail, dtype=np.int64)
            else:
                s = None
            if s is not None:
                # value of the sample starting at o: the accepted word is
                # j1[o] - 1, interpreted under the branch taken at o
                e = j1[s]
                e -= 1
                vals = np.where(hb[s], hv[e], cv[e] + np.int64(self._num_hot))
                out[got : got + len(s)] = vals
                got += len(s)
            offset = o
            if got < count:
                # ran off the window tail mid-chain: grow it and rebuild
                # (already-taken samples stay valid — the prefix is fixed)
                self._buf.ensure(m + self._estimate(count - got))
        self._buf.consume(offset)
        return out

    def _successors(self, w: "np.ndarray", m: int):
        """``(hot_vals, cold_vals, hot_branch, next_start)`` per offset.

        ``next_start[o]`` is the offset the following step starts at if a
        step starts at ``o``; entries whose draw cannot be resolved
        inside the window (and every out-of-range index up to the
        sentinel itself) map to the sentinel ``m + 3``, which self-loops
        under composition.
        """
        nh, nc = self._num_hot, self._num_cold
        hv = w >> self._sh_hot
        cv = w >> self._sh_cold
        if m > len(self._idx):
            self._idx = np.arange(max(m, 2 * len(self._idx)), dtype=np.int32)
        idx = self._idx[:m]
        big = np.int32(m + 2)
        # next index >= j whose draw is accepted, per modulus
        nxt_hot = np.minimum.accumulate(np.where(hv < nh, idx, big)[::-1])[::-1]
        nxt_cold = np.minimum.accumulate(np.where(cv < nc, idx, big)[::-1])[::-1]
        # random() over word pairs (j, j+1), exactly CPython's arithmetic
        u = (w[:-1] >> np.uint32(5)).astype(np.float64) * 67108864.0
        u += (w[1:] >> np.uint32(6)).astype(np.float64)
        u *= _INV_2_53
        hb = u < self._haf  # branch for a step starting at each offset
        j1 = np.full(m + 4, m + 3, dtype=np.int32)
        if m >= 3:
            # accepted index + 1; unresolved entries land exactly on the
            # sentinel (big + 1 == m + 3)
            j1[: m - 2] = np.where(hb[: m - 2], nxt_hot[2:], nxt_cold[2:]) + 1
        return hv, cv, hb, j1


class GenericSampler:
    """Fallback for arbitrary patterns: per-step calls, batched output."""

    def __init__(self, pattern, num_files: int, seed: int) -> None:
        self._pattern = pattern
        pattern.bind(num_files, random.Random(seed))

    def take(self, count: int) -> "np.ndarray":
        next_file = self._pattern.next_file
        return np.fromiter(
            (next_file() for _ in range(count)), dtype=np.int64, count=count
        )


def make_sampler(pattern, num_files: int, seed: int):
    """A batched sampler replicating ``pattern`` bound to ``Random(seed)``.

    Exact-type matches get the vectorized implementation; subclasses (or
    any custom pattern) fall back to :class:`GenericSampler`, which is
    slower but equally bit-identical.
    """
    from repro.simulator.patterns import HotColdPattern, UniformPattern

    if type(pattern) is UniformPattern:
        return UniformSampler(num_files, seed)
    if type(pattern) is HotColdPattern:
        return HotColdSampler(
            num_files, pattern.hot_fraction, pattern.hot_access_fraction, seed
        )
    return GenericSampler(pattern, num_files, seed)
