"""Cleaning policies for the simulator (Sections 3.4-3.5).

Two independent policy axes, exactly as the paper separates them:

- **selection** — which segments to clean: greedy (least utilized first)
  or cost-benefit (highest ``(1-u) * age / (1+u)`` first);
- **grouping** — how to order the live blocks written back out: in the
  order they were found, or sorted by age so cold data segregates from
  hot ("age sort").
"""

from __future__ import annotations

import enum
from typing import Protocol, Sequence


class SelectionPolicy(enum.Enum):
    """Segment-selection policies."""

    GREEDY = "greedy"
    COST_BENEFIT = "cost-benefit"


class GroupingPolicy(enum.Enum):
    """Live-block grouping during clean-out."""

    NONE = "none"
    AGE_SORT = "age-sort"


class SegmentView(Protocol):
    """What a policy needs to know about segments (duck-typed)."""

    def live_blocks(self, seg: int) -> int: ...

    def segment_mtime(self, seg: int) -> float: ...


def rank_greedy(candidates: Sequence[int], view: SegmentView) -> list[int]:
    """Least-utilized segments first — the paper's simple greedy policy."""
    return sorted(candidates, key=view.live_blocks)


def cost_benefit_key(view: SegmentView, now: float, blocks_per_segment: int):
    """The benefit-to-cost ratio as a scoring function (Section 3.5).

    benefit/cost = (1 - u) * age / (1 + u), with age taken from the most
    recent modified time of any block in the segment. Shared by the full
    sort and the incremental top-k path so both compute bit-identical
    floats.
    """

    def ratio(seg: int) -> float:
        u = view.live_blocks(seg) / blocks_per_segment
        age = max(0.0, now - view.segment_mtime(seg))
        return (1.0 - u) * age / (1.0 + u)

    return ratio


def rank_cost_benefit(
    candidates: Sequence[int], view: SegmentView, now: float, blocks_per_segment: int
) -> list[int]:
    """Highest benefit-to-cost ratio first (Section 3.5).

    Cold segments get cleaned at much higher utilizations than hot ones.
    """
    return sorted(
        candidates, key=cost_benefit_key(view, now, blocks_per_segment), reverse=True
    )


def rank(
    policy: SelectionPolicy,
    candidates: Sequence[int],
    view: SegmentView,
    now: float,
    blocks_per_segment: int,
) -> list[int]:
    """Dispatch to the configured selection policy."""
    if policy == SelectionPolicy.GREEDY:
        return rank_greedy(candidates, view)
    return rank_cost_benefit(candidates, view, now, blocks_per_segment)
