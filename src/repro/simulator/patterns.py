"""Access patterns for the cleaning simulator (Section 3.5).

Two pseudo-random patterns from the paper: *uniform* (every file equally
likely) and *hot-and-cold* (a hot group holding ``hot_fraction`` of the
files receives ``hot_access_fraction`` of the writes; 10%/90% in the
paper). Patterns are deterministic given the injected RNG.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod


class AccessPattern(ABC):
    """Chooses which file each simulation step overwrites."""

    @abstractmethod
    def bind(self, num_files: int, rng: random.Random) -> None:
        """Fix the file population and randomness source."""

    @abstractmethod
    def next_file(self) -> int:
        """The file index overwritten by the next step."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Label used in figures."""


class UniformPattern(AccessPattern):
    """Every file has equal likelihood of being selected in each step."""

    def __init__(self) -> None:
        self._num_files = 0
        self._rng: random.Random | None = None

    def bind(self, num_files: int, rng: random.Random) -> None:
        if num_files < 1:
            raise ValueError("need at least one file")
        self._num_files = num_files
        self._rng = rng

    def next_file(self) -> int:
        return self._rng.randrange(self._num_files)

    @property
    def name(self) -> str:
        return "uniform"


class HotColdPattern(AccessPattern):
    """The paper's locality model.

    ``hot_fraction`` of the files (the hot group) receive
    ``hot_access_fraction`` of the accesses; within each group selection
    is uniform. The paper's experiment uses 0.1 and 0.9 ("90% of the
    accesses go to 10% of the files") and notes that performance of the
    greedy policy gets worse as locality increases.
    """

    def __init__(self, hot_fraction: float = 0.1, hot_access_fraction: float = 0.9) -> None:
        if not 0.0 < hot_fraction < 1.0:
            raise ValueError("hot_fraction must be in (0, 1)")
        if not 0.0 < hot_access_fraction < 1.0:
            raise ValueError("hot_access_fraction must be in (0, 1)")
        self.hot_fraction = hot_fraction
        self.hot_access_fraction = hot_access_fraction
        self._num_hot = 0
        self._num_files = 0
        self._rng: random.Random | None = None

    def bind(self, num_files: int, rng: random.Random) -> None:
        if num_files < 2:
            raise ValueError("need at least two files for two groups")
        self._num_files = num_files
        self._num_hot = max(1, round(num_files * self.hot_fraction))
        self._rng = rng

    def next_file(self) -> int:
        rng = self._rng
        if rng.random() < self.hot_access_fraction:
            return rng.randrange(self._num_hot)
        return self._num_hot + rng.randrange(self._num_files - self._num_hot)

    @property
    def name(self) -> str:
        hot_pct = round(self.hot_access_fraction * 100)
        files_pct = round(self.hot_fraction * 100)
        return f"hot-and-cold {hot_pct}/{files_pct}"
