"""Fused lockstep execution of many simulations in one process.

On few-core machines a process pool cannot buy much for a parameter
sweep, and the per-point cost of the vectorized engine is dominated by
fixed per-call overhead: every numpy kernel call costs ~1µs no matter
whether it touches one simulation's 100 segments or sixteen
simulations' 1600. :class:`_Fleet` exploits that by running a whole
sweep's points *in lockstep through shared arrays*:

- Every point's state lives in one fused buffer, namespaced by offset:
  point ``p`` owns global files ``[fb_p, fb_p + F_p)`` and global
  segments ``[p*S, (p+1)*S)``. Each point's :class:`FastSimulator` is
  rebound to **views** of the fused buffers, so all of its scalar and
  per-point vector methods (dry run, pass-at-a-time fallback) keep
  working unchanged and stay bit-identical.
- Each driver round gathers which points can take a plain write batch
  and which have tripped the cleaner, then executes *one* fused batch
  kernel and *one* fused cleaning pipeline (snapshot, rank, commit)
  for the whole cohort. Per-point work that is inherently sequential —
  the cleaner dry run — stays scalar but tiny.
- Victim ranking fuses across points with point-major composite keys:
  greedy sorts ``pid * ((B+1)*S) + (live*S + seg)``; cost-benefit
  lexsorts ``(seg, -ratio, pid)``. Within each point the order — and
  therefore every victim choice — is exactly the solo engine's.

Results are byte-for-byte equal to running each point alone (the test
suite asserts this), because every fused kernel computes the same
values in the same float operation order; only *which call* computes
them is shared.

The fused kernels require congruent geometry (same ``num_segments``
and ``blocks_per_segment``); :func:`run_fleet` groups points
accordingly and falls back to solo execution for singleton groups.

If any point's run raises (e.g. the cleaner runs out of output
segments), the whole fused run raises — matching what a sequential
sweep would ultimately do.
"""

from __future__ import annotations

from repro.simulator.fast import _MAX_BATCH, FastSimulator
from repro.simulator.policies import GroupingPolicy, SelectionPolicy
from repro.simulator.writecost import measured_write_cost

try:  # pragma: no cover - exercised via HAVE_NUMPY in both states
    import numpy as np
except ImportError:  # pragma: no cover
    np = None


class _Run:
    """Per-point driver bookkeeping: the window script and its budget."""

    __slots__ = ("sim", "gen", "remaining", "sink")

    def __init__(self, sim, gen):
        self.sim = sim
        self.gen = gen
        self.remaining = 0
        self.sink: list = []


class _Fleet:
    """A congruent group of simulations advancing in lockstep."""

    def __init__(self, pairs: list) -> None:
        if np is None:  # pragma: no cover
            raise RuntimeError("fused sweeps require numpy (the 'perf' extra)")
        self.sims = sims = [FastSimulator(cfg, pat) for cfg, pat in pairs]
        S = sims[0]._S
        B = sims[0]._B
        if any(s._S != S or s._B != B for s in sims):
            raise ValueError("fleet points must share disk geometry")
        P = len(sims)
        self._S, self._B, self._P = S, B, P
        TOT = P * S
        self._TOT = TOT
        NF = sum(len(s.file_seg) for s in sims)

        # fused state buffers; every simulator's arrays become views
        self.fseg = np.empty(NF, dtype=np.int64)
        self.fslot = np.empty(NF, dtype=np.int64)
        self.fmtime = np.zeros(NF, dtype=np.float64)
        self._lastpos = np.zeros(NF, dtype=np.int64)
        self._gpos = 1
        self.slive = np.zeros(TOT, dtype=np.int64)
        self.smtime = np.zeros(TOT, dtype=np.float64)
        self.sfill = np.zeros(TOT, dtype=np.int64)
        self.slots = np.full(TOT * B, -1, dtype=np.int64)
        self.clean = np.ones(TOT, dtype=bool)
        self.inlog = np.zeros(TOT, dtype=bool)

        shared_cyc = sims[0]._slotcyc
        shared_ar = sims[0]._arange
        shared_slot_ids = sims[0]._slot_ids
        fb = 0
        for pid, sim in enumerate(sims):
            sb = pid * S
            sim._pid = pid
            sim._fb = fb
            sim._sb = sb
            F = len(sim.file_seg)
            for name, fused in (
                ("file_seg", self.fseg),
                ("file_slot", self.fslot),
                ("file_mtime", self.fmtime),
                ("_last_pos", self._lastpos),
            ):
                v = fused[fb : fb + F]
                v[:] = getattr(sim, name)
                setattr(sim, name, v)
            for name, fused in (
                ("seg_live", self.slive),
                ("seg_mtime", self.smtime),
                ("seg_fill", self.sfill),
                ("clean_mask", self.clean),
                ("_inlog", self.inlog),
            ):
                v = fused[sb : sb + S]
                v[:] = getattr(sim, name)
                setattr(sim, name, v)
            v = self.slots[sb * B : (sb + S) * B]
            v[:] = sim.seg_slots
            sim.seg_slots = v
            sim._slotcyc = shared_cyc
            sim._arange = shared_ar
            sim._slot_ids = shared_slot_ids
            fb += F

        # static per-policy candidate masks (selection is per-config)
        self._greedy_mask = np.zeros(TOT, dtype=bool)
        self._cb_mask = np.zeros(TOT, dtype=bool)
        for sim in sims:
            mask = (
                self._greedy_mask
                if sim.config.selection is SelectionPolicy.GREEDY
                else self._cb_mask
            )
            mask[sim._sb : sim._sb + S] = True
        self.measmask = np.zeros(TOT, dtype=bool)
        self._nowvec = np.zeros(P, dtype=np.float64)
        self._slot_ids = shared_slot_ids
        # greedy composite stride: one point's keys live in [0, (B+1)*S)
        self._pblk = (B + 1) * S

        # scratch
        self._actbuf = np.empty(TOT, dtype=bool)
        self._rankbuf = np.empty(TOT, dtype=bool)
        self._tmpbuf = np.empty(TOT, dtype=bool)
        self._far = np.arange(4096, dtype=np.float64)
        self._bigar = np.arange(_MAX_BATCH, dtype=np.int64)

    # ------------------------------------------------------------------
    # clocks and scratch growth

    def _ensure_clock(self, limit: int) -> None:
        if limit > len(self._far):
            self._far = np.arange(max(limit, 2 * len(self._far)), dtype=np.float64)

    def _ensure_big(self, n: int) -> None:
        if n > len(self._bigar):
            self._bigar = np.arange(max(n, 2 * len(self._bigar)), dtype=np.int64)

    # ------------------------------------------------------------------
    # per-point window script (mirrors FastSimulator.run exactly)

    def _script(self, sim, sink: list):
        cfg = sim.config
        warmup = int(cfg.warmup_factor * cfg.total_blocks)
        window = max(1, int(cfg.measure_factor * cfg.total_blocks))
        if warmup:
            yield warmup
        sim.measuring = True
        self.measmask[sim._sb : sim._sb + self._S] = True
        prev_cost = None
        stable = 0
        for _ in range(cfg.max_windows):
            sim._reset_window()
            yield window
            cost = measured_write_cost(sim.m_new, sim.m_moved, sim.m_read)
            if prev_cost is not None and prev_cost > 0:
                if abs(cost - prev_cost) / prev_cost <= cfg.stable_tol:
                    stable += 1
                else:
                    stable = 0
            prev_cost = cost
            if stable >= cfg.stable_windows:
                break
        sink.append(prev_cost)

    # ------------------------------------------------------------------
    # driver

    def run(self) -> list:
        results: list = [None] * self._P
        pending = []
        for sim in self.sims:
            r = _Run(sim, None)
            r.gen = self._script(sim, r.sink)
            pending.append(r)
        B = self._B
        while pending:
            nxt = []
            batch_sims: list = []
            batch_ks: list = []
            clean_sims: list = []
            for r in pending:
                sim = r.sim
                if r.remaining == 0:
                    try:
                        n = next(r.gen)
                    except StopIteration:
                        results[sim._pid] = sim._result(
                            r.sink[0] if r.sink else None
                        )
                        continue
                    r.remaining = n
                    sim._samples = sim._sampler.take(n)
                    sim._spos = 0
                    self._ensure_clock(sim.step_no + n + 2)
                nxt.append(r)
                capacity = (B - sim.cur_fill) + B * len(sim.clean_segs)
                if capacity > 0:
                    k = capacity if capacity < r.remaining else r.remaining
                    if k > _MAX_BATCH:
                        k = _MAX_BATCH
                    r.remaining -= k
                    batch_sims.append(sim)
                    batch_ks.append(k)
                else:
                    r.remaining -= 1
                    clean_sims.append(sim)
            pending = nxt
            if batch_sims:
                self._fused_batch(batch_sims, batch_ks)
            if clean_sims:
                self._fused_clean(clean_sims)
        return results

    # ------------------------------------------------------------------
    # fused write batches

    def _fused_batch(self, sims: list, ks: list) -> None:
        """One `_batch_steps` for the whole cohort, namespaced.

        Semantics per point are exactly :meth:`FastSimulator._batch_steps`;
        only the kernel calls are shared. Values written into the file
        and slot tables stay *local* (the per-point views read them);
        indices are global.
        """
        B = self._B
        total = sum(ks)
        self._ensure_big(total)
        self._ensure_clock(total)
        pos_loc = np.empty(total, dtype=np.int64)
        fs_parts = []
        slot_off: list = []
        mt_off: list = []
        run_seg: list = []
        run_fill: list = []
        run_mt: list = []
        fb_l: list = []
        sb_l: list = []
        pop_g: list = []
        o = 0
        for sim, k in zip(sims, ks):
            sp = sim._spos
            fs_parts.append(sim._samples[sp : sp + k])
            sim._spos = sp + k
            base = sim.step_no
            sb = sim._sb
            clean_pop = sim.clean_segs.pop
            if sim.cur_fill >= B:
                sim.cur_seg = seg = clean_pop()
                pop_g.append(sb + seg)
                sim.cur_fill = 0
            start = sim.cur_fill
            # slot and mtime sequences are pure arithmetic in the batch
            # index: slot = (start + j) % B, mtime = base + 1 + j — so
            # only their per-point offsets are collected here and both
            # arrays are built with two fused kernels below
            slot_off.append(start - o)
            mt_off.append(float(base + 1 - o))
            seg = sim.cur_seg
            lo, hi = 0, min(k, B - start)
            pos_loc[o + lo : o + hi] = seg
            run_seg.append(sb + seg)
            run_fill.append(start + hi)
            run_mt.append(float(base + hi))
            while hi < k:
                seg = clean_pop()
                pop_g.append(sb + seg)
                lo, hi = hi, min(k, hi + B)
                pos_loc[o + lo : o + hi] = seg
                run_seg.append(sb + seg)
                run_fill.append(hi - lo)
                run_mt.append(float(base + hi))
            sim.step_no = base + k
            sim.cur_seg = seg
            sim.cur_fill = run_fill[-1]
            sim.new_blocks += k
            if sim.measuring:
                sim.m_new += k
            fb_l.append(sim._fb)
            sb_l.append(sb)
            o += k
        if pop_g:
            pa = np.array(pop_g, dtype=np.int64)
            self.clean[pa] = False
            self.inlog[pa] = True

        ks_arr = np.array(ks, dtype=np.int64)
        fb_e = np.array(fb_l, dtype=np.int64).repeat(ks_arr)
        sb_e = np.array(sb_l, dtype=np.int64).repeat(ks_arr)
        ar = self._bigar[:total]
        slot = np.array(slot_off, dtype=np.int64).repeat(ks_arr)
        slot += ar
        slot %= B
        mt = np.array(mt_off).repeat(ks_arr)
        mt += self._far[:total]
        fs = np.concatenate(fs_parts) if len(fs_parts) > 1 else fs_parts[0]
        fs_g = fs + fb_e
        old_g = self.fseg[fs_g]
        old_g += sb_e
        pos_g = pos_loc + sb_e

        inc = np.bincount(pos_g, minlength=self._TOT)
        dec = np.bincount(old_g, minlength=self._TOT)
        np.subtract(inc, dec, out=inc)
        self.slive += inc

        t = self._gpos + ar
        self._lastpos[fs_g] = t
        is_last = self._lastpos[fs_g] == t
        self._gpos += total
        ndup = total - int(is_last.sum())
        if ndup:
            live = self.slive
            for j in np.flatnonzero(~is_last).tolist():
                live[old_g[j]] += 1
                live[pos_g[j]] -= 1

        self.fseg[fs_g] = pos_loc
        self.fslot[fs_g] = slot
        self.fmtime[fs_g] = mt
        flat = pos_g * B
        flat += slot
        self.slots[flat] = fs
        rs = np.array(run_seg, dtype=np.int64)
        self.sfill[rs] = np.array(run_fill, dtype=np.int64)
        self.smtime[rs] = np.array(run_mt)

    # ------------------------------------------------------------------
    # fused cleaning

    def _fused_clean(self, sims: list) -> None:
        """One boundary step + cleaner invocation for the whole cohort.

        Mirrors :meth:`FastSimulator._boundary_step` +
        :meth:`FastSimulator._run_cleaner`: prologue kill, utilization
        snapshot, victim ranking and commit fuse across points; the dry
        run (and the rare pass-at-a-time fallback) stay per point.
        """
        S, B = self._S, self._B
        # prologue: each point's overwrite kills its file mid-step
        fs_loc: list = []
        sb_l: list = []
        pid_l: list = []
        fs_glob: list = []
        step_l: list = []
        nows: list = []
        for sim in sims:
            sim.step_no = now_i = sim.step_no + 1
            f = int(sim._samples[sim._spos])
            sim._spos += 1
            fs_loc.append(f)
            fs_glob.append(f + sim._fb)
            sb_l.append(sim._sb)
            pid_l.append(sim._pid)
            step_l.append(now_i)
            nows.append(float(now_i))
        self._gpos += len(sims)
        ptab = np.array((fs_glob, sb_l, pid_l, step_l), dtype=np.int64)
        fs_g = ptab[0]
        sb_arr = ptab[1]
        now_arr = ptab[3].astype(np.float64)
        self._nowvec[ptab[2]] = now_arr
        old_g = self.fseg.take(fs_g)
        old_g += sb_arr
        self.slive[old_g] -= 1
        self.fseg[fs_g] = -1  # dead: the cleaners must not carry them
        self.fmtime[fs_g] = now_arr

        # cohort segments in the log minus active append heads
        act = self._actbuf
        if len(sims) == self._P:
            np.copyto(act, self.inlog)
        else:
            act[:] = False
            for sim in sims:
                act[sim._sb : sim._sb + S] = True
            act &= self.inlog
        for sim in sims:
            sb = sim._sb
            act[sb + sim.cur_seg] = False
            if sim.out_seg >= 0:
                act[sb + sim.out_seg] = False

        # fused utilization snapshot for the measuring points
        if any(sim.measuring for sim in sims):
            tmp = self._tmpbuf
            np.logical_and(act, self.measmask, out=tmp)
            snap = np.flatnonzero(tmp)
            utils = self.slive[snap] / B
            counts = np.bincount(snap // S, minlength=self._P).tolist()
            off = 0
            for sim in sims:
                c = counts[sim._pid]
                if c:
                    sim._snap_parts.append(utils[off : off + c])
                    off += c

        # fused victim ranking, one composite sort per selection policy
        rank_out: dict = {}
        rb = self._rankbuf
        np.less(self.slive, B, out=rb)
        rb &= act
        gsims = [s for s in sims if s.config.selection is SelectionPolicy.GREEDY]
        csims = [s for s in sims if s.config.selection is not SelectionPolicy.GREEDY]
        if gsims:
            self._fused_rank_greedy(gsims, rb, rank_out)
        if csims:
            self._fused_rank_cb(csims, rb, rank_out)

        # per-point dry runs (inherently sequential, but tiny)
        commit_sims: list = []
        commit_plans: list = []
        for sim, now in zip(sims, nows):
            ranked, keys = rank_out[sim._pid]
            plan = sim._dry_run(ranked, keys, now)
            if plan is None:
                # rare: the merged initial output head was itself picked
                sim._run_cleaner_passwise(now)
            else:
                commit_sims.append(sim)
                commit_plans.append(plan)
        if commit_sims:
            self._fused_commit(commit_sims, commit_plans)

        # epilogue: each point appends its file to a fresh head segment
        pos_loc: list = []
        for sim in sims:
            if not sim.clean_segs:
                raise RuntimeError("cleaner could not produce a clean segment")
            seg = sim.clean_segs.pop()
            sim.cur_seg = seg
            sim.cur_fill = 1
            sim.new_blocks += 1
            if sim.measuring:
                sim.m_new += 1
            pos_loc.append(seg)
        etab = np.array((pos_loc, fs_loc), dtype=np.int64)
        pos_g = etab[0] + sb_arr
        self.clean[pos_g] = False
        self.inlog[pos_g] = True
        self.fseg[fs_g] = etab[0]
        self.fslot[fs_g] = 0
        self.slots[pos_g * B] = etab[1]
        self.slive[pos_g] += 1
        self.sfill[pos_g] = 1
        # a freshly popped head is clean, so its mtime was zeroed: assign
        self.smtime[pos_g] = now_arr

    def _fused_rank_greedy(self, sims: list, rb, rank_out: dict) -> None:
        S = self._S
        tmp = self._tmpbuf
        np.logical_and(rb, self._greedy_mask, out=tmp)
        cand = np.flatnonzero(tmp)
        pid, loc = np.divmod(cand, S)
        keyloc = self.slive.take(cand)
        keyloc *= S
        keyloc += loc
        gkey = pid * self._pblk
        gkey += keyloc
        order = gkey.argsort(kind="stable")
        loc_s = loc[order]
        key_s = keyloc[order]
        counts = np.bincount(pid, minlength=self._P).tolist()
        off = 0
        for sim in sims:
            c = counts[sim._pid]
            rank_out[sim._pid] = (loc_s[off : off + c], key_s[off : off + c])
            off += c

    def _fused_rank_cb(self, sims: list, rb, rank_out: dict) -> None:
        S, B = self._S, self._B
        tmp = self._tmpbuf
        np.logical_and(rb, self._cb_mask, out=tmp)
        cand = np.flatnonzero(tmp)
        pid, loc = np.divmod(cand, S)
        # the reference's exact float operation order, per element
        u = self.slive.take(cand) / B
        age = self._nowvec.take(pid)
        age -= self.smtime.take(cand)
        np.maximum(age, 0.0, out=age)
        ratio = (1.0 - u) * age / (1.0 + u)
        np.negative(ratio, out=ratio)
        order = np.lexsort((loc, ratio, pid))
        loc_s = loc[order]
        key_s = ratio[order]
        counts = np.bincount(pid, minlength=self._P).tolist()
        off = 0
        for sim in sims:
            c = counts[sim._pid]
            rank_out[sim._pid] = (loc_s[off : off + c], key_s[off : off + c])
            off += c

    def _fused_commit(self, sims: list, plans: list) -> None:
        """Apply every point's dry-run plan in shared kernels.

        Per-point values are collected as one scalar per *point* and
        expanded to per-victim / per-block arrays with ``repeat``; the
        only per-victim python work left is extending the plan lists.
        """
        B = self._B
        csims: list = []
        nv_l: list = []
        sbv_l: list = []
        fbv_l: list = []
        pid_l: list = []
        bound_l: list = []
        flag_l: list = []
        maxpass = 0
        maxbound = 0.0
        vloc_parts: list = []
        vcnt_parts: list = []
        vpass_parts: list = []
        rloc_l: list = []
        rsb_l: list = []
        rstart_l: list = []
        rcnt_l: list = []
        pop_g: list = []
        for sim, plan in zip(sims, plans):
            (victims_all, victim_live, victim_pass, runs, popped,
             clean_list, out_seg, out_fill) = plan
            nv = len(victims_all)
            if nv == 0:
                continue
            csims.append(sim)
            nv_l.append(nv)
            sb = sim._sb
            sbv_l.append(sb)
            fbv_l.append(sim._fb)
            pid_l.append(sim._pid)
            vloc_parts.extend(victims_all)
            vcnt_parts.extend(victim_live)
            vpass_parts.extend(victim_pass)
            if sim.config.grouping == GroupingPolicy.AGE_SORT:
                bound = float(2 ** (int(sim.step_no).bit_length() + 1))
                flag = 1.0
                if victim_pass[-1] > maxpass:  # passes are nondecreasing
                    maxpass = victim_pass[-1]
                if bound > maxbound:
                    maxbound = bound
            else:
                bound = 0.0
                flag = 0.0
            bound_l.append(bound)
            flag_l.append(flag)
            for s, sstart, c in runs:
                rloc_l.append(s)
                rstart_l.append(sstart)
                rcnt_l.append(c)
            rsb_l.extend([sb] * len(runs))
            for p in popped:
                pop_g.append(p + sb)
            nz = nv - victim_live.count(0)
            tot_moved = sum(victim_live)
            sim.read_blocks += B * nz
            sim.moved_blocks += tot_moved
            if sim.measuring:
                sim.m_read += B * nz
                sim.m_moved += tot_moved
            sim.segments_cleaned += nv
            sim.clean_segs = clean_list
            sim.out_seg = out_seg
            sim.out_fill = out_fill
        if not csims:
            return

        # one stacked build per shape class instead of one np.array
        # call per collected list
        psim = np.array((nv_l, sbv_l, fbv_l, pid_l), dtype=np.int64)
        nvs = psim[0]
        vtab = np.array((vloc_parts, vcnt_parts, vpass_parts), dtype=np.int64)
        vloc = vtab[0]
        vcnt = vtab[1]
        vs = vloc + psim[1].repeat(nvs)
        u_all = vcnt / B
        off = 0
        for sim, nv in zip(csims, nv_l):
            sim._cu_parts.append(u_all[off : off + nv])
            off += nv

        # gather every victim's live files at once; rows are global
        # segments, stored slot values are local file ids
        slot2 = self.slots[(vs * B)[:, None] + self._slot_ids]
        fb_v = psim[2].repeat(nvs)
        slot2g = slot2 + fb_v[:, None]
        alive = self.fseg.take(slot2g) == vloc[:, None]
        alive &= self.fslot.take(slot2g) == self._slot_ids
        alive &= slot2 >= 0  # empty slots must not alias other points
        moved_g = slot2g[alive]
        mtimes = self.fmtime.take(moved_g)
        fb_e = fb_v.repeat(vcnt)

        total = len(moved_g)
        if total and maxbound:
            # one composite stable sort orders all points' move streams
            # at once: key = pid*PB + pass*bound + mtime*flag. Every
            # addend is an integer below 2**53 and PB bounds any
            # point's subkey, so the float64 sum is exact and orders
            # (point, pass, mtime) lexicographically; the zero flag and
            # bound freeze non-age-sorting points in gather order. With
            # no age-sorting point in the cohort the gather order is
            # already final and the sort is skipped.
            PB = maxbound * float(2 ** (maxpass + 1).bit_length())
            bf = np.array((bound_l, flag_l))
            key = vtab[2] * bf[0].repeat(nvs)
            key += (psim[3] * PB).repeat(nvs)
            key = key.repeat(vcnt)
            key += mtimes * bf[1].repeat(nvs).repeat(vcnt)
            order = key.argsort(kind="stable")
            moved_g = moved_g[order]
            mtimes = mtimes[order]
            fb_e = fb_e[order]

        self.slive[vs] = 0
        self.sfill[vs] = 0
        self.smtime[vs] = 0.0
        self.clean[vs] = True
        self.inlog[vs] = False
        if pop_g:
            pa = np.array(pop_g, dtype=np.int64)
            self.clean[pa] = False
            self.inlog[pa] = True

        if total:
            self._ensure_big(total)
            rtab = np.array((rloc_l, rsb_l, rstart_l, rcnt_l), dtype=np.int64)
            rloc = rtab[0]
            rglob = rloc + rtab[1]
            rstart = rtab[2]
            rcnt = rtab[3]
            ends = np.cumsum(rcnt)
            begins = ends - rcnt
            dest_loc = rloc.repeat(rcnt)
            dest_slot = self._bigar[:total] - (begins - rstart).repeat(rcnt)
            self.fseg[moved_g] = dest_loc
            self.fslot[moved_g] = dest_slot
            dest_g = rglob.repeat(rcnt)
            flat = dest_g * B
            flat += dest_slot
            self.slots[flat] = moved_g - fb_e
            np.add.at(self.slive, rglob, rcnt)
            self.sfill[rglob] = rstart + rcnt  # chronological: last wins
            tops = np.maximum.reduceat(mtimes, begins)
            np.maximum.at(self.smtime, rglob, tops)


def run_fleet(pairs: list) -> list:
    """Run ``(config, pattern)`` points fused in one process.

    Returns one :class:`SimResult` per input, each byte-for-byte equal
    to ``FastSimulator(config, pattern).run()``. Points are grouped by
    disk geometry (the fused kernels require congruent ``num_segments``
    × ``blocks_per_segment``); singleton groups run solo.
    """
    if np is None:  # pragma: no cover
        raise RuntimeError("fused sweeps require numpy (the 'perf' extra)")
    if not pairs:
        return []
    groups: dict = {}
    for i, (cfg, _pat) in enumerate(pairs):
        groups.setdefault(
            (cfg.num_segments, cfg.blocks_per_segment), []
        ).append(i)
    results: list = [None] * len(pairs)
    for idxs in groups.values():
        if len(idxs) == 1:
            i = idxs[0]
            cfg, pat = pairs[i]
            results[i] = FastSimulator(cfg, pat).run()
        else:
            fleet = _Fleet([pairs[i] for i in idxs])
            for i, res in zip(idxs, fleet.run()):
                results[i] = res
    return results
