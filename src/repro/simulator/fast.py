"""The vectorized simulation engine (bit-identical to the reference).

:class:`FastSimulator` re-implements :class:`repro.simulator.model.Simulator`
with all per-step state in flat numpy arrays and the write path executed
in batches. It is *not* an approximation: for any config and pattern it
produces the same victims, the same counters, the same ``write_cost``,
the same ``cleaned_utilizations`` — byte-for-byte equal ``SimResult``s —
which the test suite asserts across the full selection×grouping×pattern
matrix and under hypothesis-generated random configs.

Why it is fast:

- **Batched access draws** — :mod:`repro.simulator.fastrand` replays the
  reference RNG's exact word stream with numpy, so a whole window of
  file choices materializes as one int64 array.
- **Batched write steps** — between cleaner invocations the log has a
  known free capacity, so that many steps can be applied at once: one
  scatter finds each file's last write in the batch, two ``bincount``
  calls produce all live-count deltas, and segment fills/mtimes follow
  analytically from the append positions. The only scalar step left is
  the boundary step that trips the cleaner.
- **Array victim selection** — greedy ranks by the composite key
  ``live * S + seg`` (exactly the reference's ``(live, seg)`` order);
  cost-benefit evaluates the ratio vectorized with the reference's
  operation order and breaks ties by segment with ``np.lexsort``.
- **Slot-table membership** — per-segment live files are recovered from
  an ``(S, B)`` slot table instead of per-segment dicts: slot ``i`` of
  segment ``s`` holds file ``f`` and is live iff ``file_seg[f] == s``
  and ``file_slot[f] == i``. Enumerating a victim's live files is one
  gather + compare, and the resulting order is log order — the same
  order the reference's insertion-ordered dicts iterate in.

Use :func:`make_simulator` to pick an engine; without numpy installed it
silently falls back to the reference implementation.
"""

from __future__ import annotations

from repro.simulator.model import SimConfig, Simulator, SimResult
from repro.simulator.patterns import AccessPattern, UniformPattern
from repro.simulator.policies import GroupingPolicy, SelectionPolicy
from repro.simulator.writecost import measured_write_cost

try:  # pragma: no cover - exercised via HAVE_NUMPY in both states
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from repro.simulator.fastrand import HAVE_NUMPY, make_sampler

#: Engines accepted by :func:`make_simulator`.
ENGINES = ("auto", "fast", "reference")

# largest single vectorized batch; bounds scratch-array sizes
_MAX_BATCH = 1 << 16

if np is not None:
    # the batched write path scatters whole batches unfiltered and relies
    # on fancy assignment being last-write-wins for duplicate indices
    _probe = np.zeros(2, dtype=np.int64)
    _probe[np.array([0, 0])] = np.array([1, 2])
    assert int(_probe[0]) == 2, "numpy fancy assignment is not last-write-wins"
    del _probe


class FastSimulator:
    """One simulated log-structured disk under churn — vectorized.

    State mirrors the reference :class:`Simulator` field-for-field (the
    invariant tests run against both), with lists replaced by ndarrays
    and per-segment membership dicts replaced by the slot table.
    """

    def __init__(self, config: SimConfig, pattern: AccessPattern | None = None) -> None:
        if np is None:  # pragma: no cover
            raise RuntimeError(
                "FastSimulator requires numpy; install the 'perf' extra "
                "or use the reference Simulator"
            )
        self.config = config
        self.pattern = pattern if pattern is not None else UniformPattern()
        self._sampler = make_sampler(self.pattern, config.num_files, config.seed)

        S, B, F = config.num_segments, config.blocks_per_segment, config.num_files
        self._S, self._B = S, B

        self.file_seg = np.empty(F, dtype=np.int64)
        self.file_slot = np.empty(F, dtype=np.int64)
        self.file_mtime = np.zeros(F, dtype=np.float64)
        self.seg_live = np.zeros(S, dtype=np.int64)
        self.seg_mtime = np.zeros(S, dtype=np.float64)
        self.seg_fill = np.zeros(S, dtype=np.int64)
        self.seg_slots = np.full(S * B, -1, dtype=np.int64)
        self.clean_mask = np.ones(S, dtype=bool)
        self.step_no = 0

        # counters (identical meaning to the reference)
        self.new_blocks = 0
        self.moved_blocks = 0
        self.read_blocks = 0
        self.segments_cleaned = 0
        self.measuring = False
        self.m_new = 0
        self.m_moved = 0
        self.m_read = 0
        # cleaned-segment utilizations and utilization-histogram samples,
        # kept as ndarray parts and only materialized to float lists
        # once, when the result is built
        self._cu_parts: list = []
        self._snap_parts: list = []

        # scratch
        self._arange = np.arange(_MAX_BATCH, dtype=np.int64)
        self._seg_ids = np.arange(S, dtype=np.int64)
        self._slot_ids = np.arange(B, dtype=np.int64)
        self._last_pos = np.zeros(F, dtype=np.int64)
        self._gpos = 1  # global write position; 1-based so zeros never match
        self._eligible = np.empty(S, dtype=bool)
        self._inlog = np.zeros(S, dtype=bool)  # maintained as ~clean_mask
        # slot of append position j is j % B: slices of this table give a
        # whole batch's slots without any arithmetic
        self._slotcyc = np.arange(_MAX_BATCH + B, dtype=np.int64) % B
        # float step clock: _far[j] == float(j); slices give a whole
        # batch's mtimes without add/astype round trips (grown on demand)
        self._far = np.arange(2 * B + 2, dtype=np.float64)
        self._samples: "np.ndarray | None" = None
        self._spos = 0

        # initial layout: every file written once, in file order — the
        # reference appends files 0..F-1 into segments popped ascending
        # (0, 1, ...), so file f lands at segment f // B, slot f % B
        last_seg = (F - 1) // B
        ids = np.arange(F, dtype=np.int64)
        self.file_seg[:] = ids // B
        self.file_slot[:] = ids % B
        self.seg_slots[:F] = ids
        self.seg_live[:last_seg] = B
        self.seg_live[last_seg] = F - last_seg * B
        self.seg_fill[: last_seg + 1] = self.seg_live[: last_seg + 1]
        self.clean_mask[: last_seg + 1] = False
        self._inlog[: last_seg + 1] = True
        self.clean_segs = list(range(S - 1, last_seg, -1))  # stack, same order
        self.cur_seg = last_seg
        self.cur_fill = F - last_seg * B
        self.out_seg = -1
        self.out_fill = 0
        self.new_blocks = F

    # ------------------------------------------------------------------
    # write path

    def _advance(self, steps: int) -> None:
        """Execute ``steps`` churn steps, batching between cleanings."""
        self._samples = self._sampler.take(steps)
        self._spos = 0
        B = self._B
        limit = self.step_no + steps + 2
        if limit > len(self._far):
            self._far = np.arange(max(limit, 2 * len(self._far)), dtype=np.float64)
        remaining = steps
        while remaining:
            capacity = (B - self.cur_fill) + B * len(self.clean_segs)
            if capacity <= 0:
                # the next append must trip the cleaner: replicate the
                # reference's exact mid-step cleaning semantics scalar
                self._boundary_step()
                remaining -= 1
                continue
            k = min(capacity, remaining, _MAX_BATCH)
            self._batch_steps(k)
            remaining -= k
        self._samples = None

    def _batch_steps(self, k: int) -> None:
        """Apply ``k`` overwrite steps known not to trigger the cleaner.

        Net effect of the batch (what the cleaner could observe at the
        next boundary): each touched file lives at its *last* write
        position; every pre-batch location loses one live block; the
        appended segments' fills and mtimes follow from the positions.

        All per-file scatters run unfiltered over the whole batch: numpy
        fancy assignment is last-write-wins on duplicate indices (checked
        at import), which is exactly the log's semantics. Only the
        live-count deltas need the duplicates distinguished, and those
        are fixed up scalar — a batch rarely holds more than a couple.
        """
        S, B = self._S, self._B
        sp = self._spos
        fs = self._samples[sp : sp + k]
        self._spos = sp + k
        base = self.step_no

        # normalize: a full current segment rolls over at the next
        # append; popping it now is unobservable inside the batch
        if self.cur_fill >= B:
            self.cur_seg = self._pop_clean()
            self.cur_fill = 0
        start = self.cur_fill

        # destination runs: contiguous slices of the batch per segment
        pos_seg = np.empty(k, dtype=np.int64)
        seg = self.cur_seg
        lo, hi = 0, min(k, B - start)
        pos_seg[lo:hi] = seg
        fill_runs = [(seg, start, lo, hi)]
        while hi < k:
            seg = self._pop_clean()
            lo, hi = hi, min(k, hi + B)
            pos_seg[lo:hi] = seg
            fill_runs.append((seg, 0, lo, hi))

        # live-count deltas: +1 at every write position, -1 at every
        # written file's current location; for files written twice the
        # intermediate positions cancel in the scalar fixup below
        old = self.file_seg[fs]
        inc = np.bincount(pos_seg, minlength=S)
        dec = np.bincount(old, minlength=S)
        np.subtract(inc, dec, out=inc)
        self.seg_live += inc

        ar = self._arange[:k]
        gp = self._gpos
        t = gp + ar
        self._last_pos[fs] = t
        is_last = self._last_pos[fs] == t
        self._gpos = gp + k
        ndup = k - int(is_last.sum())
        if ndup:
            live = self.seg_live
            for j in np.flatnonzero(~is_last).tolist():
                # write j was superseded within the batch: its file's
                # pre-batch block never died here and position j's block
                # died immediately
                live[old[j]] += 1
                live[pos_seg[j]] -= 1

        self.file_seg[fs] = pos_seg
        self.file_slot[fs] = self._slotcyc[start : start + k]
        self.file_mtime[fs] = self._far[base + 1 : base + 1 + k]

        # slot table: every position is appended (duplicates leave dead
        # slots behind, exactly like the log), contiguously per segment
        slots = self.seg_slots
        seg_fill = self.seg_fill
        seg_mtime = self.seg_mtime
        for seg, sstart, lo, hi in fill_runs:
            b = seg * B + sstart
            slots[b : b + hi - lo] = fs[lo:hi]
            seg_fill[seg] = sstart + hi - lo
            # last append into seg happened at step base + hi
            seg_mtime[seg] = float(base + hi)

        self.step_no = base + k
        last_seg, last_start, last_lo, last_hi = fill_runs[-1]
        self.cur_seg = last_seg
        self.cur_fill = last_start + last_hi - last_lo
        self.new_blocks += k
        if self.measuring:
            self.m_new += k

    def _boundary_step(self) -> None:
        """One scalar step whose append runs the cleaner mid-step.

        Field updates happen in the reference's exact order: bump the
        clock, evict the file from its old segment, stamp its mtime, and
        only then append — so the cleaner (invoked from the append) sees
        the old current segment still full and the overwritten file
        already dead.
        """
        self.step_no += 1
        f = int(self._samples[self._spos])
        self._spos += 1
        self._gpos += 1
        old = int(self.file_seg[f])
        self.seg_live[old] -= 1
        self.file_seg[f] = -1  # dead: the cleaner must not carry it
        now = float(self.step_no)
        self.file_mtime[f] = now

        B = self._B
        if self.cur_fill >= B:
            if not self.clean_segs:
                self._run_cleaner()
            if not self.clean_segs:
                raise RuntimeError("cleaner could not produce a clean segment")
            self.cur_seg = self._pop_clean()
            self.cur_fill = 0
        seg = self.cur_seg
        slot = self.cur_fill
        self.file_seg[f] = seg
        self.file_slot[f] = slot
        self.seg_slots[seg * B + slot] = f
        self.seg_live[seg] += 1
        self.seg_fill[seg] = slot + 1
        if now > self.seg_mtime[seg]:
            self.seg_mtime[seg] = now
        self.cur_fill = slot + 1
        self.new_blocks += 1
        if self.measuring:
            self.m_new += 1

    def _pop_clean(self) -> int:
        seg = self.clean_segs.pop()
        self.clean_mask[seg] = False
        self._inlog[seg] = True
        return seg

    # ------------------------------------------------------------------
    # cleaning

    def _eligible_mask(self) -> "np.ndarray":
        """Candidate mask: in the log and not an active append head."""
        buf = self._eligible
        buf[:] = self._inlog
        buf[self.cur_seg] = False
        if self.out_seg >= 0:
            buf[self.out_seg] = False
        return buf

    def _rank_victims(self, now: float) -> tuple["np.ndarray", "np.ndarray"]:
        """All eligible victims, best first, in the reference's order.

        Greedy: ascending ``(live, seg)`` — one composite int key.
        Cost-benefit: descending ratio, ties by ascending segment — the
        ratio is computed with the reference's operation order so the
        floats (and therefore the sort) are bit-identical.

        Returns ``(ranked, keys)`` ndarrays with ``keys`` ascending and
        aligned to ``ranked``, so a late arrival can be merged by
        ``searchsorted``. Arrays (not lists): consumers slice out the
        few victims they actually take, avoiding a full materialization
        per invocation.
        """
        S, B = self._S, self._B
        live = self.seg_live
        buf = self._eligible
        np.less(live, B, out=buf)
        buf &= self._inlog
        buf[self.cur_seg] = False
        if self.out_seg >= 0:
            buf[self.out_seg] = False
        cand = np.flatnonzero(buf)
        if cand.size == 0:
            return cand, cand
        if self.config.selection is SelectionPolicy.GREEDY:
            key = live[cand]
            key *= S
            key += cand
            order = key.argsort(kind="stable")
            return cand[order], key[order]
        u = live[cand] / B
        age = now - self.seg_mtime[cand]
        np.maximum(age, 0.0, out=age)
        ratio = (1.0 - u) * age / (1.0 + u)
        np.negative(ratio, out=ratio)
        order = np.lexsort((cand, ratio))
        return cand[order], ratio[order]

    def _victim_key(self, seg: int, now: float):
        """The sort key ``_rank_victims`` would assign ``seg``."""
        if self.config.selection is SelectionPolicy.GREEDY:
            return int(self.seg_live[seg]) * self._S + seg
        u = self.seg_live[seg] / self._B
        age = max(0.0, now - self.seg_mtime[seg])
        return -((1.0 - u) * age / (1.0 + u))

    def _gather_live_files(self, victims: list[int]) -> "np.ndarray":
        """The victims' live files, concatenated.

        Files come out grouped by victim in the given order, within each
        victim in slot (log) order — the order the reference's
        insertion-ordered membership dicts iterate in (the per-victim
        counts are the victims' live counts). Valid only while no victim
        has received writes since its blocks became live.
        """
        B = self._B
        vs = np.array(victims, dtype=np.int64)
        vcol = vs[:, None]
        slot2 = self.seg_slots[vcol * B + self._slot_ids]
        alive = self.file_seg[slot2] == vcol
        alive &= self.file_slot[slot2] == self._slot_ids
        return slot2[alive]

    def _rolled_out_mtime(
        self,
        seg: int,
        count: int,
        victims_all: list[int],
        victim_pass: list[int],
    ) -> float:
        """``seg_mtime[seg]`` after the first ``count`` moves land in it.

        Used when the initial output head rolls over during a dry-run
        invocation: its cost-benefit age must reflect the blocks this
        invocation moved into it, which are exactly the first ``count``
        elements of the (per-pass age-sorted) move stream.
        """
        mt = float(self.seg_mtime[seg])
        age_sort = self.config.grouping == GroupingPolicy.AGE_SORT
        i = 0
        while count > 0 and i < len(victims_all):
            # one pass's victims at a time: grouping sorts per pass
            j = i
            while j < len(victims_all) and victim_pass[j] == victim_pass[i]:
                j += 1
            files = self._gather_live_files(victims_all[i:j])
            mts = self.file_mtime[files]
            c = min(count, len(mts))
            if c > 0:
                if age_sort:
                    mts = np.sort(mts)
                    top = float(mts[c - 1])
                else:
                    top = float(mts[:c].max())
                if top > mt:
                    mt = top
            count -= c
            i = j
        return mt

    def _run_cleaner(self) -> None:
        """Clean until the threshold of clean segments is available.

        The victim ranking is computed once per invocation: between
        passes the only segments whose score or eligibility changes are
        freshly cleaned victims and the cleaner's output segments, and
        almost none of those can re-enter the candidate set mid-cleaning
        (victims are clean; output segments are excluded while active
        and fully live once rolled over). The one exception is the
        *initial* output segment — it may hold blocks killed by ordinary
        overwrites before this invocation, so once it rolls over full it
        becomes a real candidate. Its score is frozen from that moment
        (nothing further is written to it), so it is merged into the
        standing ranking at its sorted position.

        Because the ranking is static, the whole invocation can be *dry
        run* first with plain integer arithmetic — victim sequence,
        output-segment pops, per-pass move counts — and the array state
        committed afterwards in one batched update. Only when the dry
        run discovers that the merged initial output segment would
        itself be picked as a victim (its live files then depend on
        moves made earlier in the same invocation) does it defer to the
        pass-at-a-time path.
        """
        now = float(self.step_no)
        if self.measuring:
            self._snapshot_utils()
        ranked, keys = self._rank_victims(now)
        plan = self._dry_run(ranked, keys, now)
        if plan is None:
            # rare: the rolled-over initial output head was selected as a
            # victim this same invocation — replay pass-at-a-time
            self._run_cleaner_passwise(now)
            return
        self._commit_cleaning(*plan)

    def _snapshot_utils(self) -> None:
        """Record the per-segment utilization histogram sample."""
        cands = np.flatnonzero(self._eligible_mask())
        self._snap_parts.append(self.seg_live[cands] / self._B)

    def _dry_run(self, ranked: "np.ndarray", keys: "np.ndarray", now: float):
        """Simulate one cleaner invocation with scalar arithmetic only.

        ``ranked``/``keys`` are the arrays from :meth:`_rank_victims`
        (merging the initial output head rebinds local copies, the
        caller's arrays are never mutated). Returns the commit plan
        ``(victims_all, victim_live, victim_pass, runs, popped,
        clean_list, out_seg, out_fill)``, or ``None`` when the
        invocation must be replayed pass-at-a-time (see
        :meth:`_run_cleaner`). No array state is touched.
        """
        cfg = self.config
        B = self._B

        # ---- dry run on scalar copies (no array state touched) ----
        init_out = self.out_seg
        out_seg = self.out_seg
        out_fill = self.out_fill
        clean_list = list(self.clean_segs)
        popped: list[int] = []
        victims_all: list[int] = []
        victim_live: list[int] = []
        victim_pass: list[int] = []
        runs: list[tuple[int, int, int]] = []  # (seg, start_slot, count)
        seg_live = self.seg_live
        spp = cfg.segments_per_pass
        threshold = cfg.clean_threshold
        n_ranked = len(ranked)
        taken = 0
        pass_no = 0
        # The rolled-over initial output head is merged *lazily*: instead
        # of inserting it into ranked/keys, remember its key and check at
        # every pass whether it would displace one of the picks. Its
        # exact sorted position only matters if it would be picked — and
        # that case defers to the pass-at-a-time path anyway. For
        # cost-benefit even the exact key is deferred behind a cheap
        # lower bound (the head's mtime only grows as moves land in it),
        # so the expensive rolled-out-mtime walk almost never runs.
        pend = False
        pend_seg = -1
        pend_key: float = 0.0  # exact when pend_exact, else a lower bound
        pend_exact = True
        pend_count = 0  # blocks moved into the head before it rolled over
        while len(clean_list) < threshold:
            hi = taken + spp
            if hi > n_ranked:
                hi = n_ranked
            if pend:
                if hi == taken:
                    return None  # the merged head is the only candidate
                # (key, seg) comparison against the pass's worst pick —
                # exactly the sorted position a real insert would take
                kj = keys[hi - 1]
                if not pend_exact and not pend_key > kj:
                    pend_key = self._merged_key(pend_seg, pend_count,
                                                victims_all, victim_pass, now)
                    pend_exact = True
                if pend_exact and (
                    pend_key < kj or (pend_key == kj and pend_seg < ranked[hi - 1])
                ):
                    return None  # the merged head would be picked
                if hi - taken < spp:
                    return None  # underfull window: the head fills a slot
            elif hi == taken:
                break
            victims = ranked[taken:hi].tolist()
            taken = hi
            pending = 0
            for v in victims:
                lv = int(seg_live[v])
                victim_live.append(lv)
                victim_pass.append(pass_no)
                pending += lv
                clean_list.append(v)
            victims_all.extend(victims)
            pass_no += 1
            while pending:
                if out_seg < 0 or out_fill >= B:
                    if not clean_list:
                        raise RuntimeError("cleaner ran out of output segments")
                    if out_seg == init_out and init_out >= 0:
                        # the pre-invocation output head rolls over full:
                        # it joins the candidate pool (unless fully live)
                        # exactly as per-pass re-selection would see it;
                        # its final live count is its pre-invocation one
                        # plus every block moved into it this invocation
                        live0 = int(seg_live[init_out]) + (B - self.out_fill)
                        if live0 < B:
                            pend = True
                            pend_seg = init_out
                            pend_count = B - self.out_fill
                            if cfg.selection is SelectionPolicy.GREEDY:
                                pend_key = live0 * self._S + init_out
                                pend_exact = True
                            else:
                                # ratio ≤ (1-u)·(now - current mtime)/(1+u)
                                u = live0 / B
                                age = max(0.0, now - float(self.seg_mtime[init_out]))
                                pend_key = -((1.0 - u) * age / (1.0 + u))
                                pend_exact = False
                        init_out = -1
                    out_seg = clean_list.pop()
                    popped.append(out_seg)
                    out_fill = 0
                run = min(B - out_fill, pending)
                runs.append((out_seg, out_fill, run))
                out_fill += run
                pending -= run
        return (
            victims_all, victim_live, victim_pass, runs, popped,
            clean_list, out_seg, out_fill,
        )

    def _merged_key(
        self,
        seg: int,
        count: int,
        victims_all: list[int],
        victim_pass: list[int],
        now: float,
    ) -> float:
        """The exact cost-benefit key of the rolled-over output head.

        ``count`` blocks of this invocation's move stream landed in it;
        the stream's extra victims past ``count`` blocks are never
        consulted, so computing this late (with more victims accumulated
        than at roll-over time) yields the same value.
        """
        B = self._B
        live0 = int(self.seg_live[seg]) + count
        mt = self._rolled_out_mtime(seg, count, victims_all, victim_pass)
        u = live0 / B
        age = max(0.0, now - mt)
        return -((1.0 - u) * age / (1.0 + u))

    def _commit_cleaning(
        self,
        victims_all: list[int],
        victim_live: list[int],
        victim_pass: list[int],
        runs: list[tuple[int, int, int]],
        popped: list[int],
        clean_list: list[int],
        out_seg: int,
        out_fill: int,
    ) -> None:
        """Apply a dry-run cleaning invocation to the array state."""
        B = self._B
        nv = len(victims_all)
        if nv == 0:
            return
        measuring = self.measuring
        varr = np.array(victim_live, dtype=np.int64)
        self._cu_parts.append(varr / B)
        nz = nv - victim_live.count(0)
        self.read_blocks += B * nz
        if measuring:
            self.m_read += B * nz
        self.segments_cleaned += nv

        # live files of every victim, gathered at once: safe because no
        # victim receives writes mid-invocation (the one segment that
        # could — the merged initial output head — routes to the
        # pass-at-a-time path instead)
        vs = np.array(victims_all, dtype=np.int64)
        moved = self._gather_live_files(victims_all)
        mtimes = self.file_mtime[moved]
        if self.config.grouping == GroupingPolicy.AGE_SORT and len(victims_all) > 0:
            # one stable sort for all passes: key = pass * b + mtime with
            # b a power of two above every mtime, so the composite float
            # is exact and orders (pass, mtime) lexicographically
            pass_of = np.array(victim_pass, dtype=np.int64).repeat(varr)
            bound = float(2 ** (int(self.step_no).bit_length() + 1))
            key = pass_of * bound
            key += mtimes
            order = key.argsort(kind="stable")
            moved = moved[order]
            mtimes = mtimes[order]

        self.seg_live[vs] = 0
        self.seg_fill[vs] = 0
        self.seg_mtime[vs] = 0.0
        self.clean_mask[vs] = True
        self._inlog[vs] = False
        if popped:
            pa = np.array(popped, dtype=np.int64)
            self.clean_mask[pa] = False
            self._inlog[pa] = True
        self.clean_segs = clean_list

        total = len(moved)
        if total:
            ar = self._arange
            seg_live = self.seg_live
            seg_fill = self.seg_fill
            seg_mtime = self.seg_mtime
            b = 0
            for s, sstart, c in runs:
                e = b + c
                mv = moved[b:e]
                self.file_seg[mv] = s
                self.file_slot[mv] = ar[sstart : sstart + c]
                base = s * B + sstart
                self.seg_slots[base : base + c] = mv
                seg_live[s] += c
                seg_fill[s] = sstart + c
                top = mtimes[b:e].max()
                if top > seg_mtime[s]:
                    seg_mtime[s] = top
                b = e
        self.out_seg = out_seg
        self.out_fill = out_fill
        self.moved_blocks += total
        if measuring:
            self.m_moved += total

    def _run_cleaner_passwise(self, now: float) -> None:
        """Pass-at-a-time cleaning (reference-shaped; the rare path)."""
        cfg = self.config
        B = self._B
        ranked, keys = self._rank_victims(now)
        init_out = self.out_seg
        taken = 0
        while len(self.clean_segs) < cfg.clean_threshold:
            victims = ranked[taken : taken + cfg.segments_per_pass].tolist()
            taken += len(victims)
            if not victims:
                break  # everything left is fully live: no reclaimable space
            moved_parts = []
            pass_lives = []
            for v in victims:
                lv = int(self.seg_live[v])
                pass_lives.append(lv)
                if lv > 0:
                    self.read_blocks += B
                    if self.measuring:
                        self.m_read += B
                fill = int(self.seg_fill[v])
                slot_files = self.seg_slots[v * B : v * B + fill]
                alive = (self.file_seg[slot_files] == v) & (
                    self.file_slot[slot_files] == self._slot_ids[:fill]
                )
                moved_parts.append(slot_files[alive])
                self.seg_live[v] = 0
                self.seg_fill[v] = 0
                self.seg_mtime[v] = 0.0
                self.clean_segs.append(v)
                self.clean_mask[v] = True
                self._inlog[v] = False
                self.segments_cleaned += 1
            self._cu_parts.append(np.array(pass_lives, dtype=np.int64) / B)
            moved = (
                np.concatenate(moved_parts) if len(moved_parts) > 1 else moved_parts[0]
            )
            if cfg.grouping == GroupingPolicy.AGE_SORT:
                moved = moved[np.argsort(self.file_mtime[moved], kind="stable")]
            self._append_moved_batch(moved)
            if init_out >= 0 and self.out_seg != init_out:
                # the pre-invocation output head rolled over: it joins
                # the candidate pool (unless fully live) exactly as the
                # reference's per-pass re-selection would see it
                if self.seg_live[init_out] < B:
                    k0 = self._victim_key(init_out, now)
                    lo = taken + int(np.searchsorted(keys[taken:], k0, side="left"))
                    hi = lo + int(np.searchsorted(keys[lo:], k0, side="right"))
                    pos = lo + int(np.searchsorted(ranked[lo:hi], init_out))
                    keys = np.insert(keys, pos, k0)
                    ranked = np.insert(ranked, pos, init_out)
                init_out = -1

    def _append_moved_batch(self, moved: "np.ndarray") -> None:
        """Write the carried live blocks to the cleaner's output head."""
        k = len(moved)
        if k == 0:
            return
        B = self._B
        if self.out_seg < 0 or self.out_fill >= B:
            if not self.clean_segs:
                raise RuntimeError("cleaner ran out of output segments")
            self.out_seg = self._pop_clean()
            self.out_fill = 0
        start = self.out_fill
        if start + k <= B:
            # common case: the whole batch fits the current output head
            s = self.out_seg
            self.file_seg[moved] = s
            self.file_slot[moved] = self._arange[:k] + start
            self.seg_slots[s * B + start : s * B + start + k] = moved
            self.seg_live[s] += k
            self.seg_fill[s] = start + k
            top = float(self.file_mtime[moved].max())
            if top > self.seg_mtime[s]:
                self.seg_mtime[s] = top
            self.out_fill = start + k
            self.moved_blocks += k
            if self.measuring:
                self.m_moved += k
            return
        n_more = (start + k - 1) // B
        seg_seq = [self.out_seg]
        for _ in range(n_more):
            if not self.clean_segs:
                raise RuntimeError("cleaner ran out of output segments")
            seg_seq.append(self._pop_clean())

        ar = self._arange[:k]
        offs = start + ar
        seg_arr = np.array(seg_seq, dtype=np.int64)
        pos_seg = seg_arr[offs // B]
        self.file_seg[moved] = pos_seg
        self.file_slot[moved] = offs % B
        mtimes = self.file_mtime[moved]
        slots = self.seg_slots
        for i, s in enumerate(seg_seq):
            lo = max(0, i * B - start)
            hi = min(k, (i + 1) * B - start)
            slots[s * B + start + lo - i * B : s * B + start + hi - i * B] = moved[
                lo:hi
            ]
            self.seg_live[s] += hi - lo
            self.seg_fill[s] = start + hi - i * B
            top = float(mtimes[lo:hi].max())
            if top > self.seg_mtime[s]:
                self.seg_mtime[s] = top
        self.out_seg = seg_seq[-1]
        self.out_fill = start + k - n_more * B
        self.moved_blocks += k
        if self.measuring:
            self.m_moved += k

    # ------------------------------------------------------------------
    # runs

    def _reset_window(self) -> None:
        self.m_new = self.m_moved = self.m_read = 0
        self._cu_parts.clear()
        self._snap_parts.clear()

    def run(self) -> SimResult:
        """Run to steady state; the loop mirrors the reference exactly."""
        cfg = self.config
        warmup = int(cfg.warmup_factor * cfg.total_blocks)
        window = max(1, int(cfg.measure_factor * cfg.total_blocks))
        if warmup:
            self._advance(warmup)
        self.measuring = True
        prev_cost = None
        stable = 0
        for _ in range(cfg.max_windows):
            self._reset_window()
            self._advance(window)
            cost = measured_write_cost(self.m_new, self.m_moved, self.m_read)
            if prev_cost is not None and prev_cost > 0:
                if abs(cost - prev_cost) / prev_cost <= cfg.stable_tol:
                    stable += 1
                else:
                    stable = 0
            prev_cost = cost
            if stable >= cfg.stable_windows:
                break
        return self._result(prev_cost)

    def _result(self, prev_cost: float | None) -> SimResult:
        """Materialize the measured window into a :class:`SimResult`."""
        parts = self._snap_parts
        hist = np.concatenate(parts).tolist() if parts else []
        cparts = self._cu_parts
        cleaned = np.concatenate(cparts).tolist() if cparts else []
        return SimResult(
            config=self.config,
            pattern_name=self.pattern.name,
            write_cost=prev_cost if prev_cost is not None else 1.0,
            new_blocks=self.m_new,
            moved_blocks=self.m_moved,
            read_blocks=self.m_read,
            segments_cleaned=self.segments_cleaned,
            total_steps=self.step_no,
            cleaned_utilizations=cleaned,
            utilization_histogram=hist,
        )


def make_simulator(
    config: SimConfig,
    pattern: AccessPattern | None = None,
    engine: str = "auto",
):
    """Build a simulator for ``config`` under the requested engine.

    ``auto`` picks the vectorized engine when numpy is importable and the
    reference engine otherwise — results are identical either way.
    ``fast`` requires numpy; ``reference`` always uses the pure-Python
    oracle.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if engine == "fast" and not HAVE_NUMPY:
        raise RuntimeError("engine 'fast' requires numpy (the 'perf' extra)")
    if engine == "reference" or not HAVE_NUMPY:
        return Simulator(config, pattern)
    return FastSimulator(config, pattern)
