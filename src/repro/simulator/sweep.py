"""Parallel sweep runner for the cleaning simulator.

Every figure-level result in the paper (Figures 4-7) comes from sweeping
the simulator across disk utilizations x policies x access patterns.
The sweep points are entirely independent, so this module fans them
across a :class:`~concurrent.futures.ProcessPoolExecutor` with
deterministic per-point seeds: the same :class:`SweepPoint` list yields
bit-identical :class:`SimResult` values whether run in-process, with one
worker, or with sixteen.

It also owns benchmark regression tracking: :func:`record_bench` writes
machine-readable ``BENCH_*.json`` files (wall-clock seconds, simulated
steps/sec, write costs, worker count, git SHA) so the perf trajectory of
the repo is measurable from run to run.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.simulator.model import SimConfig, SimResult, Simulator
from repro.simulator.patterns import AccessPattern, HotColdPattern, UniformPattern

WORKERS_ENV = "REPRO_SWEEP_WORKERS"

PATTERN_SPECS = ("uniform", "hot-cold")


def make_pattern(spec: str) -> AccessPattern:
    """Build an access pattern from a picklable string spec.

    ``"uniform"`` or ``"hot-cold"`` (the paper's 90/10 default); a
    custom split is ``"hot-cold:HOT/ACCESS"``, e.g. ``"hot-cold:0.05/0.95"``.
    """
    if spec == "uniform":
        return UniformPattern()
    if spec in ("hot-cold", "hot-and-cold"):
        return HotColdPattern()
    if spec.startswith("hot-cold:"):
        try:
            hot, access = spec.split(":", 1)[1].split("/")
            return HotColdPattern(float(hot), float(access))
        except (ValueError, IndexError) as exc:
            raise ValueError(f"bad hot-cold spec {spec!r}") from exc
    raise ValueError(f"unknown access pattern {spec!r}")


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation: a full config plus a pattern spec.

    Patterns travel as string specs (not objects) so points pickle
    cheaply and identically under any executor start method.
    """

    config: SimConfig
    pattern: str = "uniform"


def run_point(point: SweepPoint) -> SimResult:
    """Run one sweep point to steady state (the pool's work function)."""
    return Simulator(point.config, make_pattern(point.pattern)).run()


def derive_point_seed(base_seed: int, *parts: object) -> int:
    """A deterministic per-point seed from the sweep's base seed.

    Stable across processes and Python versions (CRC32, not ``hash()``),
    so a sweep is reproducible from ``SimConfig.seed`` alone while every
    point still gets decorrelated randomness.
    """
    text = "|".join(str(p) for p in parts)
    return (base_seed * 1_000_003 + zlib.crc32(text.encode("utf-8"))) % (2**31)


def resolve_workers(workers: int | None, njobs: int) -> int:
    """Worker count to use: explicit > $REPRO_SWEEP_WORKERS > cpu count."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        workers = int(env) if env else (os.cpu_count() or 1)
    return max(1, min(workers, njobs))


def run_sweep(
    points: Iterable[SweepPoint], workers: int | None = None
) -> list[SimResult]:
    """Run every point, in order, fanning across a process pool.

    ``workers=1`` (or a single point, or a single-core host) runs
    in-process; results are bit-identical either way because each point
    carries its own seed and the simulator is deterministic.
    """
    points = list(points)
    nworkers = resolve_workers(workers, len(points))
    if nworkers <= 1:
        return [run_point(p) for p in points]
    with ProcessPoolExecutor(max_workers=nworkers) as pool:
        return list(pool.map(run_point, points, chunksize=1))


def parallel_map(
    fn: Callable, args_list: Sequence[tuple], workers: int | None = None
) -> list:
    """``[fn(*args) for args in args_list]`` across a process pool.

    For benchmark sweeps whose points are not simulator runs (the
    file-system ablations). ``fn`` must be a module-level function.
    """
    args_list = list(args_list)
    nworkers = resolve_workers(workers, len(args_list))
    if nworkers <= 1:
        return [fn(*args) for args in args_list]
    with ProcessPoolExecutor(max_workers=nworkers) as pool:
        futures = [pool.submit(fn, *args) for args in args_list]
        return [f.result() for f in futures]


# ----------------------------------------------------------------------
# benchmark regression tracking


def git_sha() -> str:
    """Short SHA of the repo this module lives in ('unknown' outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def record_bench(
    name: str,
    *,
    wall_seconds: float,
    results_dir: str | Path,
    workers: int | None = None,
    steps: int | None = None,
    write_costs: dict[str, list] | list | None = None,
    extra: dict | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    Schema (version 1): ``bench``, ``schema``, ``wall_seconds``,
    ``steps`` (simulated steps, if known), ``steps_per_sec``,
    ``workers``, ``write_costs``, ``git_sha``, ``created_at`` (UTC
    ISO-8601), plus any ``extra`` keys at top level.
    """
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    payload: dict = {
        "bench": name,
        "schema": 1,
        "wall_seconds": round(wall_seconds, 6),
        "steps": steps,
        "steps_per_sec": (
            round(steps / wall_seconds, 1) if steps and wall_seconds > 0 else None
        ),
        "workers": workers,
        "write_costs": write_costs,
        "git_sha": git_sha(),
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    if extra:
        payload.update(extra)
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return path
