"""Parallel sweep runner for the cleaning simulator.

Every figure-level result in the paper (Figures 4-7) comes from sweeping
the simulator across disk utilizations x policies x access patterns.
The sweep points are entirely independent, so this module fans them
across a :class:`~concurrent.futures.ProcessPoolExecutor` with
deterministic per-point seeds: the same :class:`SweepPoint` list yields
bit-identical :class:`SimResult` values whether run in-process, with one
worker, or with sixteen.

It also owns benchmark regression tracking: :func:`record_bench` writes
machine-readable ``BENCH_*.json`` files (wall-clock seconds, simulated
steps/sec, write costs, worker count, git SHA) so the perf trajectory of
the repo is measurable from run to run.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.simulator.model import SimConfig, SimResult, Simulator
from repro.simulator.patterns import AccessPattern, HotColdPattern, UniformPattern

WORKERS_ENV = "REPRO_SWEEP_WORKERS"

PATTERN_SPECS = ("uniform", "hot-cold")

ENGINES = ("auto", "reference", "vectorized")


def make_pattern(spec: str) -> AccessPattern:
    """Build an access pattern from a picklable string spec.

    ``"uniform"`` or ``"hot-cold"`` (the paper's 90/10 default); a
    custom split is ``"hot-cold:HOT/ACCESS"``, e.g. ``"hot-cold:0.05/0.95"``.
    """
    if spec == "uniform":
        return UniformPattern()
    if spec in ("hot-cold", "hot-and-cold"):
        return HotColdPattern()
    if spec.startswith("hot-cold:"):
        try:
            hot, access = spec.split(":", 1)[1].split("/")
            return HotColdPattern(float(hot), float(access))
        except (ValueError, IndexError) as exc:
            raise ValueError(f"bad hot-cold spec {spec!r}") from exc
    raise ValueError(f"unknown access pattern {spec!r}")


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation: a full config plus a pattern spec.

    Patterns travel as string specs (not objects) so points pickle
    cheaply and identically under any executor start method.
    """

    config: SimConfig
    pattern: str = "uniform"


def run_point(point: SweepPoint) -> SimResult:
    """Run one sweep point to steady state (the pool's work function)."""
    return Simulator(point.config, make_pattern(point.pattern)).run()


def have_numpy() -> bool:
    """Whether the optional vectorized engine's dependency is importable."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def resolve_engine(engine: str = "auto") -> str:
    """Pick the concrete sweep engine: ``reference`` or ``vectorized``.

    ``auto`` selects the vectorized engine when numpy is importable and
    silently falls back to the reference engine otherwise (the two are
    bit-identical, so this is purely a speed decision). Requesting
    ``vectorized`` explicitly without numpy is an error.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r} (choose from {ENGINES})")
    if engine == "auto":
        return "vectorized" if have_numpy() else "reference"
    if engine == "vectorized" and not have_numpy():
        raise RuntimeError(
            "vectorized engine requires numpy (pip extra: repro[perf]); "
            "use --engine reference or auto"
        )
    return engine


def _run_fleet_chunk(points: Sequence[SweepPoint]) -> list[SimResult]:
    """Vectorized work function: one worker's chunk as a fused fleet."""
    from repro.simulator.batch import run_fleet

    return run_fleet([(p.config, make_pattern(p.pattern)) for p in points])


def result_digest(results: Iterable[SimResult]) -> str:
    """A short stable digest of a result list's oracle fields.

    Covers exactly the fields the engine-identity proof asserts —
    write cost, the block/segment counters, the cleaned-segment
    utilizations, and the utilization histogram — so a reference and a
    vectorized run of the same points produce the same digest, and any
    engine divergence changes it. Floats are hashed via ``repr``, which
    is exact for Python floats.
    """
    h = hashlib.sha256()
    for r in results:
        h.update(
            repr(
                (
                    r.write_cost,
                    r.new_blocks,
                    r.moved_blocks,
                    r.read_blocks,
                    r.segments_cleaned,
                    r.total_steps,
                    r.cleaned_utilizations,
                    r.utilization_histogram,
                )
            ).encode("utf-8")
        )
    return h.hexdigest()[:16]


def derive_point_seed(base_seed: int, *parts: object) -> int:
    """A deterministic per-point seed from the sweep's base seed.

    Stable across processes and Python versions (CRC32, not ``hash()``),
    so a sweep is reproducible from ``SimConfig.seed`` alone while every
    point still gets decorrelated randomness.
    """
    text = "|".join(str(p) for p in parts)
    return (base_seed * 1_000_003 + zlib.crc32(text.encode("utf-8"))) % (2**31)


def resolve_workers(workers: int | None, njobs: int) -> int:
    """Worker count to use: explicit > $REPRO_SWEEP_WORKERS > cpu count."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        workers = int(env) if env else (os.cpu_count() or 1)
    return max(1, min(workers, njobs))


def run_sweep(
    points: Iterable[SweepPoint],
    workers: int | None = None,
    *,
    engine: str = "auto",
) -> list[SimResult]:
    """Run every point, in order, fanning across a process pool.

    ``workers=1`` (or a single point, or a single-core host) runs
    in-process; results are bit-identical either way because each point
    carries its own seed and the simulator is deterministic — and
    bit-identical across ``engine`` choices too (the vectorized engine
    is proven equivalent to the reference simulator).

    The vectorized engine batches each worker's points into one fused
    fleet (shared numpy kernels across points), so it splits the sweep
    into ``nworkers`` contiguous chunks instead of one task per point;
    ordering stays deterministic because chunks are mapped in order and
    re-concatenated.
    """
    points = list(points)
    nworkers = resolve_workers(workers, len(points))
    if resolve_engine(engine) == "vectorized":
        if nworkers <= 1:
            return _run_fleet_chunk(points)
        size = -(-len(points) // nworkers)
        chunks = [points[i : i + size] for i in range(0, len(points), size)]
        with ProcessPoolExecutor(max_workers=nworkers) as pool:
            parts = list(pool.map(_run_fleet_chunk, chunks, chunksize=1))
        return [r for part in parts for r in part]
    if nworkers <= 1:
        return [run_point(p) for p in points]
    with ProcessPoolExecutor(max_workers=nworkers) as pool:
        return list(pool.map(run_point, points, chunksize=1))


def parallel_map(
    fn: Callable, args_list: Sequence[tuple], workers: int | None = None
) -> list:
    """``[fn(*args) for args in args_list]`` across a process pool.

    For benchmark sweeps whose points are not simulator runs (the
    file-system ablations). ``fn`` must be a module-level function.
    """
    args_list = list(args_list)
    nworkers = resolve_workers(workers, len(args_list))
    if nworkers <= 1:
        return [fn(*args) for args in args_list]
    with ProcessPoolExecutor(max_workers=nworkers) as pool:
        futures = [pool.submit(fn, *args) for args in args_list]
        return [f.result() for f in futures]


# ----------------------------------------------------------------------
# benchmark regression tracking


def git_sha() -> str:
    """Short SHA of the repo this module lives in ('unknown' outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def record_bench(
    name: str,
    *,
    wall_seconds: float,
    results_dir: str | Path,
    workers: int | None = None,
    steps: int | None = None,
    write_costs: dict[str, list] | list | None = None,
    engine: str | None = None,
    digest: str | None = None,
    extra: dict | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    Schema (version 2): ``bench``, ``schema``, ``wall_seconds``,
    ``steps`` (simulated steps, if known), ``steps_per_sec``,
    ``workers``, ``write_costs``, ``engine`` (which simulator engine
    produced the results), ``result_digest`` (see :func:`result_digest`
    — ties the perf number to the exact outputs it was measured on),
    ``cpu_count`` (perf numbers are meaningless without knowing the
    host's parallelism), ``git_sha``, ``created_at`` (UTC ISO-8601),
    plus any ``extra`` keys at top level. Schema 1 lacked ``engine``,
    ``result_digest`` and ``cpu_count``; readers treat unknown keys as
    informational, so 1 and 2 records diff cleanly against each other.
    """
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    payload: dict = {
        "bench": name,
        "schema": 2,
        "wall_seconds": round(wall_seconds, 6),
        "steps": steps,
        "steps_per_sec": (
            round(steps / wall_seconds, 1) if steps and wall_seconds > 0 else None
        ),
        "workers": workers,
        "write_costs": write_costs,
        "engine": engine,
        "result_digest": digest,
        "cpu_count": os.cpu_count(),
        "git_sha": git_sha(),
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    if extra:
        payload.update(extra)
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return path
