"""The paper's Section 3.5 cleaning-policy simulator.

A deliberately harsh abstract model: a fixed population of one-block
files; each step overwrites one file chosen by an access pattern; the
cleaner runs when clean segments are exhausted. It exists to compare
segment-selection policies (greedy vs. cost-benefit) and live-block
grouping (none vs. age sort) under uniform and hot-and-cold access —
reproducing Figures 3 through 7.
"""

from repro.simulator.model import SimConfig, SimResult, Simulator
from repro.simulator.patterns import AccessPattern, HotColdPattern, UniformPattern
from repro.simulator.policies import GroupingPolicy, SelectionPolicy
from repro.simulator.sweep import (
    ENGINES,
    SweepPoint,
    make_pattern,
    parallel_map,
    record_bench,
    resolve_engine,
    result_digest,
    run_sweep,
)
from repro.simulator.writecost import (
    FFS_IMPROVED_WRITE_COST,
    FFS_TODAY_WRITE_COST,
    lfs_write_cost,
)

__all__ = [
    "AccessPattern",
    "ENGINES",
    "FFS_IMPROVED_WRITE_COST",
    "FFS_TODAY_WRITE_COST",
    "GroupingPolicy",
    "HotColdPattern",
    "SelectionPolicy",
    "SimConfig",
    "SimResult",
    "Simulator",
    "SweepPoint",
    "UniformPattern",
    "lfs_write_cost",
    "make_pattern",
    "parallel_map",
    "record_bench",
    "resolve_engine",
    "result_digest",
    "run_sweep",
]
