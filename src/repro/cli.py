"""Command-line interface: operate on persistent LFS disk images.

Usage (after ``pip install -e .``)::

    python -m repro mkfs demo.lfs --size-mb 64
    python -m repro put demo.lfs README.md /docs/readme.md
    python -m repro ls demo.lfs /docs
    python -m repro get demo.lfs /docs/readme.md out.md
    python -m repro stats demo.lfs
    python -m repro fsck demo.lfs
    python -m repro dump demo.lfs --segment 0
    python -m repro sweep --utils 0.5,0.75,0.9 --workers 4 --json out.json

Every mutating command mounts the image (running roll-forward if the
image was not cleanly unmounted), performs the operation, checkpoints,
and saves the image back — so images on disk are always recoverable.
``sweep`` needs no image: it fans cleaning-simulator runs across a
process pool and optionally records a machine-readable benchmark file.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.analysis.ascii_chart import render_table
from repro.core.config import LFSConfig
from repro.core.errors import CorruptionError
from repro.core.filesystem import LFS
from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry, FlashGeometry
from repro.disk.image import load_disk, save_disk
from repro.simulator.model import SimConfig
from repro.simulator.policies import GroupingPolicy, SelectionPolicy
from repro.simulator.sweep import (
    ENGINES,
    SweepPoint,
    derive_point_seed,
    record_bench,
    resolve_engine,
    resolve_workers,
    result_digest,
    run_sweep,
)
from repro.tools.dumplog import dump_checkpoints, dump_segment, dump_superblock
from repro.tools.lfsck import check_filesystem
from repro.tools.scrub import scrub_filesystem
from repro.torture import TORTURE_MODES, WORKLOADS, run_torture
from repro.disk.faults import FAULT_MODES


def _mount(image: str) -> tuple[Disk, LFS]:
    disk = load_disk(image)
    return disk, LFS.mount(disk)


def cmd_mkfs(args: argparse.Namespace) -> int:
    geometry = DiskGeometry.wren4(num_blocks=args.size_mb * 256)
    disk = Disk(geometry)
    fs = LFS.format(disk, LFSConfig(segment_bytes=args.segment_kb * 1024))
    fs.unmount()
    save_disk(disk, args.image)
    print(
        f"created {args.image}: {args.size_mb}MB, "
        f"{fs.layout.num_segments} segments of {args.segment_kb}KB"
    )
    return 0


def cmd_ls(args: argparse.Namespace) -> int:
    disk, fs = _mount(args.image)
    for name in fs.readdir(args.path):
        st = fs.stat(args.path.rstrip("/") + "/" + name)
        kind = "d" if st.is_directory else "-"
        print(f"{kind} {st.size:>10}  {name}")
    return 0


def cmd_put(args: argparse.Namespace) -> int:
    with open(args.local, "rb") as fh:
        data = fh.read()
    disk, fs = _mount(args.image)
    fs.write_file(args.path, data)
    fs.unmount()
    save_disk(disk, args.image)
    print(f"wrote {len(data)} bytes to {args.path}")
    return 0


def cmd_get(args: argparse.Namespace) -> int:
    disk, fs = _mount(args.image)
    data = fs.read(args.path)
    if args.local:
        with open(args.local, "wb") as fh:
            fh.write(data)
        print(f"read {len(data)} bytes to {args.local}")
    else:
        sys.stdout.buffer.write(data)
    return 0


def cmd_rm(args: argparse.Namespace) -> int:
    disk, fs = _mount(args.image)
    fs.unlink(args.path)
    fs.unmount()
    save_disk(disk, args.image)
    print(f"removed {args.path}")
    return 0


def cmd_mkdir(args: argparse.Namespace) -> int:
    disk, fs = _mount(args.image)
    fs.mkdir(args.path)
    fs.unmount()
    save_disk(disk, args.image)
    print(f"created directory {args.path}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import Observation

    disk = load_disk(args.image)
    # Attach before mount so the registry and attribution also cover the
    # mount-time recovery I/O.
    obs = Observation(ring_capacity=4096)
    fs = LFS.mount(disk, obs=obs)
    snapshot = obs.registry.snapshot()
    if args.json:
        print(
            json.dumps(
                {
                    "disk_utilization": fs.disk_capacity_utilization,
                    "clean_segments": fs.usage.clean_count,
                    "total_segments": fs.layout.num_segments,
                    "live_inodes": fs.imap.live_count,
                    "write_cost": fs.write_cost,
                    "segments_cleaned": fs.cleaner.stats.segments_cleaned,
                    "simulated_time": disk.clock.now,
                    "trace_retained": len(obs.tracer),
                    "trace_dropped": obs.tracer.dropped,
                    "registry": snapshot,
                    "attribution_seconds": obs.attribution.seconds,
                },
                indent=2,
            )
        )
        return 0
    print(f"disk utilization  {fs.disk_capacity_utilization:.1%}")
    print(f"clean segments    {fs.usage.clean_count} / {fs.layout.num_segments}")
    print(f"live inodes       {fs.imap.live_count}")
    print(f"write cost        {fs.write_cost:.2f}")
    print(f"segments cleaned  {fs.cleaner.stats.segments_cleaned} (this session)")
    print(f"simulated time    {disk.clock.now:.3f}s")
    print(f"trace ring        {len(obs.tracer)} retained, {obs.tracer.dropped} dropped")
    print()
    print(obs.registry.render(snapshot))
    return 0


def _filter_events(events, *, kind=None, cause=None, since=None):
    """Apply the trace command's --kind/--cause/--since filters."""
    out = events
    if kind is not None:
        out = [e for e in out if e.kind == kind]
    if cause is not None:
        out = [e for e in out if e.cause == cause]
    if since is not None:
        out = [e for e in out if e.time >= since]
    return list(out)


def _print_events(events) -> None:
    for e in events:
        fields = " ".join(f"{k}={v}" for k, v in e.fields.items())
        cause = f" cause={e.cause}" if e.cause else ""
        print(f"t={e.time:.6f} {e.kind}{cause} {fields}")


def cmd_trace(args: argparse.Namespace) -> int:
    """Run a workload under the tracer and cross-check trace vs counters.

    Exit 0 when every trace-derived number agrees bit-identically with
    the legacy counters, 1 on any mismatch. With ``--load`` no workload
    runs: a previously exported JSONL trace is rendered instead (the
    filters and --spans apply the same way).
    """
    from repro.obs import Observation, TraceFormatError, load_trace_jsonl, render_span_tree
    from repro.obs.derive import (
        cleaned_utilizations,
        cleaning_summary,
        cross_check,
        log_bandwidth_breakdown,
    )

    filtering = args.kind or args.cause or args.since is not None

    if args.load:
        try:
            header, events = load_trace_jsonl(args.load)
        except TraceFormatError as exc:
            print(f"trace: {exc}", file=sys.stderr)
            return 2
        trailer = header.get("trailer", {})
        print(
            f"loaded {args.load}: schema {header.get('schema')}, "
            f"{len(events)} events"
        )
        if trailer.get("warning"):
            print(f"warning: {trailer['warning']}")
        if args.spans:
            print(render_span_tree(events))
        if filtering or not args.spans:
            _print_events(
                _filter_events(events, kind=args.kind, cause=args.cause, since=args.since)
            )
        return 0

    obs = Observation(
        ring_capacity=args.ring if args.ring > 0 else None,
        jsonl_path=args.jsonl,
    )
    if args.workload == "smallfile":
        from repro.workloads.smallfile import run_smallfile

        geo = DiskGeometry.wren4(block_size=1024, num_blocks=65536)
        run_smallfile("lfs", num_files=args.files, geometry=geo, obs=obs)
    elif args.workload == "andrew":
        from repro.workloads.andrew import run_andrew

        run_andrew("lfs", obs=obs)
    else:  # production
        from repro.workloads.production import ProductionConfig, run_production

        run_production(
            ProductionConfig(name="/trace", disk_mb=32, traffic_mb=32), obs=obs
        )
    obs.tracer.close()

    counts = obs.tracer.emitted_counts
    rows = [[kind, counts[kind]] for kind in sorted(counts)]
    print(render_table(["event kind", "emitted"], rows, title=f"trace — {args.workload}"))
    if obs.tracer.dropped:
        print(f"ring dropped {obs.tracer.dropped} events (raise --ring for derivation)")
    print()
    print(obs.attribution.render())
    print()

    events = obs.tracer.events()
    summary = cleaning_summary(cleaned_utilizations(events))
    print("cleaning (Table 2 inputs, derived from trace):")
    print(f"  segments cleaned  {summary['segments_cleaned']}")
    print(f"  fraction empty    {summary['fraction_empty']:.3f}")
    print(f"  avg non-empty u   {summary['avg_nonempty_utilization']:.3f}")
    breakdown = log_bandwidth_breakdown(events)
    total = sum(breakdown.values()) or 1
    print("log bandwidth by block type (Table 4, derived from trace):")
    for kind, blocks in breakdown.items():
        print(f"  {kind:<10} {blocks:>8} blocks  {100.0 * blocks / total:5.1f}%")

    if args.spans:
        print()
        print(render_span_tree(events))
    if filtering:
        print()
        matched = _filter_events(
            events, kind=args.kind, cause=args.cause, since=args.since
        )
        print(f"{len(matched)} events match the filters:")
        _print_events(matched)

    problems = cross_check(obs)
    if problems:
        print("\nTRACE / COUNTER MISMATCH:")
        for msg in problems:
            print(f"  {msg}")
        return 1
    print("\ntrace agrees bit-identically with the legacy counters")
    if args.jsonl:
        print(f"wrote JSONL trace to {args.jsonl}")
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    """Offline check. Exit 0 = clean, 1 = inconsistencies, 2 = checksum
    mismatches or an unreadable image (media damage, not mere logic bugs)."""
    try:
        disk = load_disk(args.image)
    except (OSError, ValueError, CorruptionError) as exc:
        print(f"fsck: cannot read image {args.image}: {exc}", file=sys.stderr)
        return 2
    report = check_filesystem(disk)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    if report.checksum_errors:
        return 2
    return 0 if report.ok else 1


def cmd_scrub(args: argparse.Namespace) -> int:
    """Patrol-read an image's log and verify every recorded checksum."""
    disk = load_disk(args.image)
    fs = LFS.mount(disk)
    report = scrub_filesystem(fs, rescue=args.rescue)
    fs.unmount()
    if args.rescue:
        save_disk(disk, args.image)  # quarantine verdicts must persist
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.clean else 1


def cmd_dump(args: argparse.Namespace) -> int:
    disk = load_disk(args.image)
    if args.segment is not None:
        print(dump_segment(disk, args.segment))
    elif args.checkpoints:
        print(dump_checkpoints(disk))
    else:
        print(dump_superblock(disk))
        print()
        print(dump_checkpoints(disk))
    return 0


def _sweep_points(args: argparse.Namespace) -> tuple[list[SweepPoint], list[tuple]]:
    """The sweep grid a ``sweep``/``profile`` invocation describes."""
    utils = [float(u) for u in args.utils.split(",") if u]
    selections = [SelectionPolicy(p) for p in args.policies.split(",") if p]
    groupings = [GroupingPolicy(g) for g in args.grouping.split(",") if g]
    patterns = [p for p in args.patterns.split(",") if p]

    points: list[SweepPoint] = []
    labels: list[tuple] = []
    for util in utils:
        for selection in selections:
            for grouping in groupings:
                for pattern in patterns:
                    seed = derive_point_seed(
                        args.seed, util, selection.value, grouping.value, pattern
                    )
                    cfg = SimConfig(
                        num_segments=args.segments,
                        blocks_per_segment=args.blocks,
                        utilization=util,
                        selection=selection,
                        grouping=grouping,
                        warmup_factor=args.warmup_factor,
                        measure_factor=args.measure_factor,
                        max_windows=args.max_windows,
                        seed=seed,
                    )
                    points.append(SweepPoint(cfg, pattern))
                    labels.append((util, selection.value, grouping.value, pattern))
    return points, labels


def cmd_sweep(args: argparse.Namespace) -> int:
    points, labels = _sweep_points(args)
    engine = resolve_engine(args.engine)
    workers = resolve_workers(args.workers, len(points))
    t0 = time.perf_counter()
    results = run_sweep(points, workers=workers, engine=engine)
    wall = time.perf_counter() - t0

    rows = [
        [util, sel, grp, pat, f"{r.write_cost:.2f}", r.total_steps]
        for (util, sel, grp, pat), r in zip(labels, results)
    ]
    steps = sum(r.total_steps for r in results)
    print(
        render_table(
            ["util", "policy", "grouping", "pattern", "write cost", "steps"],
            rows,
            title=(
                f"sweep — {len(points)} points, {workers} worker(s), "
                f"{engine} engine, {wall:.2f}s wall, {steps / wall:,.0f} steps/s"
            ),
        )
    )
    if args.json:
        import pathlib

        out = pathlib.Path(args.json)
        path = record_bench(
            args.bench_name,
            wall_seconds=wall,
            results_dir=out.parent if out.suffix else out,
            workers=workers,
            steps=steps,
            write_costs={
                f"{util}/{sel}/{grp}/{pat}": r.write_cost
                for (util, sel, grp, pat), r in zip(labels, results)
            },
            engine=engine,
            digest=result_digest(results),
            extra={"points": len(points), "base_seed": args.seed},
        )
        if out.suffix:  # an explicit file name, not a directory
            path.rename(out)
            path = out
        print(f"recorded {path}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile a sweep under cProfile and print the ranked hotspots."""
    import cProfile
    import pstats

    points, _ = _sweep_points(args)
    engine = resolve_engine(args.engine)
    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    # Always in-process: a pool would move the work (and the profile)
    # into child processes and leave nothing here but pickling.
    results = run_sweep(points, workers=1, engine=engine)
    profiler.disable()
    wall = time.perf_counter() - t0

    steps = sum(r.total_steps for r in results)
    print(
        f"profile — {len(points)} points, {engine} engine, "
        f"{wall:.2f}s wall, {steps / wall:,.0f} steps/s, "
        f"digest {result_digest(results)}"
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.limit)
    if args.out:
        stats.dump_stats(args.out)
        print(f"wrote {args.out} (open with pstats or snakeviz)")
    return 0


def cmd_heatmap(args: argparse.Namespace) -> int:
    """Render an image's per-segment utilization as an ASCII glyph map."""
    from repro.analysis.ascii_chart import render_heatmap

    disk = load_disk(args.image)
    fs = LFS.mount(disk)
    usage = fs.usage
    utils = [usage.utilization(i) for i in range(usage.num_segments)]
    print(
        render_heatmap(
            utils,
            quarantined=usage.quarantined_segments(),
            clean=usage.clean_segments(),
            current=fs.writer.current_segment,
            width=args.width,
        )
    )
    print(
        f"live: {usage.total_live_bytes()} bytes across "
        f"{usage.num_segments - usage.clean_count} in-log segments; "
        f"{usage.clean_count} clean, {len(usage.quarantined_segments())} quarantined"
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run a workload under the full observatory and print a run report."""
    from repro.obs import (
        Observation,
        SegmentLedger,
        Watchdog,
        build_report,
        render_report,
    )

    obs = Observation(ring_capacity=args.ring if args.ring > 0 else None)
    ledger = SegmentLedger()
    ledger.install(obs)
    Watchdog(ledger=ledger).install(obs)
    if args.timeline:
        from repro.obs import TimelineRecorder

        # No event loop here: the flush/clean/checkpoint hooks and the
        # per-event gate drive the cadence, so a finer default fits the
        # short simulated spans these workloads cover.
        TimelineRecorder(cadence=args.timeline_cadence).install(obs)

    if args.workload == "smallfile":
        from repro.workloads.smallfile import run_smallfile

        if args.flash:
            geo: DiskGeometry = FlashGeometry.nand(block_size=1024, num_blocks=65536)
        else:
            geo = DiskGeometry.wren4(block_size=1024, num_blocks=65536)
        run_smallfile("lfs", num_files=args.files, geometry=geo, obs=obs)
    else:  # largefile
        from repro.workloads.largefile import run_largefile

        flash_geo = (
            FlashGeometry.nand(block_size=4096, num_blocks=81920)
            if args.flash
            else None
        )
        run_largefile(
            "lfs", file_size=args.file_mb * 1024 * 1024, geometry=flash_geo, obs=obs
        )
    fs = obs._fs
    if obs.timeline is not None:
        obs.timeline.finish()

    sections = []
    if args.flash:
        sections.append("flash")
    if args.timeline:
        sections.append("timeline")
    report = build_report(
        obs,
        fs,
        ledger,
        name=args.workload,
        sections=tuple(sections),
    )
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.json_out}")
    print(render_report(report))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant file server experiment to completion."""
    from repro.server import ServerConfig, WorkloadConfig, run_server

    workload = WorkloadConfig(
        clients=args.clients,
        tenants=args.tenants,
        ops_per_client=args.ops,
        files_per_client=args.files,
        file_size=args.file_size,
        mode=args.mode,
        think_seconds=args.think,
        seed=args.seed,
        sync_writes=args.sync_writes,
    )
    config = ServerConfig(
        workload=workload,
        policy=args.policy,
        quantum=args.quantum,
        cleaner=not args.no_cleaner,
        nvram=args.nvram,
        timeline=args.timeline,
        timeline_cadence=args.timeline_cadence,
        slo_latency=args.slo_latency,
    )
    t0 = time.perf_counter()
    result = run_server(config, watchdog=args.watchdog)
    wall = time.perf_counter() - t0

    cleaner = "on" if result.cleaner else "off"
    print(
        f"serve — {result.clients} clients / {result.tenants} tenants, "
        f"policy={result.policy}, cleaner={cleaner}, "
        f"{result.requests} requests ({result.failed} failed), "
        f"{result.elapsed_seconds:.2f}s simulated, {wall:.2f}s wall"
    )
    print(
        f"loop: {result.events_fired} events, {result.cleaner_passes} cleaner "
        f"passes, {result.checkpoints} checkpoints"
    )
    print(f"digest {result.digest}  latency-digest {result.latency_digest}")
    print()
    rows = []
    for name, pct in result.latency.items():
        rows.append(
            [
                name,
                pct["count"],
                f"{pct['p50']:.4f}",
                f"{pct['p95']:.4f}",
                f"{pct['p99']:.4f}",
                f"{pct['p999']:.4f}",
                f"{pct['max']:.4f}",
            ]
        )
    print(
        render_table(
            ["histogram", "n", "p50", "p95", "p99", "p999", "max"],
            rows,
            title="request latency (simulated seconds)",
        )
    )
    cleaning = result.tenant_cleaning_seconds
    if cleaning:
        print()
        print(
            render_table(
                ["tenant", "cleaning seconds"],
                [[t, f"{s:.4f}"] for t, s in sorted(cleaning.items())],
                title="cleaner interference by tenant",
            )
        )
    if result.timeline:
        tl = result.timeline
        print()
        print(
            f"timeline: {tl['samples']} samples (stride {tl['stride']}), "
            f"{len(tl['annotations'])} annotation(s), digest {tl['digest']}"
        )
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"\nwrote {args.json_out}")
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    """Record (or load) a flight-recorder timeline and render dashboards.

    Exit 0 always for successful runs — the dashboard is diagnostic, not
    a gate; gating happens in ``bench-diff`` on the curve-level metrics.
    Exit 2 when ``--load`` cannot parse the file.
    """
    from repro.obs import (
        Observation,
        TimelineFormatError,
        load_timeline_jsonl,
        render_dashboard,
    )

    if args.load:
        try:
            header, store = load_timeline_jsonl(args.load)
        except TimelineFormatError as exc:
            print(f"timeline: {exc}", file=sys.stderr)
            return 2
        trailer = header.get("trailer", {})
        print(
            f"loaded {args.load}: schema {header.get('schema')}, "
            f"{len(store)} samples, {len(store.columns)} columns, "
            f"stride {store.stride}"
        )
        if trailer.get("digest"):
            print(f"digest {trailer['digest']}")
        print()
        print(
            render_dashboard(
                store, tenant=args.tenant, source=args.source, width=args.width
            )
        )
        return 0

    from repro.server import ServerConfig, WorkloadConfig, run_server

    workload = WorkloadConfig(
        clients=args.clients,
        tenants=args.tenants,
        ops_per_client=args.ops,
        files_per_client=args.files,
        file_size=args.file_size,
        mode=args.mode,
        think_seconds=args.think,
        heavy_fraction=args.heavy_fraction,
        seed=args.seed,
        sync_writes=args.sync_writes,
    )
    config = ServerConfig(
        workload=workload,
        policy=args.policy,
        quantum=args.quantum,
        cleaner=not args.no_cleaner,
        nvram=args.nvram,
        timeline=True,
        timeline_cadence=args.cadence,
        timeline_max_samples=args.max_samples,
        slo_latency=args.slo_latency,
        slo_target=args.slo_target,
    )
    obs = Observation(ring_capacity=4096)
    t0 = time.perf_counter()
    result = run_server(config, obs=obs, watchdog=args.watchdog)
    wall = time.perf_counter() - t0
    recorder = obs.timeline

    print(
        f"timeline — {result.clients} clients / {result.tenants} tenants, "
        f"policy={result.policy}, {result.requests} requests, "
        f"{result.elapsed_seconds:.2f}s simulated, {wall:.2f}s wall"
    )
    print(f"digest {result.digest}  latency-digest {result.latency_digest}")
    print()
    print(
        render_dashboard(
            recorder.store,
            summary=recorder.summary(),
            tenant=args.tenant,
            source=args.source,
            width=args.width,
        )
    )
    if args.export:
        n = recorder.export_jsonl(args.export)
        print(f"\nwrote {n} samples to {args.export}")
    if args.csv:
        n = recorder.export_csv(args.csv)
        print(f"wrote {n} rows to {args.csv}")
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"wrote {args.json_out}")
    return 0


def cmd_bench_diff(args: argparse.Namespace) -> int:
    """Compare two BENCH_*.json records; exit 1 on regression."""
    from repro.obs import bench_diff, load_bench, render_bench_diff
    from repro.obs.report import BenchFormatError

    try:
        old = load_bench(args.old)
        new = load_bench(args.new)
    except BenchFormatError as exc:
        print(f"bench-diff: {exc}", file=sys.stderr)
        return 2
    diff = bench_diff(
        old, new, threshold=args.threshold, include_perf=not args.no_perf
    )
    if args.json:
        print(json.dumps(diff, indent=2))
    else:
        print(render_bench_diff(diff))
    return 1 if diff["verdict"] == "regressed" else 0


def cmd_torture(args: argparse.Namespace) -> int:
    variants = tuple(v for v in args.variants.split(",") if v)
    result = run_torture(
        args.workload,
        sample=args.sample,
        seed=args.seed,
        workers=args.workers,
        variants=variants,
        exhaustive=args.exhaustive,
        watchdog=args.watchdog,
        flash=args.flash,
        nvram=args.nvram,
    )

    per_variant: dict[str, dict[str, float]] = {}
    for p in result.points:
        stats = per_variant.setdefault(
            p.variant, {"points": 0, "violations": 0, "recovery": 0.0}
        )
        stats["points"] += 1
        stats["violations"] += len(p.violations)
        stats["recovery"] += p.recovery_elapsed
    rows = [
        [
            variant,
            int(stats["points"]),
            int(stats["violations"]),
            f"{stats['recovery'] / stats['points']:.3f}s",
        ]
        for variant, stats in sorted(per_variant.items())
    ]
    print(
        render_table(
            ["variant", "points", "violations", "mean recovery"],
            rows,
            title=(
                f"torture — {args.workload}, {len(result.points)}/"
                f"{result.population} crash points, {result.workers} worker(s), "
                f"{result.wall_seconds:.2f}s wall"
            ),
        )
    )
    print(
        f"stream: {result.total_blocks} blocks; outcome digest "
        f"{result.outcome_digest}; mean recovery "
        f"{result.mean_recovery_seconds:.3f} simulated seconds"
    )
    for p in result.violations:
        print(f"VIOLATION at cut={p.cut} variant={p.variant}:")
        for msg in p.violations:
            print(f"  {msg}")

    if args.json:
        import pathlib

        # Points whose fault localized itself (DiskCrashed / MediaError
        # carrying addr+op) are surfaced so a failure in CI names the
        # exact block and operation, not just a digest mismatch.
        fault_sites = [
            {
                "cut": p.cut,
                "variant": p.variant,
                "error_addr": p.error_addr,
                "error_op": p.error_op,
            }
            for p in result.points
            if p.error_addr is not None
        ]
        out = pathlib.Path(args.json)
        path = record_bench(
            args.bench_name,
            wall_seconds=result.wall_seconds,
            results_dir=out.parent if out.suffix else out,
            workers=result.workers,
            steps=len(result.points),
            extra={
                "workload": args.workload,
                "base_seed": args.seed,
                "sample": len(result.points),
                "population": result.population,
                "total_blocks": result.total_blocks,
                "variants": list(variants),
                "flash": args.flash,
                "nvram": args.nvram,
                "violations": result.violation_count,
                "mean_recovery_seconds": round(result.mean_recovery_seconds, 6),
                "outcome_digest": result.outcome_digest,
                "fault_sites": fault_sites,
            },
        )
        if out.suffix:  # an explicit file name, not a directory
            path.rename(out)
            path = out
        print(f"recorded {path}")
    return 1 if result.violations else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Operate on log-structured file system disk images.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("mkfs", help="create a fresh file system image")
    p.add_argument("image")
    p.add_argument("--size-mb", type=int, default=64)
    p.add_argument("--segment-kb", type=int, default=512)
    p.set_defaults(func=cmd_mkfs)

    p = sub.add_parser("ls", help="list a directory")
    p.add_argument("image")
    p.add_argument("path", nargs="?", default="/")
    p.set_defaults(func=cmd_ls)

    p = sub.add_parser("put", help="copy a host file into the image")
    p.add_argument("image")
    p.add_argument("local")
    p.add_argument("path")
    p.set_defaults(func=cmd_put)

    p = sub.add_parser("get", help="copy a file out of the image")
    p.add_argument("image")
    p.add_argument("path")
    p.add_argument("local", nargs="?")
    p.set_defaults(func=cmd_get)

    p = sub.add_parser("rm", help="remove a file or empty directory")
    p.add_argument("image")
    p.add_argument("path")
    p.set_defaults(func=cmd_rm)

    p = sub.add_parser("mkdir", help="create a directory")
    p.add_argument("image")
    p.add_argument("path")
    p.set_defaults(func=cmd_mkdir)

    p = sub.add_parser("stats", help="show file-system statistics")
    p.add_argument("image")
    p.add_argument("--json", action="store_true", help="print a metrics-registry snapshot as JSON")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "trace",
        help="run a workload under the event tracer and cross-check it",
        description=(
            "Run a live workload with the observability layer attached, "
            "print the event counts, the disk-time attribution, and the "
            "Table 2 / Table 4 numbers rederived from the trace, then "
            "verify the derived numbers agree bit-identically with the "
            "legacy counters. Exit 1 on any mismatch."
        ),
    )
    p.add_argument(
        "--workload", default="smallfile", choices=("smallfile", "andrew", "production")
    )
    p.add_argument("--files", type=int, default=2000, help="files for the smallfile workload")
    p.add_argument("--ring", type=int, default=0, help="ring capacity (0 = unbounded, the default, so derivation never drops events)")
    p.add_argument("--jsonl", default=None, help="write the trace through to this JSONL file")
    p.add_argument("--spans", action="store_true", help="render the span tree (durations + per-cause breakdown)")
    p.add_argument("--kind", default=None, help="only print events of this kind (e.g. clean.segment)")
    p.add_argument("--cause", default=None, help="only print events charged to this attribution cause")
    p.add_argument("--since", type=float, default=None, metavar="T", help="only print events at simulated time >= T")
    p.add_argument("--load", default=None, metavar="FILE", help="render a previously exported JSONL trace instead of running a workload")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "fsck",
        help="offline integrity check",
        description=(
            "Check an image without mounting it. Exit status: 0 clean, "
            "1 inconsistencies found, 2 image unreadable — so scripts and "
            "CI can shell out and branch on the result."
        ),
    )
    p.add_argument("image")
    p.add_argument("--json", action="store_true", help="print the report as JSON")
    p.set_defaults(func=cmd_fsck)

    p = sub.add_parser(
        "scrub",
        help="patrol-read the log and verify every recorded checksum",
        description=(
            "Mount an image and re-read every partial write in the log, "
            "verifying the summary CRCs and the per-block checksums, so "
            "silent bit-rot and latent sector errors surface before the "
            "data is needed. With --rescue, damaged segments have their "
            "still-verifiable live blocks rewritten to the log head and "
            "are quarantined. Exit status: 0 clean, 1 damage found."
        ),
    )
    p.add_argument("image")
    p.add_argument("--rescue", action="store_true", help="salvage and quarantine damaged segments")
    p.add_argument("--json", action="store_true", help="print the report as JSON")
    p.set_defaults(func=cmd_scrub)

    p = sub.add_parser("dump", help="inspect on-disk structures")
    p.add_argument("image")
    p.add_argument("--segment", type=int)
    p.add_argument("--checkpoints", action="store_true")
    p.set_defaults(func=cmd_dump)

    def add_sweep_grid(p: argparse.ArgumentParser) -> None:
        p.add_argument("--utils", default="0.2,0.4,0.6,0.75,0.8,0.9", help="comma-separated disk utilizations")
        p.add_argument("--policies", default="greedy,cost-benefit", help="comma-separated selection policies")
        p.add_argument("--grouping", default="age-sort", help="comma-separated grouping policies (none, age-sort)")
        p.add_argument("--patterns", default="uniform,hot-cold", help="comma-separated access patterns (uniform, hot-cold, hot-cold:H/A)")
        p.add_argument("--segments", type=int, default=100, help="segments on the simulated disk")
        p.add_argument("--blocks", type=int, default=128, help="blocks per segment")
        p.add_argument("--warmup-factor", type=float, default=8.0)
        p.add_argument("--measure-factor", type=float, default=4.0)
        p.add_argument("--max-windows", type=int, default=25)
        p.add_argument("--seed", type=int, default=42, help="base seed; per-point seeds derive from it")
        p.add_argument("--engine", default="auto", choices=ENGINES, help="simulator engine (auto = vectorized when numpy is available)")

    p = sub.add_parser(
        "sweep",
        help="run a cleaning-simulator sweep across a process pool",
        description=(
            "Sweep the Section 3.5 cleaning simulator over utilization x "
            "policy x grouping x pattern. Points run in parallel across a "
            "process pool; per-point seeds derive deterministically from "
            "--seed, so the same invocation always reproduces the same "
            "write costs regardless of worker count or engine choice."
        ),
    )
    add_sweep_grid(p)
    p.add_argument("--workers", type=int, default=None, help="process-pool size (default: $REPRO_SWEEP_WORKERS or cpu count)")
    p.add_argument("--json", default=None, help="record a BENCH_*.json here (file or directory)")
    p.add_argument("--bench-name", default="sweep", help="bench name used in the JSON record")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "profile",
        help="run a sweep under cProfile and rank the hotspots",
        description=(
            "Run the same grid as `sweep` in-process under cProfile and "
            "print the ranked hotspot report — the tool that found the "
            "vectorized engine's remaining per-round costs. --out dumps "
            "the raw pstats file for offline viewers."
        ),
    )
    add_sweep_grid(p)
    p.add_argument("--sort", default="tottime", choices=("tottime", "cumulative", "ncalls"), help="stat used to rank the report")
    p.add_argument("--limit", type=int, default=25, help="rows to print")
    p.add_argument("--out", default=None, help="also dump raw pstats data to this path")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "torture",
        help="crash-consistency torture: explore crash points in parallel",
        description=(
            "Record a workload's write stream once, then replay it to many "
            "crash points (clean cuts, torn blocks, reordered requests), "
            "run recovery at each, and verify the recovered namespace "
            "against a durability oracle plus a full lfsck. The 'media' "
            "variant instead replays the whole stream, ages the platter "
            "with seeded bit-rot / latent / transient faults, and verifies "
            "no read ever returns silently wrong data. Deterministic: the "
            "same --seed explores the same points with the same faults "
            "at any worker count. Exit 1 on any oracle violation."
        ),
    )
    p.add_argument("--workload", default="smallfile", choices=WORKLOADS)
    p.add_argument("--sample", type=int, default=200, help="crash points to draw (population = cuts x variants)")
    p.add_argument("--exhaustive", action="store_true", help="explore every crash point, ignoring --sample")
    p.add_argument("--variants", default=",".join(FAULT_MODES), help=f"comma-separated fault modes to explore (available: {','.join(TORTURE_MODES)})")
    p.add_argument("--seed", type=int, default=0, help="base seed; sample and per-point fault seeds derive from it")
    p.add_argument("--workers", type=int, default=None, help="process-pool size (default: $REPRO_SWEEP_WORKERS or cpu count)")
    p.add_argument("--json", default="benchmarks/results", help="record BENCH_<name>.json here (file or directory; '' disables)")
    p.add_argument("--bench-name", default="torture", help="bench name used in the JSON record")
    p.add_argument("--watchdog", action="store_true", help="run every point under the segment ledger + invariant watchdog (raises on any broken invariant; outcomes unchanged otherwise)")
    p.add_argument("--flash", action="store_true", help="record the workload on the NAND flash profile (erase-aware device, hot/cold segregation, wear leveling) instead of the Wren IV")
    p.add_argument("--nvram", action="store_true", help="record with the NVM staging board attached: crash cuts enumerate interleaved disk/NVM durable prefixes, and the nvm-media / nvm-dead variants become available")
    p.set_defaults(func=cmd_torture)

    p = sub.add_parser(
        "heatmap",
        help="ASCII per-segment utilization map of an image",
        description=(
            "Mount an image and render every segment as one glyph: "
            "utilization deciles .123456789#, _ for clean, Q for "
            "quarantined, * for the current log tail — the log's shape "
            "at a glance."
        ),
    )
    p.add_argument("image")
    p.add_argument("--width", type=int, default=64, help="segments per row")
    p.set_defaults(func=cmd_heatmap)

    p = sub.add_parser(
        "report",
        help="run a workload under the full observatory and print a run report",
        description=(
            "Run a workload with the tracer, time attribution, segment "
            "ledger, and invariant watchdog all attached, then print one "
            "consolidated report: write cost, busy-time by cause, "
            "cleaning distributions (Figure 6 / Table 2 from the "
            "ledger), and segment-lifecycle statistics. --json-out also "
            "writes the report as JSON for archiving or diffing."
        ),
    )
    p.add_argument(
        "--workload", default="smallfile", choices=("smallfile", "largefile")
    )
    p.add_argument("--files", type=int, default=2000, help="files for the smallfile workload")
    p.add_argument("--file-mb", type=int, default=4, help="file size (MB) for the largefile workload")
    p.add_argument("--ring", type=int, default=4096, help="ring capacity (0 = unbounded)")
    p.add_argument("--flash", action="store_true", help="run the workload on the NAND flash profile; the report gains a flash wear/TRIM section")
    p.add_argument("--timeline", action="store_true", help="attach the flight recorder; the report gains a timeline section")
    p.add_argument("--timeline-cadence", type=float, default=0.05, help="flight-recorder cadence in simulated seconds")
    p.add_argument("--json-out", default=None, help="also write the report as JSON to this path")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "serve",
        help="run the multi-tenant file server experiment",
        description=(
            "Serve a simulated client population through the event-loop "
            "front-end: per-tenant namespaces, a pluggable admission "
            "policy (FIFO or deficit round-robin), background cleaner "
            "passes and checkpoints interleaved as loop events, and "
            "latency histograms per tenant. Deterministic: the same "
            "--seed reproduces the same event order and the same "
            "digests, bit for bit."
        ),
    )
    p.add_argument("--clients", type=int, default=1000, help="simulated clients")
    p.add_argument("--tenants", type=int, default=4, help="tenants (clients assigned round-robin)")
    p.add_argument("--ops", type=int, default=4, help="measured requests per client after setup")
    p.add_argument("--files", type=int, default=2, help="working-set files per client")
    p.add_argument("--file-size", type=int, default=1024, help="file / write payload bytes")
    p.add_argument("--mode", default="closed", choices=("closed", "open"), help="closed-loop (think time) or open-loop (fixed rate) arrivals")
    p.add_argument("--think", type=float, default=0.25, help="closed-loop mean think seconds")
    p.add_argument("--policy", default="fifo", choices=("fifo", "drr"), help="admission policy")
    p.add_argument("--quantum", type=float, default=8.0, help="DRR quantum in cost units (KB)")
    p.add_argument("--no-cleaner", action="store_true", help="disable background cleaner passes (emergency cleaning only)")
    p.add_argument("--sync-writes", action="store_true", help="commit every mutating request with a per-handle fsync (mail-server pattern)")
    p.add_argument("--nvram", action="store_true", help="attach an NVM staging board so those fsyncs are absorbed as staging appends")
    p.add_argument("--seed", type=int, default=42, help="workload seed")
    p.add_argument("--watchdog", action="store_true", help="attach the segment ledger + invariant watchdog")
    p.add_argument("--timeline", action="store_true", help="attach the flight recorder (timeline summary rides in --json-out)")
    p.add_argument("--timeline-cadence", type=float, default=0.25, help="flight-recorder cadence in simulated seconds")
    p.add_argument("--slo-latency", type=float, default=0.0, help="latency SLO threshold for burn-rate tracking (0 = off)")
    p.add_argument("--json-out", default=None, help="write the full result as JSON to this path")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "timeline",
        help="flight recorder: record a server run and render sparkline dashboards",
        description=(
            "Run the multi-tenant server with the flight recorder "
            "attached: every registered metrics source plus derived "
            "gauges (instantaneous write cost, cleaner share, cache hit "
            "rate, per-tenant windowed latency percentiles) sampled on a "
            "simulated-time cadence into a bounded columnar store, with "
            "SLO burn-rate tracking and phase detection (cleaning "
            "storms, read-only degradation, NVM destage stalls). Renders "
            "ASCII sparkline dashboards; --tenant/--source focus them. "
            "Deterministic: the same seed reproduces the same samples "
            "and the same timeline digest, bit for bit. --load renders "
            "a previously exported JSONL timeline instead of running."
        ),
    )
    p.add_argument("--clients", type=int, default=200, help="simulated clients")
    p.add_argument("--tenants", type=int, default=4, help="tenants (clients assigned round-robin)")
    p.add_argument("--ops", type=int, default=4, help="measured requests per client after setup")
    p.add_argument("--files", type=int, default=2, help="working-set files per client")
    p.add_argument("--file-size", type=int, default=1024, help="file / write payload bytes")
    p.add_argument("--mode", default="closed", choices=("closed", "open"), help="closed-loop or open-loop arrivals")
    p.add_argument("--think", type=float, default=0.25, help="closed-loop mean think seconds")
    p.add_argument("--heavy-fraction", type=float, default=0.0, help="fraction of clients concentrated on tenant 0 (aggressor-tenant runs)")
    p.add_argument("--policy", default="fifo", choices=("fifo", "drr"), help="admission policy")
    p.add_argument("--quantum", type=float, default=8.0, help="DRR quantum in cost units (KB)")
    p.add_argument("--no-cleaner", action="store_true", help="disable background cleaner passes")
    p.add_argument("--sync-writes", action="store_true", help="commit every mutating request with a per-handle fsync")
    p.add_argument("--nvram", action="store_true", help="attach the NVM staging board")
    p.add_argument("--seed", type=int, default=42, help="workload seed")
    p.add_argument("--watchdog", action="store_true", help="attach the segment ledger + invariant watchdog")
    p.add_argument("--cadence", type=float, default=0.25, help="sampling cadence in simulated seconds")
    p.add_argument("--max-samples", type=int, default=512, help="store bound; past it, samples thin 2:1 and the cadence doubles")
    p.add_argument("--slo-latency", type=float, default=0.0, help="per-request latency SLO threshold in simulated seconds (0 = no SLO tracking)")
    p.add_argument("--slo-target", type=float, default=0.99, help="SLO success-fraction target")
    p.add_argument("--tenant", default=None, help="focus the dashboard on one tenant's latency/SLO rows")
    p.add_argument("--source", default=None, help="focus the dashboard on one metrics source (e.g. cleaner, cache)")
    p.add_argument("--width", type=int, default=64, help="sparkline width in characters")
    p.add_argument("--export", default=None, metavar="FILE", help="export the timeline as framed JSONL")
    p.add_argument("--csv", default=None, metavar="FILE", help="export the timeline as CSV")
    p.add_argument("--json-out", default=None, help="write the full server result as JSON to this path")
    p.add_argument("--load", default=None, metavar="FILE", help="render a previously exported JSONL timeline instead of running")
    p.set_defaults(func=cmd_timeline)

    p = sub.add_parser(
        "bench-diff",
        help="compare two BENCH_*.json records and issue a verdict",
        description=(
            "Diff two benchmark records metric by metric. Metrics with a "
            "known better-direction get regressed/improved/unchanged "
            "verdicts (beyond --threshold, relative); exact counters like "
            "violations regress on any increase; everything else is "
            "informational. Exit status: 0 ok, 1 regression, 2 unreadable "
            "input. --no-perf makes wall-clock-dependent metrics "
            "informational, for records from different machines."
        ),
    )
    p.add_argument("old")
    p.add_argument("new")
    p.add_argument("--threshold", type=float, default=0.05, help="relative change needed for a verdict (default 5%%)")
    p.add_argument("--no-perf", action="store_true", help="wall-clock metrics (steps/s, wall seconds) become informational")
    p.add_argument("--json", action="store_true", help="print the diff as JSON")
    p.set_defaults(func=cmd_bench_diff)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
