"""Command-line interface: operate on persistent LFS disk images.

Usage (after ``pip install -e .``)::

    python -m repro mkfs demo.lfs --size-mb 64
    python -m repro put demo.lfs README.md /docs/readme.md
    python -m repro ls demo.lfs /docs
    python -m repro get demo.lfs /docs/readme.md out.md
    python -m repro stats demo.lfs
    python -m repro fsck demo.lfs
    python -m repro dump demo.lfs --segment 0

Every mutating command mounts the image (running roll-forward if the
image was not cleanly unmounted), performs the operation, checkpoints,
and saves the image back — so images on disk are always recoverable.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.config import LFSConfig
from repro.core.filesystem import LFS
from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry
from repro.disk.image import load_disk, save_disk
from repro.tools.dumplog import dump_checkpoints, dump_segment, dump_superblock
from repro.tools.lfsck import check_filesystem


def _mount(image: str) -> tuple[Disk, LFS]:
    disk = load_disk(image)
    return disk, LFS.mount(disk)


def cmd_mkfs(args: argparse.Namespace) -> int:
    geometry = DiskGeometry.wren4(num_blocks=args.size_mb * 256)
    disk = Disk(geometry)
    fs = LFS.format(disk, LFSConfig(segment_bytes=args.segment_kb * 1024))
    fs.unmount()
    save_disk(disk, args.image)
    print(
        f"created {args.image}: {args.size_mb}MB, "
        f"{fs.layout.num_segments} segments of {args.segment_kb}KB"
    )
    return 0


def cmd_ls(args: argparse.Namespace) -> int:
    disk, fs = _mount(args.image)
    for name in fs.readdir(args.path):
        st = fs.stat(args.path.rstrip("/") + "/" + name)
        kind = "d" if st.is_directory else "-"
        print(f"{kind} {st.size:>10}  {name}")
    return 0


def cmd_put(args: argparse.Namespace) -> int:
    with open(args.local, "rb") as fh:
        data = fh.read()
    disk, fs = _mount(args.image)
    fs.write_file(args.path, data)
    fs.unmount()
    save_disk(disk, args.image)
    print(f"wrote {len(data)} bytes to {args.path}")
    return 0


def cmd_get(args: argparse.Namespace) -> int:
    disk, fs = _mount(args.image)
    data = fs.read(args.path)
    if args.local:
        with open(args.local, "wb") as fh:
            fh.write(data)
        print(f"read {len(data)} bytes to {args.local}")
    else:
        sys.stdout.buffer.write(data)
    return 0


def cmd_rm(args: argparse.Namespace) -> int:
    disk, fs = _mount(args.image)
    fs.unlink(args.path)
    fs.unmount()
    save_disk(disk, args.image)
    print(f"removed {args.path}")
    return 0


def cmd_mkdir(args: argparse.Namespace) -> int:
    disk, fs = _mount(args.image)
    fs.mkdir(args.path)
    fs.unmount()
    save_disk(disk, args.image)
    print(f"created directory {args.path}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    disk, fs = _mount(args.image)
    print(f"disk utilization  {fs.disk_capacity_utilization:.1%}")
    print(f"clean segments    {fs.usage.clean_count} / {fs.layout.num_segments}")
    print(f"live inodes       {fs.imap.live_count}")
    print(f"write cost        {fs.write_cost:.2f}")
    print(f"segments cleaned  {fs.cleaner.stats.segments_cleaned} (this session)")
    print(f"simulated time    {disk.clock.now:.3f}s")
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    disk = load_disk(args.image)
    report = check_filesystem(disk)
    print(report.render())
    return 0 if report.ok else 1


def cmd_dump(args: argparse.Namespace) -> int:
    disk = load_disk(args.image)
    if args.segment is not None:
        print(dump_segment(disk, args.segment))
    elif args.checkpoints:
        print(dump_checkpoints(disk))
    else:
        print(dump_superblock(disk))
        print()
        print(dump_checkpoints(disk))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Operate on log-structured file system disk images.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("mkfs", help="create a fresh file system image")
    p.add_argument("image")
    p.add_argument("--size-mb", type=int, default=64)
    p.add_argument("--segment-kb", type=int, default=512)
    p.set_defaults(func=cmd_mkfs)

    p = sub.add_parser("ls", help="list a directory")
    p.add_argument("image")
    p.add_argument("path", nargs="?", default="/")
    p.set_defaults(func=cmd_ls)

    p = sub.add_parser("put", help="copy a host file into the image")
    p.add_argument("image")
    p.add_argument("local")
    p.add_argument("path")
    p.set_defaults(func=cmd_put)

    p = sub.add_parser("get", help="copy a file out of the image")
    p.add_argument("image")
    p.add_argument("path")
    p.add_argument("local", nargs="?")
    p.set_defaults(func=cmd_get)

    p = sub.add_parser("rm", help="remove a file or empty directory")
    p.add_argument("image")
    p.add_argument("path")
    p.set_defaults(func=cmd_rm)

    p = sub.add_parser("mkdir", help="create a directory")
    p.add_argument("image")
    p.add_argument("path")
    p.set_defaults(func=cmd_mkdir)

    p = sub.add_parser("stats", help="show file-system statistics")
    p.add_argument("image")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("fsck", help="offline integrity check")
    p.add_argument("image")
    p.set_defaults(func=cmd_fsck)

    p = sub.add_parser("dump", help="inspect on-disk structures")
    p.add_argument("image")
    p.add_argument("--segment", type=int)
    p.add_argument("--checkpoints", action="store_true")
    p.set_defaults(func=cmd_dump)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
