"""Incremental cleaner victim selection: a lazy-invalidation heap.

Both cleaners — the Section 3.5 simulator's and the real file system's —
used to re-scan and fully re-sort every candidate segment on every
cleaning pass: an O(S log S) cost paid roughly every segment's worth of
writes, which dominates sweep wall-clock. Lomet & Luo ("Efficiently
Reclaiming Space in a Log Structured Store") make the same observation
for production log-structured stores: victim selection must be
incremental, not a full rescan.

:class:`LazyVictimHeap` maintains a min-heap of ``(score, seg)`` entries
over an authoritative ``seg -> score`` map. Updates push a fresh entry
and never delete in place; an entry is *stale* once the map has moved
on, and stale entries are discarded as they surface at the top. When
stale entries outnumber live ones by ``rebuild_factor`` the heap is
rebuilt from the map, bounding memory and amortized pop cost.

Selection order is exactly ``sorted(candidates, key=score)`` with ties
broken by ascending segment number — bit-identical to the legacy stable
full sort over an ascending candidate list, which is what lets the
incremental path replace the sort without changing any simulation or
cleaning result. Time-dependent scores (the cost-benefit policy's age
term moves with the clock) cannot live in a persistent heap; for those
:func:`partial_sort` provides the fallback path — a ``heapq.nsmallest``
style top-k selection, O(S log k) instead of O(S log S), with the same
stable tie-breaking as a full sort.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


def partial_sort(
    candidates: Sequence[T], count: int, key: Callable[[T], float]
) -> list[T]:
    """The first ``count`` items of ``sorted(candidates, key=key)``.

    Explicitly decorates with the original index so ties break exactly
    like a stable full sort, independent of the heapq implementation.
    """
    if count >= len(candidates):
        decorated = sorted((key(c), i) for i, c in enumerate(candidates))
    else:
        decorated = heapq.nsmallest(
            count, ((key(c), i) for i, c in enumerate(candidates))
        )
    return [candidates[i] for _, i in decorated]


class LazyVictimHeap:
    """A min-heap of ``(score, seg)`` with lazy invalidation.

    ``update`` and ``remove`` are O(log n) amortized; ``select`` pops
    victims in exact ``(score, seg)`` order and has *peek* semantics —
    every entry it consumes is pushed back, so repeated selection
    without intervening updates returns the same victims.
    """

    def __init__(self, *, rebuild_factor: float = 4.0, min_rebuild: int = 64) -> None:
        self._heap: list[tuple[float, int]] = []
        self._score: dict[int, float] = {}
        self.rebuild_factor = rebuild_factor
        self.min_rebuild = min_rebuild
        # introspection counters (exposed for tests and benchmarks)
        self.rebuilds = 0
        self.stale_discards = 0

    def __len__(self) -> int:
        return len(self._score)

    def __contains__(self, seg: int) -> bool:
        return seg in self._score

    def __iter__(self) -> Iterable[int]:
        return iter(self._score)

    def score_of(self, seg: int) -> float | None:
        """The authoritative score of ``seg`` (None if absent)."""
        return self._score.get(seg)

    def update(self, seg: int, score: float) -> None:
        """Insert ``seg`` or change its score; the old entry goes stale."""
        if self._score.get(seg) == score:
            return
        self._score[seg] = score
        heapq.heappush(self._heap, (score, seg))
        self._maybe_rebuild()

    def remove(self, seg: int) -> None:
        """Drop ``seg``; any heap entries for it go stale."""
        self._score.pop(seg, None)

    def _maybe_rebuild(self) -> None:
        if len(self._heap) >= self.min_rebuild and len(self._heap) > (
            self.rebuild_factor * max(1, len(self._score))
        ):
            self._heap = [(score, seg) for seg, score in self._score.items()]
            heapq.heapify(self._heap)
            self.rebuilds += 1

    def select(
        self,
        count: int,
        *,
        exclude: Callable[[int], bool] | None = None,
        stop_score: float | None = None,
    ) -> list[int]:
        """Up to ``count`` victims in exact ``(score, seg)`` order.

        ``exclude`` skips segments that are temporarily not candidates
        (they stay in the heap); ``stop_score`` ends the selection as
        soon as the best remaining score reaches it (used to refuse
        fully-live segments, which can never yield free space).
        """
        heap = self._heap
        victims: list[int] = []
        seen: set[int] = set()
        push_back: list[tuple[float, int]] = []
        while len(victims) < count and heap:
            score, seg = heapq.heappop(heap)
            if self._score.get(seg) != score or seg in seen:
                self.stale_discards += 1
                continue
            if stop_score is not None and score >= stop_score:
                push_back.append((score, seg))
                break
            seen.add(seg)
            push_back.append((score, seg))
            if exclude is not None and exclude(seg):
                continue
            victims.append(seg)
        for entry in push_back:
            heapq.heappush(heap, entry)
        return victims
