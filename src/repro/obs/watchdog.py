"""The invariant watchdog: cross-layer assertions, continuously.

Totals checked once at the end of a run can drift for a million events
and still cancel out by luck; the watchdog instead re-asserts the
system's cross-layer invariants *as events arrive*, so the first
violating event is the one in hand when it fires. It is an opt-in
tracer subscriber (install with ``Watchdog(...).install(obs)``) and
costs nothing when absent.

Invariants held (each raises a typed :class:`InvariantViolation` naming
the invariant and carrying the offending event):

- **attribution-sums-to-busy** — on every disk event, the per-cause
  attributed seconds sum to the device's ``busy_time`` (retry backoff
  charges the wall clock, never busy time);
- **busy-le-elapsed** — disk busy time never exceeds elapsed simulated
  time (a violation means some path double-charged the clock);
- **ledger-mirrors-usage** — on segment-lifecycle events, the ledger's
  live-byte mirror equals ``SegmentUsageTable.total_live_bytes()``
  exactly, and per-segment on every ``log.write``;
- **cleaner-conservation** — every live block the cleaner identified
  was rewritten, rescued, or declared lost: ``live_blocks_seen ==
  live_blocks_moved + blocks_rescued + blocks_lost`` at every
  lifecycle event;
- **no-reopen-quarantined** — a quarantined segment never takes log
  traffic again;
- **cleaned-u-matches-mirror** — the utilization a ``clean.segment``
  event reports for a non-empty victim equals the mirror's view of that
  segment at that instant;
- **tenant-within-total** — seconds charged inside tenant scopes never
  exceed the total attributed seconds (the tenant matrix is a
  decomposition of a *subset* of busy time, never an over-count);
- **erase-before-reuse** — on a flash disk, every page a ``disk.write``
  just landed on is tracked as programmed and not trimmed (a page can
  only be programmed after its erase block was erased when needed);
- **trim-covers-no-live** — a ``flash.trim`` only ever covers a segment
  the usage table (and the ledger mirror) holds at zero live bytes;
- **erase-conservation** — the per-erase-block wear ledger's total
  grows in lockstep with the device's ``erases`` counter;
- **acked-sync-durable** — every acknowledged ``fs.sync`` left zero
  dirty state that is neither staged in NVM nor flushed to the log
  (the ack really is a durability promise);
- **nvm-truncate-covered-by-disk** — the NVM staging log is only ever
  truncated when no covered state remains dirty (the flush that
  justified the truncate really happened);
- **destage-conservation** — every record appended to the NVM log since
  the last truncate is accounted for by the next truncate (records
  never vanish from the staging log without a destage).
"""

from __future__ import annotations

from repro.obs.events import (
    CHECKPOINT_WRITE,
    CLEAN_PASS,
    CLEAN_QUARANTINE,
    CLEAN_SEGMENT,
    DISK_READ,
    DISK_WRITE,
    FLASH_TRIM,
    FS_SYNC,
    LOG_SEGMENT_OPEN,
    LOG_WRITE,
    NVM_APPEND,
    NVM_TRUNCATE,
    Event,
)

#: Event kinds that mark a segment-lifecycle edge; the O(num_segments)
#: whole-table checks run only here, keeping per-event cost bounded.
_LIFECYCLE_KINDS = frozenset(
    (CLEAN_PASS, CLEAN_SEGMENT, CLEAN_QUARANTINE, CHECKPOINT_WRITE, LOG_SEGMENT_OPEN)
)


class InvariantViolation(AssertionError):
    """A cross-layer invariant failed; carries the offending event."""

    def __init__(self, invariant: str, message: str, event: Event | None = None):
        self.invariant = invariant
        self.event = event
        at = ""
        if event is not None:
            at = f" [at {event.kind} t={event.time:.6f} fields={event.fields}]"
        super().__init__(f"[{invariant}] {message}{at}")


class Watchdog:
    """Opt-in continuous invariant checker over the live event stream."""

    def __init__(self, *, ledger=None, tolerance: float = 1e-6) -> None:
        self.ledger = ledger
        self.tolerance = tolerance
        self.events_seen = 0
        self.checks_run = 0
        self._obs = None
        self._fs = None
        #: quarantine verdicts heard from the event stream itself
        self.quarantined: set[int] = set()
        # busy_time rebase across Disk.reset_stats (attribution keeps
        # accumulating while the device counter restarts from zero) and
        # across attaching to a disk that was already busy before this
        # observation existed (e.g. a remount): only busy time accrued
        # *after* the baseline is attributable here.
        self._busy_offset = 0.0
        self._last_busy = 0.0
        self._busy_baseline: float | None = None
        # (wear-ledger total, device erases) at first sight; both grow
        # together from there or the wear accounting leaks.
        self._erase_baseline: tuple[int, int] | None = None
        # NVM appends counted since the last truncate; None until the
        # first truncate establishes a known-empty staging log (records
        # staged before this watchdog attached are otherwise uncountable).
        self._nvm_counted: int | None = None

    def install(self, obs) -> "Watchdog":
        """Subscribe to an :class:`~repro.obs.observation.Observation`."""
        self._obs = obs
        obs.subscribe(self)
        return self

    def on_attach(self, fs) -> None:
        self._fs = fs
        if hasattr(fs, "usage"):
            self.quarantined.update(fs.usage.quarantined_segments())

    # ------------------------------------------------------------------

    def _effective_busy(self) -> float:
        io = self._obs.registry.source("io")
        busy = io.busy_time
        if "nvm" in self._obs.registry.names():
            # The staging board is a second device; attribution covers
            # the busy time of both persistence domains.
            busy += self._obs.registry.source("nvm").busy_time
        if self._busy_baseline is None:
            # First sight of the device: any busy time it accrued beyond
            # what this observation attributed predates the attach.
            self._busy_baseline = max(0.0, busy - self._obs.attribution.total)
        if busy < self._last_busy - 1e-12:  # stats object was reset
            self._busy_offset += self._last_busy - self._busy_baseline
            self._busy_baseline = 0.0
        self._last_busy = busy
        return self._busy_offset + busy - self._busy_baseline

    def on_event(self, event: Event) -> None:
        self.events_seen += 1
        kind = event.kind
        if kind in (DISK_READ, DISK_WRITE):
            self._check_attribution(event)
            if kind == DISK_WRITE:
                self._check_flash_programmed(event)
            return
        if kind in (LOG_SEGMENT_OPEN, LOG_WRITE):
            self._check_no_reopen(event)
        if kind == LOG_WRITE:
            self._check_segment_mirror(event)
        if kind == CLEAN_SEGMENT:
            self._check_cleaned_utilization(event)
        if kind == CLEAN_QUARANTINE:
            self.quarantined.add(event.fields["segment"])
        if kind == FLASH_TRIM:
            self._check_trim_dead(event)
        if kind == FS_SYNC:
            self._check_sync_durable(event)
        if kind == NVM_APPEND:
            if self._nvm_counted is not None:
                self._nvm_counted += 1
        if kind == NVM_TRUNCATE:
            self._check_nvm_truncate(event)
        if kind in _LIFECYCLE_KINDS:
            self._check_ledger_totals(event)
            self._check_cleaner_conservation(event)
            self._check_erase_conservation(event)

    # ------------------------------------------------------------------
    # individual invariants

    def _check_attribution(self, event: Event) -> None:
        if self._obs is None or "io" not in self._obs.registry.names():
            return
        self.checks_run += 1
        busy = self._effective_busy()
        attributed = self._obs.attribution.total
        if abs(attributed - busy) > self.tolerance:
            raise InvariantViolation(
                "attribution-sums-to-busy",
                f"per-cause seconds sum to {attributed:.9f}s but the disk "
                f"reports busy_time {busy:.9f}s",
                event,
            )
        if busy > event.time + 1e-9:
            raise InvariantViolation(
                "busy-le-elapsed",
                f"busy_time {busy:.9f}s exceeds elapsed simulated time "
                f"{event.time:.9f}s",
                event,
            )
        tenant_total = self._obs.attribution.tenant_total
        if tenant_total > attributed + self.tolerance:
            raise InvariantViolation(
                "tenant-within-total",
                f"tenant-attributed seconds {tenant_total:.9f}s exceed total "
                f"attributed seconds {attributed:.9f}s",
                event,
            )

    def _check_no_reopen(self, event: Event) -> None:
        seg_no = event.fields["segment"]
        self.checks_run += 1
        if seg_no in self.quarantined or (
            self._fs is not None
            and hasattr(self._fs, "usage")
            and self._fs.usage.get(seg_no).quarantined
        ):
            raise InvariantViolation(
                "no-reopen-quarantined",
                f"quarantined segment {seg_no} is taking log traffic",
                event,
            )

    def _check_segment_mirror(self, event: Event) -> None:
        if self.ledger is None or self._fs is None or not hasattr(self._fs, "usage"):
            return
        self.checks_run += 1
        seg_no = event.fields["segment"]
        mirrored = self.ledger.live_bytes_of(seg_no)
        actual = self._fs.usage.get(seg_no).live_bytes
        if mirrored != actual:
            raise InvariantViolation(
                "ledger-mirrors-usage",
                f"segment {seg_no}: ledger mirrors {mirrored} live bytes, "
                f"usage table has {actual}",
                event,
            )

    def _check_cleaned_utilization(self, event: Event) -> None:
        if self.ledger is None or self.ledger.segment_bytes is None:
            return
        if event.fields.get("empty"):
            return  # the empties path reports 0.0 after mark_clean
        self.checks_run += 1
        seg_no = event.fields["segment"]
        reported = event.fields["utilization"]
        mirrored = min(
            1.0, self.ledger.live_bytes_of(seg_no) / self.ledger.segment_bytes
        )
        if reported != mirrored:
            raise InvariantViolation(
                "cleaned-u-matches-mirror",
                f"segment {seg_no}: clean.segment reports u={reported!r} but "
                f"the ledger mirror computes u={mirrored!r}",
                event,
            )

    def _check_ledger_totals(self, event: Event) -> None:
        if self.ledger is None or self._fs is None or not hasattr(self._fs, "usage"):
            return
        self.checks_run += 1
        mirrored = self.ledger.total_live_bytes()
        actual = self._fs.usage.total_live_bytes()
        if mirrored != actual:
            raise InvariantViolation(
                "ledger-mirrors-usage",
                f"ledger mirrors {mirrored} total live bytes, usage table "
                f"has {actual}",
                event,
            )

    def _check_flash_programmed(self, event: Event) -> None:
        fs = self._fs
        if fs is None or not hasattr(fs, "disk"):
            return
        fl = getattr(fs.disk, "flash", None)
        if fl is None:
            return
        self.checks_run += 1
        addr = event.fields["addr"]
        span = range(addr, addr + event.fields["blocks"])
        missing = [a for a in span if a not in fl.programmed]
        if missing:
            raise InvariantViolation(
                "erase-before-reuse",
                f"pages {missing[:4]} were just written but the device does "
                f"not track them as programmed (erase bookkeeping was "
                f"bypassed)",
                event,
            )
        stale = [a for a in span if a in fl.trimmed]
        if stale:
            raise InvariantViolation(
                "erase-before-reuse",
                f"pages {stale[:4]} are still marked trimmed after being "
                f"rewritten",
                event,
            )

    def _check_trim_dead(self, event: Event) -> None:
        seg_no = event.fields["segment"]
        self.checks_run += 1
        if self._fs is not None and hasattr(self._fs, "usage"):
            rec = self._fs.usage.get(seg_no)
            if rec.live_bytes != 0 or not rec.clean:
                raise InvariantViolation(
                    "trim-covers-no-live",
                    f"segment {seg_no} was trimmed while the usage table "
                    f"holds {rec.live_bytes} live bytes "
                    f"(clean={rec.clean})",
                    event,
                )
        if self.ledger is not None and self.ledger.live_bytes_of(seg_no) != 0:
            raise InvariantViolation(
                "trim-covers-no-live",
                f"segment {seg_no} was trimmed while the ledger mirrors "
                f"{self.ledger.live_bytes_of(seg_no)} live bytes",
                event,
            )

    def _check_sync_durable(self, event: Event) -> None:
        self.checks_run += 1
        unstaged = event.fields.get("unstaged_dirty", 0)
        if unstaged != 0:
            raise InvariantViolation(
                "acked-sync-durable",
                f"sync acknowledged with {unstaged} dirty blocks neither "
                f"staged in NVM nor flushed to the log",
                event,
            )

    def _check_nvm_truncate(self, event: Event) -> None:
        self.checks_run += 1
        uncovered = event.fields.get("uncovered", 0)
        if uncovered != 0:
            raise InvariantViolation(
                "nvm-truncate-covered-by-disk",
                f"NVM log truncated while {uncovered} covered blocks are "
                f"still dirty (not yet durable in the on-disk log)",
                event,
            )
        dropped = event.fields.get("records", 0)
        if self._nvm_counted is not None and dropped != self._nvm_counted:
            raise InvariantViolation(
                "destage-conservation",
                f"NVM truncate dropped {dropped} records but "
                f"{self._nvm_counted} were appended since the last truncate",
                event,
            )
        self._nvm_counted = 0

    def _check_erase_conservation(self, event: Event) -> None:
        if self._obs is None:
            return
        names = self._obs.registry.names()
        if "flash" not in names or "io" not in names:
            return
        self.checks_run += 1
        wear_total = self._obs.registry.source("flash").erases_total
        device_erases = self._obs.registry.source("io").erases
        if self._erase_baseline is None:
            self._erase_baseline = (wear_total, device_erases)
        dw = wear_total - self._erase_baseline[0]
        de = device_erases - self._erase_baseline[1]
        if dw < 0 or de < 0:
            # reset_stats or restore_state moved a counter backwards out
            # from under us: re-baseline rather than fire falsely.
            self._erase_baseline = (wear_total, device_erases)
            return
        if dw != de:
            raise InvariantViolation(
                "erase-conservation",
                f"wear ledger grew by {dw} erases but the device counted "
                f"{de} since the baseline",
                event,
            )

    def _check_cleaner_conservation(self, event: Event) -> None:
        if self._obs is None or "cleaner" not in self._obs.registry.names():
            return
        self.checks_run += 1
        stats = self._obs.registry.source("cleaner")
        accounted = stats.live_blocks_moved + stats.blocks_rescued + stats.blocks_lost
        if stats.live_blocks_seen != accounted:
            raise InvariantViolation(
                "cleaner-conservation",
                f"cleaner identified {stats.live_blocks_seen} live blocks but "
                f"accounted for {accounted} "
                f"(moved {stats.live_blocks_moved} + rescued "
                f"{stats.blocks_rescued} + lost {stats.blocks_lost})",
                event,
            )
