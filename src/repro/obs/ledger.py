"""The segment-lifecycle ledger: every segment's biography, live.

The paper's argument lives in *distributions* — Figure 6's segment
utilization distribution under cost-benefit cleaning, Table 2's
"utilization at cleaning time" production statistics, the
age-vs-utilization bimodality that motivates the policy. The flat
counters give totals; the ledger reconstructs lives.

It subscribes to the tracer (``log.segment_open`` / ``log.write`` /
``clean.segment`` / ``clean.quarantine``) for lifecycle edges and
installs a :class:`~repro.core.seg_usage.SegmentUsageTable` observer for
byte-level liveness, maintaining per segment: birth sequence number,
block kinds written during its life, bounded utilization-over-time
samples, age at cleaning, and death cause. From closed lives it derives
the Figure 6 distribution and the Table 2 summary via the *same*
arithmetic as the legacy counters (:func:`repro.obs.derive.cleaning_summary`),
so the two paths agree bit-identically — and the watchdog can hold them
to that continuously.

The byte mirror tracks **every** segment (not just ones with an open
life), so ``total_live_bytes()`` and ``utilization_histogram()`` must
equal the usage table's own answers exactly, at any instant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.derive import cleaning_summary
from repro.obs.events import (
    CLEAN_QUARANTINE,
    CLEAN_SEGMENT,
    FLASH_ERASE,
    FLASH_TRIM,
    LOG_SEGMENT_OPEN,
    LOG_WRITE,
    NVM_APPEND,
    NVM_TRUNCATE,
    Event,
)

#: Cap on utilization-over-time samples retained per life; when full,
#: every other sample is discarded and the stride doubles, keeping a
#: bounded, evenly thinned history however long the life runs.
MAX_SAMPLES = 64


@dataclass
class SegmentLife:
    """One segment's biography from log-open to cleaning (or quarantine)."""

    segment: int
    opened_at: float
    birth_seq: int | None = None
    writes: int = 0
    blocks_by_kind: dict[str, int] = field(default_factory=dict)
    #: tenant -> blocks written into this segment on that tenant's
    #: behalf (``log.write`` events emitted inside a tenant scope);
    #: blocks written outside any scope are not tenant-attributed.
    blocks_by_tenant: dict[str, int] = field(default_factory=dict)
    live_bytes: int = 0
    last_write: float = 0.0
    #: (time, live_bytes) samples, thinned to at most MAX_SAMPLES
    samples: list[tuple[float, int]] = field(default_factory=list)
    death_cause: str | None = None  # "cleaned" | "cleaned-empty" | "quarantined"
    death_time: float | None = None
    death_utilization: float | None = None
    age_at_death: float | None = None
    #: opened by the cold (cleaner-output) cursor under hot/cold segregation
    cold: bool = False
    #: the file system TRIMmed this segment after its death
    trimmed: bool = False

    @property
    def closed(self) -> bool:
        return self.death_cause is not None


class SegmentLedger:
    """Live per-segment history, fed by trace events + seg-usage updates."""

    def __init__(self) -> None:
        self.segment_bytes: int | None = None
        #: open lives by segment number
        self.lives: dict[int, SegmentLife] = {}
        #: closed lives, in death order
        self.history: list[SegmentLife] = []
        #: mirror of CleanerStats.cleaned_utilizations, in event order
        self.cleaned_utilizations: list[float] = []
        #: segments retired by media errors (never to be reopened)
        self.quarantined: set[int] = set()
        #: byte-level mirror of the usage table: seg -> (live, clean, quar)
        self._mirror: dict[int, tuple[int, bool, bool]] = {}
        self._sample_stride: dict[int, int] = {}
        self._fs = None
        # Flash lifecycle totals (all zero off flash).
        self.erase_events = 0
        self.erases_by_reason: dict[str, int] = {}
        self.trim_events = 0
        self.trim_blocks = 0
        # NVM staging lifecycle totals (all zero without the board).
        # Conservation view for the watchdog/report: every record that
        # enters the staging log (append) must leave it via exactly one
        # truncate after a covering disk flush — destaged can never
        # exceed staged, and at quiesce the two agree.
        self.nvm_appends = 0
        self.nvm_bytes_staged = 0
        self.nvm_truncates = 0
        self.nvm_records_destaged = 0
        self.nvm_peak_used = 0
        #: most recent closed life per segment, for TRIM annotation
        self._last_closed: dict[int, SegmentLife] = {}

    def install(self, obs) -> "SegmentLedger":
        """Subscribe to an :class:`~repro.obs.observation.Observation`."""
        obs.subscribe(self)
        return self

    # ------------------------------------------------------------------
    # wiring

    def on_attach(self, fs) -> None:
        """Mirror the usage table of a newly attached LFS instance."""
        if not hasattr(fs, "usage"):  # FFS baseline has no segments
            return
        self._fs = fs
        self.segment_bytes = fs.usage.segment_bytes
        fs.usage.observer = self.on_usage
        for seg_no in range(fs.usage.num_segments):
            rec = fs.usage.get(seg_no)
            self._mirror[seg_no] = (rec.live_bytes, rec.clean, rec.quarantined)
            if rec.quarantined:
                self.quarantined.add(seg_no)

    def on_usage(self, seg_no: int, rec, when: float | None) -> None:
        """SegmentUsageTable observer: keep the byte mirror exact."""
        self._mirror[seg_no] = (rec.live_bytes, rec.clean, rec.quarantined)
        if rec.quarantined:
            self.quarantined.add(seg_no)
        life = self.lives.get(seg_no)
        if life is not None and not life.closed:
            life.live_bytes = rec.live_bytes
            life.last_write = rec.last_write
            self._sample(life, when if when is not None else rec.last_write)

    def _sample(self, life: SegmentLife, when: float) -> None:
        stride = self._sample_stride.setdefault(life.segment, 1)
        life.samples.append((when, life.live_bytes))
        if len(life.samples) > MAX_SAMPLES:
            life.samples = life.samples[::2]
            self._sample_stride[life.segment] = stride * 2

    # ------------------------------------------------------------------
    # event stream

    def on_event(self, event: Event) -> None:
        kind = event.kind
        if kind == LOG_SEGMENT_OPEN:
            self._open_life(event)
        elif kind == LOG_WRITE:
            self._record_write(event)
        elif kind == CLEAN_SEGMENT:
            self._close_life(
                event,
                cause="cleaned-empty" if event.fields.get("empty") else "cleaned",
                utilization=event.fields["utilization"],
            )
        elif kind == CLEAN_QUARANTINE:
            self._close_life(event, cause="quarantined", utilization=None)
            self.quarantined.add(event.fields["segment"])
        elif kind == FLASH_ERASE:
            self.erase_events += 1
            reason = event.fields.get("reason", "?")
            self.erases_by_reason[reason] = self.erases_by_reason.get(reason, 0) + 1
        elif kind == FLASH_TRIM:
            self.trim_events += 1
            self.trim_blocks += event.fields.get("blocks", 0)
            life = self._last_closed.get(event.fields["segment"])
            if life is not None:
                life.trimmed = True
        elif kind == NVM_APPEND:
            self.nvm_appends += 1
            self.nvm_bytes_staged += event.fields.get("bytes", 0)
            self.nvm_peak_used = max(self.nvm_peak_used, event.fields.get("used", 0))
        elif kind == NVM_TRUNCATE:
            self.nvm_truncates += 1
            self.nvm_records_destaged += event.fields.get("records", 0)

    def _open_life(self, event: Event) -> None:
        seg_no = event.fields["segment"]
        stale = self.lives.pop(seg_no, None)
        if stale is not None:  # should not happen; keep the evidence
            stale.death_cause = "reopened"
            stale.death_time = event.time
            self.history.append(stale)
        self._sample_stride.pop(seg_no, None)
        mirror = self._mirror.get(seg_no)
        life = SegmentLife(segment=seg_no, opened_at=event.time)
        life.cold = bool(event.fields.get("cold"))
        if mirror is not None:
            life.live_bytes = mirror[0]
        self.lives[seg_no] = life

    def _record_write(self, event: Event) -> None:
        life = self.lives.get(event.fields["segment"])
        if life is None or life.closed:
            return
        life.writes += 1
        if life.birth_seq is None:
            life.birth_seq = event.fields.get("seq")
        for kind_name, count in event.fields.get("kinds", {}).items():
            life.blocks_by_kind[kind_name] = life.blocks_by_kind.get(kind_name, 0) + count
        tenant = event.fields.get("tenant")
        if tenant is not None:
            life.blocks_by_tenant[tenant] = (
                life.blocks_by_tenant.get(tenant, 0) + event.fields.get("blocks", 0)
            )

    def _close_life(self, event: Event, *, cause: str, utilization) -> None:
        seg_no = event.fields["segment"]
        if utilization is not None:
            # Same float the cleaner appended to its own counter at the
            # same instant — the bit-identity the watchdog holds us to.
            self.cleaned_utilizations.append(utilization)
        life = self.lives.pop(seg_no, None)
        if life is None:
            # A segment written before this ledger attached (e.g. cleaned
            # right after a remount): synthesize a stub so death
            # statistics still count it.
            life = SegmentLife(segment=seg_no, opened_at=event.time)
            mirror = self._mirror.get(seg_no)
            if mirror is not None:
                life.live_bytes = mirror[0]
        life.death_cause = cause
        life.death_time = event.time
        life.death_utilization = utilization
        life.age_at_death = max(0.0, event.time - life.last_write)
        self.history.append(life)
        self._last_closed[seg_no] = life

    # ------------------------------------------------------------------
    # derived views

    def total_live_bytes(self) -> int:
        """Live bytes across the mirror; must equal the usage table's."""
        return sum(live for live, _clean, _quar in self._mirror.values())

    def live_bytes_of(self, seg_no: int) -> int:
        """Mirrored live bytes of one segment (0 if never seen)."""
        entry = self._mirror.get(seg_no)
        return entry[0] if entry is not None else 0

    def utilization_histogram(self, bins: int = 20) -> list[int]:
        """Live per-segment utilization histogram from the mirror.

        Same binning as ``SegmentUsageTable.utilization_histogram`` (clean
        and quarantined segments excluded), so the two are comparable
        integer-for-integer.
        """
        counts = [0] * bins
        if not self.segment_bytes:
            return counts
        for live, clean, quarantined in self._mirror.values():
            if clean or quarantined:
                continue
            u = min(1.0, live / self.segment_bytes)
            counts[min(bins - 1, int(u * bins))] += 1
        return counts

    def figure6_distribution(self, bins: int = 20) -> list[int]:
        """Figure 6: distribution of segment utilization *at cleaning*."""
        counts = [0] * bins
        for u in self.cleaned_utilizations:
            counts[min(bins - 1, int(u * bins))] += 1
        return counts

    def table2_summary(self) -> dict:
        """Table 2's cleaning stats via the shared derive arithmetic."""
        return cleaning_summary(self.cleaned_utilizations)

    def tenant_blocks(self) -> dict[str, int]:
        """Blocks written per tenant across every life (open and closed).

        The server report's "who filled the log" view: which tenants'
        data the cleaner will later have to move out of each segment.
        """
        totals: dict[str, int] = {}
        for life in list(self.lives.values()) + self.history:
            for tenant, blocks in life.blocks_by_tenant.items():
                totals[tenant] = totals.get(tenant, 0) + blocks
        return totals

    def death_causes(self) -> dict[str, int]:
        causes: dict[str, int] = {}
        for life in self.history:
            causes[life.death_cause] = causes.get(life.death_cause, 0) + 1
        return causes

    def stats(self) -> dict:
        """Summary dict for run reports."""
        ages = [l.age_at_death for l in self.history if l.age_at_death is not None]
        writes = [l.writes for l in self.history]
        out = {
            "lives_open": len(self.lives),
            "lives_closed": len(self.history),
            "death_causes": self.death_causes(),
            "quarantined": sorted(self.quarantined),
            "mean_age_at_death": (sum(ages) / len(ages)) if ages else 0.0,
            "mean_writes_per_life": (sum(writes) / len(writes)) if writes else 0.0,
            "total_live_bytes": self.total_live_bytes(),
            "segments_cleaned": len(self.cleaned_utilizations),
        }
        if self.erase_events or self.trim_events:
            all_lives = list(self.lives.values()) + self.history
            out["flash"] = {
                "erase_events": self.erase_events,
                "erases_by_reason": dict(sorted(self.erases_by_reason.items())),
                "trim_events": self.trim_events,
                "trim_blocks": self.trim_blocks,
                "lives_cold": sum(1 for l in all_lives if l.cold),
                "lives_trimmed": sum(1 for l in self.history if l.trimmed),
            }
        if self.nvm_appends or self.nvm_truncates:
            out["nvm"] = {
                "appends": self.nvm_appends,
                "bytes_staged": self.nvm_bytes_staged,
                "truncates": self.nvm_truncates,
                "records_destaged": self.nvm_records_destaged,
                "records_in_flight": self.nvm_appends - self.nvm_records_destaged,
                "peak_used_bytes": self.nvm_peak_used,
            }
        return out
