"""The event tracer: a ring buffer with optional write-through JSONL.

A :class:`Tracer` is deliberately dumb — it timestamps, filters, and
stores. Retention is a bounded ring (``capacity=None`` for unbounded,
which derivation-heavy harnesses use so no ``clean.segment`` or
``log.write`` event is ever dropped), optionally restricted to a set of
kinds so a long production run can record only the events it will derive
tables from. ``emitted_counts`` always counts every emit, before the
kind filter and before ring eviction, so a summary stays truthful even
when the ring dropped events.

:class:`NullTracer` is the disabled configuration: ``emit`` is a bound
no-op and ``enabled`` is False, so hook sites stay zero-cost beyond one
attribute check.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Iterable

from repro.obs.events import Event


class Tracer:
    """Records :class:`Event` objects into a bounded ring buffer."""

    enabled = True

    def __init__(
        self,
        capacity: int | None = 65536,
        *,
        kinds: Iterable[str] | None = None,
        jsonl_path: str | None = None,
    ) -> None:
        self.capacity = capacity
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._kinds = frozenset(kinds) if kinds is not None else None
        self.emitted_counts: dict[str, int] = {}
        self._jsonl = open(jsonl_path, "w") if jsonl_path else None

    def emit(self, kind: str, time: float, cause: str | None = None, **fields) -> None:
        """Record one event (dropped silently if the kind is filtered out)."""
        self.emitted_counts[kind] = self.emitted_counts.get(kind, 0) + 1
        if self._kinds is not None and kind not in self._kinds:
            return
        event = Event(time=time, kind=kind, cause=cause, fields=fields)
        self._ring.append(event)
        if self._jsonl is not None:
            self._jsonl.write(json.dumps(event.to_dict()) + "\n")

    def events(self, kind: str | None = None) -> list[Event]:
        """Retained events in emission order, optionally one kind only."""
        if kind is None:
            return list(self._ring)
        return [e for e in self._ring if e.kind == kind]

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def total_emitted(self) -> int:
        """Events emitted over the tracer's lifetime (pre-filter, pre-drop)."""
        return sum(self.emitted_counts.values())

    @property
    def dropped(self) -> int:
        """Events evicted from the ring (excludes kind-filtered emits)."""
        if self._kinds is None:
            return self.total_emitted - len(self._ring)
        kept = sum(n for k, n in self.emitted_counts.items() if k in self._kinds)
        return kept - len(self._ring)

    def export_jsonl(self, path: str) -> int:
        """Write the retained ring to ``path`` as JSONL; returns line count."""
        with open(path, "w") as fh:
            for event in self._ring:
                fh.write(json.dumps(event.to_dict()) + "\n")
        return len(self._ring)

    def close(self) -> None:
        """Flush and close the write-through JSONL file, if any."""
        if self._jsonl is not None:
            self._jsonl.close()
            self._jsonl = None


class NullTracer:
    """The disabled sink: every emit is a no-op."""

    enabled = False
    capacity = 0
    emitted_counts: dict[str, int] = {}

    def emit(self, kind: str, time: float, cause: str | None = None, **fields) -> None:
        pass

    def events(self, kind: str | None = None) -> list[Event]:
        return []

    def __len__(self) -> int:
        return 0

    def export_jsonl(self, path: str) -> int:
        with open(path, "w"):
            pass
        return 0

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()
