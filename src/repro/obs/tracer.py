"""The event tracer: a ring buffer with optional write-through JSONL.

A :class:`Tracer` is deliberately dumb — it timestamps, filters, and
stores. Retention is a bounded ring (``capacity=None`` for unbounded,
which derivation-heavy harnesses use so no ``clean.segment`` or
``log.write`` event is ever dropped), optionally restricted to a set of
kinds so a long production run can record only the events it will derive
tables from. ``emitted_counts`` always counts every emit, before the
kind filter and before ring eviction, so a summary stays truthful even
when the ring dropped events; ``dropped`` counts ring evictions
explicitly so a bounded run can *say* how much history it lost.

Live consumers (the segment ledger, the invariant watchdog) register via
:meth:`Tracer.subscribe`; subscribers see **every** emitted event, before
the kind filter and before ring eviction, so a bounded or filtered ring
never starves them.

JSONL framing (``TRACE_SCHEMA`` 2): the write-through file opens with a
``{"kind": "trace.header", "schema": N}`` line and closes with a
``trace.trailer`` line carrying total emit and drop counts (including a
``warning`` when the ring dropped events). :func:`load_trace_jsonl`
reads both framed and legacy headerless (schema 1) traces and fails with
a clear message — never a KeyError — on malformed or too-new input.

:class:`NullTracer` is the disabled configuration: ``emit`` is a bound
no-op and ``enabled`` is False, so hook sites stay zero-cost beyond one
attribute check.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Iterable

from repro.obs.events import TRACE_SCHEMA, Event

TRACE_HEADER_KIND = "trace.header"
TRACE_TRAILER_KIND = "trace.trailer"


class TraceFormatError(ValueError):
    """A trace JSONL file could not be understood (wrong schema, bad line)."""


class Tracer:
    """Records :class:`Event` objects into a bounded ring buffer."""

    enabled = True

    def __init__(
        self,
        capacity: int | None = 65536,
        *,
        kinds: Iterable[str] | None = None,
        jsonl_path: str | None = None,
    ) -> None:
        self.capacity = capacity
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._kinds = frozenset(kinds) if kinds is not None else None
        self.emitted_counts: dict[str, int] = {}
        self._dropped = 0
        self._subscribers: list[Callable[[Event], None]] = []
        self._jsonl = open(jsonl_path, "w") if jsonl_path else None
        if self._jsonl is not None:
            self._jsonl.write(
                json.dumps({"kind": TRACE_HEADER_KIND, "schema": TRACE_SCHEMA}) + "\n"
            )

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Deliver every future emit to ``callback`` (pre-filter, pre-drop)."""
        self._subscribers.append(callback)

    def emit(self, kind: str, time: float, cause: str | None = None, **fields) -> None:
        """Record one event (dropped silently if the kind is filtered out)."""
        self.emitted_counts[kind] = self.emitted_counts.get(kind, 0) + 1
        event = None
        if self._subscribers:
            event = Event(time=time, kind=kind, cause=cause, fields=fields)
            for callback in self._subscribers:
                callback(event)
        if self._kinds is not None and kind not in self._kinds:
            return
        if event is None:
            event = Event(time=time, kind=kind, cause=cause, fields=fields)
        if self.capacity is not None and len(self._ring) == self.capacity:
            self._dropped += 1
        self._ring.append(event)
        if self._jsonl is not None:
            self._jsonl.write(json.dumps(event.to_dict()) + "\n")

    def events(self, kind: str | None = None) -> list[Event]:
        """Retained events in emission order, optionally one kind only."""
        if kind is None:
            return list(self._ring)
        return [e for e in self._ring if e.kind == kind]

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def total_emitted(self) -> int:
        """Events emitted over the tracer's lifetime (pre-filter, pre-drop)."""
        return sum(self.emitted_counts.values())

    @property
    def dropped(self) -> int:
        """Events evicted from the ring (excludes kind-filtered emits)."""
        return self._dropped

    def export_jsonl(self, path: str) -> int:
        """Write the retained ring to ``path`` as framed JSONL; returns
        event line count (framing lines excluded)."""
        with open(path, "w") as fh:
            fh.write(json.dumps({"kind": TRACE_HEADER_KIND, "schema": TRACE_SCHEMA}) + "\n")
            for event in self._ring:
                fh.write(json.dumps(event.to_dict()) + "\n")
            fh.write(json.dumps(self._trailer()) + "\n")
        return len(self._ring)

    def _trailer(self) -> dict:
        trailer = {
            "kind": TRACE_TRAILER_KIND,
            "schema": TRACE_SCHEMA,
            "events": self.total_emitted,
            "ring_dropped": self._dropped,
        }
        if self._dropped:
            trailer["warning"] = (
                f"ring evicted {self._dropped} events; this file is complete "
                "(write-through) but in-memory derivations saw a window"
            )
        return trailer

    def close(self) -> None:
        """Write the trailer line, then flush and close the JSONL file."""
        if self._jsonl is not None:
            self._jsonl.write(json.dumps(self._trailer()) + "\n")
            self._jsonl.close()
            self._jsonl = None


class NullTracer:
    """The disabled sink: every emit is a no-op."""

    enabled = False
    capacity = 0
    emitted_counts: dict[str, int] = {}
    dropped = 0

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        pass

    def emit(self, kind: str, time: float, cause: str | None = None, **fields) -> None:
        pass

    def events(self, kind: str | None = None) -> list[Event]:
        return []

    def __len__(self) -> int:
        return 0

    def export_jsonl(self, path: str) -> int:
        with open(path, "w"):
            pass
        return 0

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()


def load_trace_jsonl(path: str) -> tuple[dict, list[Event]]:
    """Read a trace JSONL file into ``(header, events)``.

    Tolerant of legacy schema-1 traces (no header line): those get a
    synthetic ``{"schema": 1}`` header. A trailer line, when present, is
    folded into the header under ``"trailer"``. Raises
    :class:`TraceFormatError` with a human-readable message on malformed
    lines, missing kinds, or a schema newer than this reader supports.
    """
    header: dict = {"schema": 1}
    events: list[Event] = []
    try:
        fh = open(path)
    except OSError as exc:
        raise TraceFormatError(f"{path}: cannot read ({exc.strerror})") from exc
    with fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"{path}:{lineno}: not valid JSON ({exc.msg}); is this a trace file?"
                ) from exc
            if not isinstance(record, dict):
                raise TraceFormatError(
                    f"{path}:{lineno}: expected a JSON object, got {type(record).__name__}"
                )
            kind = record.get("kind")
            if kind is None:
                raise TraceFormatError(
                    f"{path}:{lineno}: event line has no 'kind' field; "
                    "not a repro trace (or written by an incompatible version)"
                )
            if kind == TRACE_HEADER_KIND:
                schema = record.get("schema")
                if not isinstance(schema, int):
                    raise TraceFormatError(
                        f"{path}:{lineno}: trace header missing integer 'schema' field"
                    )
                if schema > TRACE_SCHEMA:
                    raise TraceFormatError(
                        f"{path}: trace schema {schema} is newer than this reader "
                        f"(supports <= {TRACE_SCHEMA}); upgrade to read it"
                    )
                header = record
                continue
            if kind == TRACE_TRAILER_KIND:
                header = dict(header)
                header["trailer"] = record
                continue
            record = dict(record)
            record.pop("kind")
            time = record.pop("t", 0.0)
            cause = record.pop("cause", None)
            events.append(Event(time=time, kind=kind, cause=cause, fields=record))
    return header, events
