"""Rederive the paper's evaluation tables from trace events.

The legacy counters (``CleanerStats``, ``LogWriteStats``) and the event
trace observe the same occurrences at the same call sites, so any number
computed from one must be *bit-identical* when computed from the other —
same floats in the same order, same integers. These helpers do the
event-side derivation, and :func:`cross_check` asserts the agreement
against the live counters registered in an :class:`Observation`. The
Table 2 and Table 4 benchmarks run both paths and fail on any mismatch.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.events import CLEAN_SEGMENT, Event, LOG_WRITE

#: Tracer kinds sufficient to rederive Tables 2 and 4 (use as the
#: ``kinds`` filter for long runs so the ring never drops one).
TABLE_KINDS = (CLEAN_SEGMENT, LOG_WRITE)


def cleaned_utilizations(events: Iterable[Event]) -> list[float]:
    """Utilization of every cleaned segment, in cleaning order.

    Equals ``CleanerStats.cleaned_utilizations`` element-for-element:
    both record the same ``usage.utilization()`` float at the same
    moment of each cleaning pass.
    """
    return [e.fields["utilization"] for e in events if e.kind == CLEAN_SEGMENT]


def cleaning_summary(utils: list[float]) -> dict[str, float | int]:
    """Table 2's per-system cleaning numbers from a utilization list.

    The arithmetic mirrors ``CleanerStats.fraction_empty`` /
    ``avg_nonempty_utilization`` (and the windowed computation in
    ``run_production``) exactly, so results agree bit-identically.
    """
    empty = sum(1 for u in utils if u == 0.0)
    nonempty = [u for u in utils if u > 0.0]
    return {
        "segments_cleaned": len(utils),
        "empty_segments_cleaned": empty,
        "fraction_empty": (empty / len(utils)) if utils else 0.0,
        "avg_nonempty_utilization": (sum(nonempty) / len(nonempty)) if nonempty else 0.0,
    }


def blocks_by_kind(events: Iterable[Event]) -> dict[str, int]:
    """Log blocks written per ``BlockKind`` name, summed over the trace."""
    totals: dict[str, int] = {}
    for event in events:
        if event.kind != LOG_WRITE:
            continue
        for kind_name, count in event.fields["kinds"].items():
            totals[kind_name] = totals.get(kind_name, 0) + count
    return totals


def log_bandwidth_breakdown(events: Iterable[Event]) -> dict[str, int]:
    """Table 4's log-bandwidth-by-block-type dict, from the trace.

    Same keys and grouping as ``LFS.log_bandwidth_breakdown()``.
    """
    kinds = blocks_by_kind(events)
    return {
        "data": kinds.get("DATA", 0),
        "indirect": kinds.get("INDIRECT", 0) + kinds.get("DINDIRECT", 0),
        "inode": kinds.get("INODE", 0),
        "inode_map": kinds.get("INODE_MAP", 0),
        "seg_usage": kinds.get("SEG_USAGE", 0),
        "dirop_log": kinds.get("DIROP_LOG", 0),
        "summary": kinds.get("SUMMARY", 0),
    }


def cross_check(obs) -> list[str]:
    """Compare trace-derived numbers against the legacy counters.

    Returns a list of human-readable mismatches (empty means the trace
    and the counters agree bit-identically). Requires the observation's
    tracer to have retained every ``clean.segment`` and ``log.write``
    event — use an unbounded ring or the :data:`TABLE_KINDS` filter.
    """
    problems: list[str] = []
    events = obs.tracer.events()

    if "cleaner" in obs.registry.names():
        stats = obs.registry.source("cleaner")
        derived = cleaned_utilizations(events)
        if derived != stats.cleaned_utilizations:
            problems.append(
                f"cleaned utilizations: trace has {len(derived)} entries, "
                f"counters have {len(stats.cleaned_utilizations)} (or values differ)"
            )
        summary = cleaning_summary(derived)
        if summary["segments_cleaned"] != stats.segments_cleaned:
            problems.append(
                f"segments cleaned: trace {summary['segments_cleaned']} "
                f"!= counters {stats.segments_cleaned}"
            )
        if summary["empty_segments_cleaned"] != stats.empty_segments_cleaned:
            problems.append(
                f"empty segments: trace {summary['empty_segments_cleaned']} "
                f"!= counters {stats.empty_segments_cleaned}"
            )
        if summary["fraction_empty"] != stats.fraction_empty:
            problems.append(
                f"fraction empty: trace {summary['fraction_empty']!r} "
                f"!= counters {stats.fraction_empty!r}"
            )
        if summary["avg_nonempty_utilization"] != stats.avg_nonempty_utilization:
            problems.append(
                f"avg non-empty u: trace {summary['avg_nonempty_utilization']!r} "
                f"!= counters {stats.avg_nonempty_utilization!r}"
            )

    if "log" in obs.registry.names():
        stats = obs.registry.source("log")
        derived_kinds = blocks_by_kind(events)
        legacy_kinds = {
            kind.name: count for kind, count in stats.blocks_by_kind.items() if count
        }
        derived_kinds = {k: v for k, v in derived_kinds.items() if v}
        if derived_kinds != legacy_kinds:
            problems.append(
                f"blocks by kind: trace {derived_kinds} != counters {legacy_kinds}"
            )
        derived_total = sum(derived_kinds.values())
        if derived_total != stats.total_blocks:
            problems.append(
                f"total log blocks: trace {derived_total} != counters {stats.total_blocks}"
            )
    return problems
