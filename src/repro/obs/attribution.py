"""Time attribution: charge every second of disk busy-time to a cause.

This is the paper's write-cost decomposition made first-class. Section 3
prices a log-structured write as *new data transfer + cleaning reads +
cleaning writes*; Section 4 adds checkpoint traffic; application reads
are the remaining consumer of disk arm time. The profiler maintains a
stack of cause scopes — the file system pushes ``cleaning_read`` around
the cleaner's segment reads, ``cleaning_write`` around a cleaning flush,
``checkpoint`` around checkpoint metadata and region writes — and every
disk request is charged to the innermost active scope. Requests with no
scope default by direction: writes are new-data writes, reads are
application reads.

The invariant checked downstream: the per-cause seconds sum to the
disk's ``busy_time``, and busy-time never exceeds elapsed simulated
time (a violation means some path double-charged the clock).

The multi-tenant server adds a second, orthogonal dimension: *who* the
disk was working for. A tenant scope (:meth:`TimeAttribution.tenant`)
tags every charge inside it with a tenant id, accumulating a
``tenant -> cause -> seconds`` matrix. Cleaning triggered inline by a
tenant's own request — the emergency ``_ensure_space`` path — lands in
that tenant's row under ``cleaning_read``/``cleaning_write``, which is
exactly the "how much of my tail latency is the cleaner's fault" answer
the server report quotes. Background work the event loop schedules
outside any request runs under the reserved :data:`SYSTEM_TENANT` row.
Time charged with no tenant scope open (single-caller workloads) is not
tenant-attributed at all, so the tenant matrix sums to *at most* the
cause totals — an inequality the watchdog holds continuously.
"""

from __future__ import annotations

DATA_WRITE = "data_write"
CLEANING_READ = "cleaning_read"
CLEANING_WRITE = "cleaning_write"
CHECKPOINT = "checkpoint"
APPLICATION_READ = "application_read"
#: Time the NVM staging board spent absorbing sync records (the second
#: persistence domain's busy time; attribution totals span both devices).
NVM_STAGE = "nvm_stage"
#: Disk time spent destaging NVM-covered data to the log in batches.
NVM_DESTAGE = "nvm_destage"

CAUSES = (
    DATA_WRITE,
    CLEANING_READ,
    CLEANING_WRITE,
    CHECKPOINT,
    APPLICATION_READ,
    NVM_STAGE,
    NVM_DESTAGE,
)

#: Reserved tenant id for background work the event loop runs on its own
#: authority (scheduled cleaner passes, timed checkpoints) rather than on
#: behalf of any client request.
SYSTEM_TENANT = "@system"

#: The causes that are the cleaner's doing — the interference signal.
CLEANING_CAUSES = (CLEANING_READ, CLEANING_WRITE)


class _CauseScope:
    """Context manager pushing one cause onto the attribution stack."""

    __slots__ = ("_attribution", "_name")

    def __init__(self, attribution: "TimeAttribution", name: str) -> None:
        self._attribution = attribution
        self._name = name

    def __enter__(self) -> "_CauseScope":
        self._attribution._stack.append(self._name)
        return self

    def __exit__(self, *exc) -> bool:
        self._attribution._stack.pop()
        return False


class _TenantScope:
    """Context manager pushing one tenant onto the tenant stack."""

    __slots__ = ("_attribution", "_name")

    def __init__(self, attribution: "TimeAttribution", name: str) -> None:
        self._attribution = attribution
        self._name = name

    def __enter__(self) -> "_TenantScope":
        self._attribution._tenant_stack.append(self._name)
        return self

    def __exit__(self, *exc) -> bool:
        self._attribution._tenant_stack.pop()
        return False


class TimeAttribution:
    """Accumulates simulated disk busy-seconds per cause (and tenant)."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {c: 0.0 for c in CAUSES}
        #: tenant -> cause -> seconds, populated only inside tenant scopes
        self.tenant_seconds: dict[str, dict[str, float]] = {}
        self._stack: list[str] = []
        self._tenant_stack: list[str] = []

    def cause(self, name: str) -> _CauseScope:
        """Scope within which disk time is charged to ``name``."""
        return _CauseScope(self, name)

    def tenant(self, name: str) -> _TenantScope:
        """Scope within which disk time is *also* charged to ``name``."""
        return _TenantScope(self, name)

    def current_cause(self, *, write: bool) -> str:
        """The cause a request would be charged to right now."""
        if self._stack:
            return self._stack[-1]
        return DATA_WRITE if write else APPLICATION_READ

    @property
    def current_tenant(self) -> str | None:
        """The innermost open tenant scope, if any."""
        return self._tenant_stack[-1] if self._tenant_stack else None

    def charge(self, elapsed: float, *, write: bool) -> None:
        """Charge ``elapsed`` seconds of disk service time."""
        name = self.current_cause(write=write)
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        if self._tenant_stack:
            row = self.tenant_seconds.setdefault(self._tenant_stack[-1], {})
            row[name] = row.get(name, 0.0) + elapsed

    @property
    def total(self) -> float:
        """All attributed seconds (equals the disk's busy_time)."""
        return sum(self.seconds.values())

    def fractions(self) -> dict[str, float]:
        """Each cause's share of total attributed time."""
        total = self.total
        if total <= 0:
            return {c: 0.0 for c in self.seconds}
        return {c: s / total for c, s in self.seconds.items()}

    @property
    def tenant_total(self) -> float:
        """Seconds charged inside any tenant scope (<= :attr:`total`)."""
        return sum(sum(row.values()) for row in self.tenant_seconds.values())

    def tenant_totals(self) -> dict[str, float]:
        """Each tenant's total attributed seconds."""
        return {t: sum(row.values()) for t, row in self.tenant_seconds.items()}

    def tenant_cleaning_seconds(self) -> dict[str, float]:
        """Cleaner seconds charged to each tenant — the interference row.

        A tenant accrues these when *its own request* had to clean inline
        (the emergency headroom path); :data:`SYSTEM_TENANT` accrues the
        passes the event loop scheduled in the background.
        """
        return {
            t: sum(row.get(c, 0.0) for c in CLEANING_CAUSES)
            for t, row in self.tenant_seconds.items()
        }

    def render_tenants(self) -> str:
        """An ASCII table of the tenant x cause matrix."""
        from repro.analysis.ascii_chart import render_table

        rows = []
        for tenant in sorted(self.tenant_seconds):
            row = self.tenant_seconds[tenant]
            total = sum(row.values())
            cleaning = sum(row.get(c, 0.0) for c in CLEANING_CAUSES)
            rows.append(
                [
                    tenant,
                    f"{total:.3f}s",
                    f"{cleaning:.3f}s",
                    f"{cleaning / total * 100:.1f}%" if total > 0 else "-",
                ]
            )
        return render_table(
            ["tenant", "disk time", "cleaning", "cleaning share"],
            rows,
            title="per-tenant disk busy-time (cleaner interference)",
        )

    def render(self) -> str:
        """An ASCII table of the decomposition."""
        from repro.analysis.ascii_chart import render_table

        fractions = self.fractions()
        rows = [
            [cause, f"{self.seconds[cause]:.3f}s", f"{fractions[cause] * 100:.1f}%"]
            for cause in CAUSES
        ]
        rows.append(["total", f"{self.total:.3f}s", "100.0%" if self.total > 0 else "-"])
        return render_table(
            ["cause", "disk time", "share"],
            rows,
            title="disk busy-time attribution (the paper's write-cost decomposition)",
        )
