"""Time attribution: charge every second of disk busy-time to a cause.

This is the paper's write-cost decomposition made first-class. Section 3
prices a log-structured write as *new data transfer + cleaning reads +
cleaning writes*; Section 4 adds checkpoint traffic; application reads
are the remaining consumer of disk arm time. The profiler maintains a
stack of cause scopes — the file system pushes ``cleaning_read`` around
the cleaner's segment reads, ``cleaning_write`` around a cleaning flush,
``checkpoint`` around checkpoint metadata and region writes — and every
disk request is charged to the innermost active scope. Requests with no
scope default by direction: writes are new-data writes, reads are
application reads.

The invariant checked downstream: the per-cause seconds sum to the
disk's ``busy_time``, and busy-time never exceeds elapsed simulated
time (a violation means some path double-charged the clock).
"""

from __future__ import annotations

DATA_WRITE = "data_write"
CLEANING_READ = "cleaning_read"
CLEANING_WRITE = "cleaning_write"
CHECKPOINT = "checkpoint"
APPLICATION_READ = "application_read"

CAUSES = (DATA_WRITE, CLEANING_READ, CLEANING_WRITE, CHECKPOINT, APPLICATION_READ)


class _CauseScope:
    """Context manager pushing one cause onto the attribution stack."""

    __slots__ = ("_attribution", "_name")

    def __init__(self, attribution: "TimeAttribution", name: str) -> None:
        self._attribution = attribution
        self._name = name

    def __enter__(self) -> "_CauseScope":
        self._attribution._stack.append(self._name)
        return self

    def __exit__(self, *exc) -> bool:
        self._attribution._stack.pop()
        return False


class TimeAttribution:
    """Accumulates simulated disk busy-seconds per cause."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {c: 0.0 for c in CAUSES}
        self._stack: list[str] = []

    def cause(self, name: str) -> _CauseScope:
        """Scope within which disk time is charged to ``name``."""
        return _CauseScope(self, name)

    def current_cause(self, *, write: bool) -> str:
        """The cause a request would be charged to right now."""
        if self._stack:
            return self._stack[-1]
        return DATA_WRITE if write else APPLICATION_READ

    def charge(self, elapsed: float, *, write: bool) -> None:
        """Charge ``elapsed`` seconds of disk service time."""
        name = self.current_cause(write=write)
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    @property
    def total(self) -> float:
        """All attributed seconds (equals the disk's busy_time)."""
        return sum(self.seconds.values())

    def fractions(self) -> dict[str, float]:
        """Each cause's share of total attributed time."""
        total = self.total
        if total <= 0:
            return {c: 0.0 for c in self.seconds}
        return {c: s / total for c, s in self.seconds.items()}

    def render(self) -> str:
        """An ASCII table of the decomposition."""
        from repro.analysis.ascii_chart import render_table

        fractions = self.fractions()
        rows = [
            [cause, f"{self.seconds[cause]:.3f}s", f"{fractions[cause] * 100:.1f}%"]
            for cause in CAUSES
        ]
        rows.append(["total", f"{self.total:.3f}s", "100.0%" if self.total > 0 else "-"])
        return render_table(
            ["cause", "disk time", "share"],
            rows,
            title="disk busy-time attribution (the paper's write-cost decomposition)",
        )
