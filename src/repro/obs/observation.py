"""The Observation bundle: tracer + attribution + metrics, attached once.

One :class:`Observation` follows one file-system session. Attach it at
``LFS.format(..., obs=...)`` / ``LFS.mount(..., obs=...)`` /
``FFS.format(..., obs=...)`` so mount-time recovery I/O is observed too;
attaching registers every counter struct the session owns into the
metrics registry, wires the disk's per-request hook, and points the
cache's eviction events here.

Two extension points layer on the bundle:

- :meth:`span` opens a named nested scope (``span.begin``/``span.end``
  events; enclosed events carry a ``span`` field) — see
  :mod:`repro.obs.spans`;
- :meth:`subscribe` registers a live consumer (the segment ledger, the
  invariant watchdog) that sees every event as it is emitted, before the
  ring's kind filter and capacity can drop it. Subscribers exposing
  ``on_attach(fs)`` are told when a file system attaches (immediately,
  if one already has), so they can wire counter-side hooks too.

The disabled configuration is simply *no* observation: every hook site
guards on ``obs is not None``, so an unobserved run pays one attribute
check per disk request and nothing else — the PR-1 sweep numbers are
unaffected.
"""

from __future__ import annotations

from repro.obs.attribution import NVM_STAGE, TimeAttribution
from repro.obs.events import DISK_READ, DISK_WRITE
from repro.obs.histogram import LatencyHistogram
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanTracker
from repro.obs.tracer import Tracer


class Observation:
    """Bundles a tracer, a time-attribution profiler, and a registry."""

    def __init__(
        self,
        *,
        tracer: Tracer | None = None,
        ring_capacity: int | None = 65536,
        kinds=None,
        jsonl_path: str | None = None,
    ) -> None:
        if tracer is not None:
            self.tracer = tracer
        else:
            self.tracer = Tracer(capacity=ring_capacity, kinds=kinds, jsonl_path=jsonl_path)
        self.attribution = TimeAttribution()
        self.registry = MetricsRegistry()
        self.spans = SpanTracker(self)
        #: named latency histograms (the server records per-tenant and
        #: global request latencies here; ``repro report`` renders any it
        #: finds). Insertion-ordered, hence deterministic to serialize.
        self.latency: dict[str, LatencyHistogram] = {}
        #: optional flight recorder (a
        #: :class:`~repro.obs.timeline.TimelineRecorder` installs itself
        #: here); hook sites drive it via :meth:`timeline_tick`.
        self.timeline = None
        self._clock = None
        self._fs = None
        self._subscribers: list = []

    # ------------------------------------------------------------------
    # attachment

    def attach_disk(self, disk) -> "Observation":
        """Observe one bare :class:`~repro.disk.device.Disk`."""
        disk.obs = self
        self._clock = disk.clock
        self.registry.register("io", lambda d=disk: d.stats)
        if disk.flash is not None:
            # Wear state scraped live: erase totals and the min/max wear
            # spread appear in snapshots, reports, and bench deltas.
            self.registry.register("flash", lambda d=disk: d.flash_metrics())
        return self

    def attach(self, fs) -> "Observation":
        """Observe a mounted LFS or FFS instance (and its disk + cache)."""
        self.attach_disk(fs.disk)
        fs.obs = self
        fs.cache.obs = self
        nvram = getattr(fs, "nvram", None)
        if nvram is not None:
            nvram.obs = self
            self.registry.register("nvm", lambda n=nvram: n.stats)
        self.registry.register("cache", fs.cache)
        if hasattr(fs, "writer"):  # Sprite LFS
            self.registry.register("lfs", fs.stats)
            self.registry.register("log", fs.writer.stats)
            self.registry.register("cleaner", fs.cleaner.stats)
        else:  # the FFS baseline
            self.registry.register("ffs", fs.stats)
        self._fs = fs
        for subscriber in self._subscribers:
            on_attach = getattr(subscriber, "on_attach", None)
            if on_attach is not None:
                on_attach(fs)
        return self

    # ------------------------------------------------------------------
    # live subscribers

    def subscribe(self, subscriber) -> "Observation":
        """Register a live consumer: ``on_event(event)`` per emit, and
        ``on_attach(fs)`` (if defined) when a file system attaches."""
        self._subscribers.append(subscriber)
        self.tracer.subscribe(subscriber.on_event)
        if self._fs is not None:
            on_attach = getattr(subscriber, "on_attach", None)
            if on_attach is not None:
                on_attach(self._fs)
        return self

    # ------------------------------------------------------------------
    # hook entry points

    def now(self) -> float:
        """Current simulated time (0.0 before any disk is attached)."""
        return self._clock.now if self._clock is not None else 0.0

    def cause(self, name: str):
        """Attribution scope; disk time inside is charged to ``name``."""
        return self.attribution.cause(name)

    def span(self, name: str, **fields):
        """Named nested scope; events inside carry this span's id."""
        return self.spans.span(name, **fields)

    def tenant(self, name: str):
        """Tenant scope: disk time and events inside are tagged ``name``."""
        return self.attribution.tenant(name)

    def timeline_tick(self) -> None:
        """Offer the flight recorder a sampling opportunity (cheap no-op
        when no timeline is installed); hook sites in the FS flush,
        checkpoint, and cleaner paths call this after clock-advancing
        work so a timeline-enabled run samples at cadence resolution
        even without an event loop driving it."""
        timeline = self.timeline
        if timeline is not None:
            timeline.maybe_sample(self.now())

    def histogram(self, name: str, **kwargs) -> LatencyHistogram:
        """The named latency histogram, created on first use."""
        hist = self.latency.get(name)
        if hist is None:
            hist = self.latency[name] = LatencyHistogram(**kwargs)
        return hist

    def on_io(self, now: float, addr: int, nblocks: int, elapsed: float, *, write: bool, seeked: bool) -> None:
        """Per-request disk hook: charge attribution, emit a disk event."""
        self.attribution.charge(elapsed, write=write)
        # Debug invariant: busy-time can never exceed elapsed simulated
        # time; a violation means a path double-charged the clock.
        assert self.attribution.total <= now + 1e-9, (
            f"attributed disk busy-time {self.attribution.total:.9f}s exceeds "
            f"simulated elapsed time {now:.9f}s (double-charged I/O?)"
        )
        fields = dict(addr=addr, blocks=nblocks, elapsed=elapsed, seek=seeked)
        span_id = self.spans.current
        if span_id is not None:
            fields["span"] = span_id
        tenant = self.attribution.current_tenant
        if tenant is not None:
            fields["tenant"] = tenant
        self.tracer.emit(
            DISK_WRITE if write else DISK_READ,
            now,
            cause=self.attribution.current_cause(write=write),
            **fields,
        )

    def on_nvm_io(self, now: float, nbytes: int, elapsed: float) -> None:
        """Per-append NVM hook: charge staging time to the nvm cause.

        The staging board is a second device, so its busy seconds join
        the same attribution pool — the watchdog's sums-to-busy check
        compares against disk *plus* NVM busy time.
        """
        att = self.attribution
        att.seconds[NVM_STAGE] = att.seconds.get(NVM_STAGE, 0.0) + elapsed
        if att._tenant_stack:
            row = att.tenant_seconds.setdefault(att._tenant_stack[-1], {})
            row[NVM_STAGE] = row.get(NVM_STAGE, 0.0) + elapsed
        assert att.total <= now + 1e-9, (
            f"attributed busy-time {att.total:.9f}s exceeds simulated "
            f"elapsed time {now:.9f}s (double-charged NVM I/O?)"
        )

    def emit(self, kind: str, **fields) -> None:
        """Emit a non-disk event, timestamped from the attached clock."""
        now = self._clock.now if self._clock is not None else 0.0
        cause = self.attribution._stack[-1] if self.attribution._stack else None
        span_id = self.spans.current
        if span_id is not None and "span" not in fields:
            fields["span"] = span_id
        tenant = self.attribution.current_tenant
        if tenant is not None and "tenant" not in fields:
            fields["tenant"] = tenant
        self.tracer.emit(kind, now, cause=cause, **fields)
