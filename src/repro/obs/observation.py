"""The Observation bundle: tracer + attribution + metrics, attached once.

One :class:`Observation` follows one file-system session. Attach it at
``LFS.format(..., obs=...)`` / ``LFS.mount(..., obs=...)`` /
``FFS.format(..., obs=...)`` so mount-time recovery I/O is observed too;
attaching registers every counter struct the session owns into the
metrics registry, wires the disk's per-request hook, and points the
cache's eviction events here.

The disabled configuration is simply *no* observation: every hook site
guards on ``obs is not None``, so an unobserved run pays one attribute
check per disk request and nothing else — the PR-1 sweep numbers are
unaffected.
"""

from __future__ import annotations

from repro.obs.attribution import TimeAttribution
from repro.obs.events import DISK_READ, DISK_WRITE
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer


class Observation:
    """Bundles a tracer, a time-attribution profiler, and a registry."""

    def __init__(
        self,
        *,
        tracer: Tracer | None = None,
        ring_capacity: int | None = 65536,
        kinds=None,
        jsonl_path: str | None = None,
    ) -> None:
        if tracer is not None:
            self.tracer = tracer
        else:
            self.tracer = Tracer(capacity=ring_capacity, kinds=kinds, jsonl_path=jsonl_path)
        self.attribution = TimeAttribution()
        self.registry = MetricsRegistry()
        self._clock = None

    # ------------------------------------------------------------------
    # attachment

    def attach_disk(self, disk) -> "Observation":
        """Observe one bare :class:`~repro.disk.device.Disk`."""
        disk.obs = self
        self._clock = disk.clock
        self.registry.register("io", lambda d=disk: d.stats)
        return self

    def attach(self, fs) -> "Observation":
        """Observe a mounted LFS or FFS instance (and its disk + cache)."""
        self.attach_disk(fs.disk)
        fs.obs = self
        fs.cache.obs = self
        self.registry.register("cache", fs.cache)
        if hasattr(fs, "writer"):  # Sprite LFS
            self.registry.register("lfs", fs.stats)
            self.registry.register("log", fs.writer.stats)
            self.registry.register("cleaner", fs.cleaner.stats)
        else:  # the FFS baseline
            self.registry.register("ffs", fs.stats)
        return self

    # ------------------------------------------------------------------
    # hook entry points

    def cause(self, name: str):
        """Attribution scope; disk time inside is charged to ``name``."""
        return self.attribution.cause(name)

    def on_io(self, now: float, addr: int, nblocks: int, elapsed: float, *, write: bool, seeked: bool) -> None:
        """Per-request disk hook: charge attribution, emit a disk event."""
        self.attribution.charge(elapsed, write=write)
        # Debug invariant: busy-time can never exceed elapsed simulated
        # time; a violation means a path double-charged the clock.
        assert self.attribution.total <= now + 1e-9, (
            f"attributed disk busy-time {self.attribution.total:.9f}s exceeds "
            f"simulated elapsed time {now:.9f}s (double-charged I/O?)"
        )
        self.tracer.emit(
            DISK_WRITE if write else DISK_READ,
            now,
            cause=self.attribution.current_cause(write=write),
            addr=addr,
            blocks=nblocks,
            elapsed=elapsed,
            seek=seeked,
        )

    def emit(self, kind: str, **fields) -> None:
        """Emit a non-disk event, timestamped from the attached clock."""
        now = self._clock.now if self._clock is not None else 0.0
        cause = self.attribution._stack[-1] if self.attribution._stack else None
        self.tracer.emit(kind, now, cause=cause, **fields)
