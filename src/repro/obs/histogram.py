"""A latency histogram: exact for small N, log-bucketed at scale.

Tail-latency percentiles are the multi-tenant server's headline metric,
and they have two regimes. A smoke run completes a few hundred requests
— there, percentiles should be *exact* (nearest-rank over the sorted
samples), because a 19%-wide bucket would swallow the whole story. A
10k-client run completes hundreds of thousands of requests — there,
per-sample storage is waste, and geometrically spaced buckets answer
"what is p999" with bounded relative error while staying mergeable
across tenants, runs, and worker processes.

:class:`LatencyHistogram` does both: it records exact samples until
``exact_limit`` is crossed, then spills them into sparse log buckets
(bucket ``i`` covers ``(base * growth**(i-1), base * growth**i]``) and
keeps only counts from then on. Quantiles from the bucketed regime
return the bucket's *upper* bound — a conservative tail estimate whose
relative error is at most ``growth - 1``.

Merging is closed under both regimes (exact+exact stays exact while it
fits, anything else spills), and both the in-memory state and the
``to_dict``/``from_dict`` JSON round-trip are deterministic: the same
recorded sequence always digests identically, which is what lets the
server's latency results be regression-gated like every other bench.
"""

from __future__ import annotations

import math

#: Default number of exact samples retained before spilling to buckets.
DEFAULT_EXACT_LIMIT = 512

#: Default bucket growth factor: ~9.05% wide buckets, 165 buckets per
#: decade-of-six (1e-5 s .. 10 s), worst-case quantile error < 10%.
DEFAULT_GROWTH = 2 ** 0.125

#: Default smallest resolved latency (10 microseconds of simulated time);
#: everything at or below it lands in bucket 0.
DEFAULT_BASE = 1e-5

#: The percentile set reports quote, as (label, quantile) pairs.
REPORT_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999))


class LatencyHistogram:
    """Mergeable latency distribution with exact-then-bucketed storage."""

    __slots__ = ("exact_limit", "base", "growth", "_log_growth",
                 "count", "total", "min", "max", "_samples", "_buckets")

    def __init__(
        self,
        *,
        exact_limit: int = DEFAULT_EXACT_LIMIT,
        base: float = DEFAULT_BASE,
        growth: float = DEFAULT_GROWTH,
    ) -> None:
        if exact_limit < 0:
            raise ValueError("exact_limit must be >= 0")
        if base <= 0:
            raise ValueError("base must be positive")
        if growth <= 1.0:
            raise ValueError("growth must exceed 1.0")
        self.exact_limit = exact_limit
        self.base = base
        self.growth = growth
        self._log_growth = math.log(growth)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        #: exact samples, or None once spilled to buckets
        self._samples: list[float] | None = []
        #: sparse bucket index -> count (only once spilled)
        self._buckets: dict[int, int] | None = None

    # ------------------------------------------------------------------
    # recording

    def record(self, seconds: float) -> None:
        """Add one latency observation (non-negative seconds)."""
        if seconds < 0:
            raise ValueError(f"negative latency {seconds!r}")
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        if self._samples is not None:
            self._samples.append(seconds)
            if len(self._samples) > self.exact_limit:
                self._spill()
        else:
            b = self._bucket_index(seconds)
            self._buckets[b] = self._buckets.get(b, 0) + 1

    def _bucket_index(self, value: float) -> int:
        if value <= self.base:
            return 0
        return int(math.log(value / self.base) / self._log_growth) + 1

    def bucket_upper(self, index: int) -> float:
        """Upper latency bound of bucket ``index``."""
        if index <= 0:
            return self.base
        return self.base * self.growth ** index

    def _spill(self) -> None:
        """Convert exact samples into sparse log buckets, once."""
        buckets: dict[int, int] = self._buckets or {}
        for v in self._samples or ():
            b = self._bucket_index(v)
            buckets[b] = buckets.get(b, 0) + 1
        self._samples = None
        self._buckets = buckets

    # ------------------------------------------------------------------
    # queries

    @property
    def exact(self) -> bool:
        """Whether quantiles are still computed from exact samples."""
        return self._samples is not None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile; bucket upper bound once spilled.

        Returns 0.0 on an empty histogram. ``q`` must be in [0, 1].
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        if self._samples is not None:
            return sorted(self._samples)[rank - 1]
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                # The conservative tail answer: no sample in this bucket
                # exceeds its upper bound, so p999 is never understated
                # by more than the bucket width (growth - 1, relative).
                return min(self.bucket_upper(index), self.max)
        return self.max

    def percentiles(self) -> dict[str, float]:
        """The report-standard summary: count/mean/min/max + quantiles."""
        out = {
            "count": self.count,
            "mean": self.mean,
            "min": 0.0 if self.count == 0 else self.min,
            "max": self.max,
            "exact": self.exact,
        }
        for label, q in REPORT_QUANTILES:
            out[label] = self.quantile(q)
        return out

    # ------------------------------------------------------------------
    # merging and (de)serialization

    def _compatible(self, other: "LatencyHistogram") -> None:
        if (self.base, self.growth) != (other.base, other.growth):
            raise ValueError(
                "cannot merge histograms with different bucket geometry: "
                f"base {self.base} vs {other.base}, "
                f"growth {self.growth} vs {other.growth}"
            )

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram (in place; returns self).

        Exact + exact stays exact while the combined sample set fits
        under ``exact_limit``; any other combination spills to buckets.
        """
        self._compatible(other)
        if other.count:
            self.count += other.count
            self.total += other.total
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
            if self._samples is not None and other._samples is not None:
                self._samples.extend(other._samples)
                if len(self._samples) > self.exact_limit:
                    self._spill()
            else:
                if self._samples is not None:
                    self._spill()
                if other._samples is not None:
                    for v in other._samples:
                        b = self._bucket_index(v)
                        self._buckets[b] = self._buckets.get(b, 0) + 1
                else:
                    for b, n in other._buckets.items():
                        self._buckets[b] = self._buckets.get(b, 0) + n
        return self

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot (round-trips via from_dict)."""
        out = {
            "exact_limit": self.exact_limit,
            "base": self.base,
            "growth": self.growth,
            "count": self.count,
            "total": self.total,
            "min": 0.0 if self.count == 0 else self.min,
            "max": self.max,
        }
        if self._samples is not None:
            out["samples"] = list(self._samples)
        else:
            # JSON object keys are strings; sort for deterministic output.
            out["buckets"] = {str(k): self._buckets[k] for k in sorted(self._buckets)}
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyHistogram":
        hist = cls(
            exact_limit=data["exact_limit"],
            base=data["base"],
            growth=data["growth"],
        )
        hist.count = data["count"]
        hist.total = data["total"]
        hist.min = data["min"] if hist.count else math.inf
        hist.max = data["max"]
        if "samples" in data:
            hist._samples = list(data["samples"])
        else:
            hist._samples = None
            hist._buckets = {int(k): v for k, v in data["buckets"].items()}
        return hist

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        mode = "exact" if self.exact else "bucketed"
        return f"LatencyHistogram(count={self.count}, {mode}, max={self.max:.6f})"
