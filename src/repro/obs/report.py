"""Run reports and bench-to-bench regression verdicts.

Two consumers of the observatory:

- :func:`build_report` folds one observed run — attribution, I/O
  counters, write cost, cleaning distributions, segment-ledger stats —
  into a single JSON-serializable dict; :func:`render_report` prints it
  as text (``repro report`` emits both).
- :func:`bench_diff` compares any two ``BENCH_*.json`` files (the
  schema-1 records :func:`benchmarks.conftest.record_bench` writes) and
  issues per-metric regressed/improved/unchanged verdicts, so the bench
  trajectory across PRs is finally *read* instead of just accumulated.
  Only metrics with a known better-direction can regress; unrecognized
  numeric fields are reported informationally. ``repro bench-diff``
  exits 1 on any regression.
"""

from __future__ import annotations

import json
import math

from repro.obs.registry import scrape

#: Version of the dict build_report returns.
REPORT_SCHEMA = 1

#: Metric name -> +1 (higher is better) or -1 (lower is better).
#: ``write_cost``-prefixed and ``violations``-like metrics are matched
#: by rule below; this table covers the scalar bench fields.
METRIC_DIRECTIONS = {
    "steps_per_sec": +1,
    "wall_seconds": -1,
    "violations": -1,
    "mean_recovery_seconds": -1,
    "write_cost": -1,
    "wear_spread": -1,
    # Small-synchronous-write benchmark (BENCH_nvram_sync.json): commits
    # per simulated second with NVM staging, its ratio over the no-NVM
    # baseline, and how close staging runs to the NVM bandwidth bound
    # (simulated-time ratios — deterministic, so gating is noise-free).
    "sync_throughput": +1,
    "speedup": +1,
    "bound_ratio": -1,
}

#: Metrics whose values are wall-clock dependent: machine noise, not
#: semantics. ``bench_diff(..., include_perf=False)`` excludes them from
#: the verdict (useful when OLD and NEW ran on different hardware).
PERF_METRICS = frozenset({"steps_per_sec", "wall_seconds", "mean_recovery_seconds"})


# ----------------------------------------------------------------------
# run reports


#: Section keys a caller may explicitly request (``sections=``) and the
#: human titles render_report uses when saying one is not enabled.
SECTION_TITLES = {
    "flash": "flash wear and TRIM",
    "nvm": "NVM staging",
    "latency": "latency percentiles",
    "timeline": "timeline (flight recorder)",
}


def build_report(
    obs, fs=None, ledger=None, *, name: str = "run", latency=None, sections=()
) -> dict:
    """One run's observatory summary as a JSON-serializable dict.

    ``latency`` is an optional ``{name: LatencyHistogram}`` mapping; when
    omitted, any histograms registered on ``obs.latency`` (the server
    records per-tenant and global request latencies there) are used. The
    report then gains a ``latency`` section with p50/p95/p99/p999 + max
    per histogram. The tenant x cause busy-time matrix rides along in
    the attribution section whenever tenant scopes charged any time.

    ``sections`` names report sections the *user asked for* (e.g.
    ``("flash",)`` for ``repro report --flash``). A requested section
    whose source never registered this run is recorded as ``None`` so
    :func:`render_report` can say "not enabled for this run" explicitly
    instead of silently omitting it or rendering an empty table.
    """
    report: dict = {
        "schema": REPORT_SCHEMA,
        "name": name,
        "elapsed_seconds": obs.now(),
        "attribution": {
            "seconds": dict(obs.attribution.seconds),
            "fractions": obs.attribution.fractions(),
            "total": obs.attribution.total,
        },
        "tracer": {
            "emitted": dict(obs.tracer.emitted_counts),
            "total_emitted": obs.tracer.total_emitted,
            "retained": len(obs.tracer),
            "ring_dropped": obs.tracer.dropped,
        },
    }
    if obs.attribution.tenant_seconds:
        report["attribution"]["tenants"] = {
            t: dict(row) for t, row in sorted(obs.attribution.tenant_seconds.items())
        }
        report["attribution"]["tenant_cleaning_seconds"] = (
            obs.attribution.tenant_cleaning_seconds()
        )
    if latency is None:
        latency = getattr(obs, "latency", None)
    if latency:
        report["latency"] = {
            hist_name: hist.percentiles() for hist_name, hist in latency.items()
        }
    timeline = getattr(obs, "timeline", None)
    if timeline is not None:
        report["timeline"] = timeline.summary()
    if "io" in obs.registry.names():
        report["io"] = scrape(obs.registry.source("io"))
    if "flash" in obs.registry.names():
        report["flash"] = scrape(obs.registry.source("flash"))
    if "nvm" in obs.registry.names():
        report["nvm"] = scrape(obs.registry.source("nvm"))
    if fs is not None:
        fs_section: dict = {}
        if hasattr(fs, "write_cost"):
            fs_section["write_cost"] = fs.write_cost
        if hasattr(fs, "disk_capacity_utilization"):
            fs_section["disk_capacity_utilization"] = fs.disk_capacity_utilization
        if hasattr(fs, "usage"):
            fs_section["live_utilization_histogram"] = fs.usage.utilization_histogram()
            fs_section["total_live_bytes"] = fs.usage.total_live_bytes()
        if hasattr(fs, "cleaner"):
            stats = fs.cleaner.stats
            fs_section["cleaning"] = {
                "segments_cleaned": stats.segments_cleaned,
                "empty_segments_cleaned": stats.empty_segments_cleaned,
                "fraction_empty": stats.fraction_empty,
                "avg_nonempty_utilization": stats.avg_nonempty_utilization,
                "live_blocks_seen": stats.live_blocks_seen,
                "live_blocks_moved": stats.live_blocks_moved,
                "blocks_rescued": stats.blocks_rescued,
                "blocks_lost": stats.blocks_lost,
            }
        report["fs"] = fs_section
    if ledger is not None:
        report["ledger"] = ledger.stats()
        report["table2"] = ledger.table2_summary()
        report["figure6_distribution"] = ledger.figure6_distribution()
    for section in sections:
        if not report.get(section):
            report[section] = None  # requested, but nothing ran under it
    return report


def render_report(report: dict) -> str:
    """Text rendering of a :func:`build_report` dict."""
    from repro.analysis.ascii_chart import render_table

    lines = [f"run report: {report.get('name', '?')} "
             f"(schema {report.get('schema', '?')})"]
    lines.append(f"elapsed simulated time: {report.get('elapsed_seconds', 0.0):.6f}s")

    attribution = report.get("attribution", {})
    rows = [
        [cause, f"{secs:.6f}", f"{attribution.get('fractions', {}).get(cause, 0.0):.4f}"]
        for cause, secs in sorted(attribution.get("seconds", {}).items())
    ]
    if rows:
        lines.append(render_table(["cause", "seconds", "fraction"], rows,
                                  title="busy-time attribution"))

    tenants = attribution.get("tenants")
    if tenants:
        cleaning = attribution.get("tenant_cleaning_seconds", {})
        rows = []
        for tenant, row in sorted(tenants.items()):
            total = sum(row.values())
            interference = cleaning.get(tenant, 0.0)
            rows.append(
                [
                    tenant,
                    f"{total:.6f}",
                    f"{interference:.6f}",
                    f"{interference / total:.4f}" if total > 0 else "-",
                ]
            )
        lines.append(render_table(
            ["tenant", "disk seconds", "cleaning", "cleaning share"],
            rows, title="per-tenant busy-time (cleaner interference)"))

    latency = report.get("latency")
    if latency:
        rows = [
            [
                name,
                str(p.get("count", 0)),
                f"{p.get('p50', 0.0):.6f}",
                f"{p.get('p95', 0.0):.6f}",
                f"{p.get('p99', 0.0):.6f}",
                f"{p.get('p999', 0.0):.6f}",
                f"{p.get('max', 0.0):.6f}",
                "exact" if p.get("exact") else "bucketed",
            ]
            for name, p in latency.items()
        ]
        lines.append(render_table(
            ["histogram", "count", "p50", "p95", "p99", "p999", "max", "mode"],
            rows, title="latency percentiles (simulated seconds)"))

    fs_section = report.get("fs", {})
    if fs_section:
        rows = []
        if "write_cost" in fs_section:
            rows.append(["write cost", f"{fs_section['write_cost']:.4f}"])
        if "disk_capacity_utilization" in fs_section:
            rows.append(["disk utilization",
                         f"{fs_section['disk_capacity_utilization']:.4f}"])
        cleaning = fs_section.get("cleaning", {})
        for key in ("segments_cleaned", "empty_segments_cleaned",
                    "live_blocks_seen", "live_blocks_moved",
                    "blocks_rescued", "blocks_lost"):
            if key in cleaning:
                rows.append([key.replace("_", " "), str(cleaning[key])])
        if "fraction_empty" in cleaning:
            rows.append(["fraction empty", f"{cleaning['fraction_empty']:.4f}"])
        if "avg_nonempty_utilization" in cleaning:
            rows.append(["avg non-empty u",
                         f"{cleaning['avg_nonempty_utilization']:.4f}"])
        lines.append(render_table(["metric", "value"], rows, title="file system"))

    flash = report.get("flash")
    if flash:
        rows = [[k.replace("_", " "), str(v)] for k, v in sorted(flash.items())]
        flash_ledger = (report.get("ledger") or {}).get("flash")
        if flash_ledger:
            for key in ("erase_events", "trim_events", "trim_blocks",
                        "lives_cold", "lives_trimmed"):
                if key in flash_ledger:
                    rows.append([key.replace("_", " "), str(flash_ledger[key])])
            reasons = flash_ledger.get("erases_by_reason", {})
            if reasons:
                rows.append(["erases by reason",
                             ", ".join(f"{k}={v}" for k, v in sorted(reasons.items()))])
        lines.append(render_table(["metric", "value"], rows,
                                  title="flash wear and TRIM"))

    nvm = report.get("nvm")
    if nvm:
        rows = [[k.replace("_", " "), str(v)] for k, v in sorted(nvm.items())]
        nvm_ledger = (report.get("ledger") or {}).get("nvm")
        if nvm_ledger:
            for key in ("records_in_flight", "peak_used_bytes"):
                if key in nvm_ledger:
                    rows.append([key.replace("_", " "), str(nvm_ledger[key])])
        lines.append(render_table(["metric", "value"], rows,
                                  title="NVM staging"))

    timeline = report.get("timeline")
    if timeline:
        span = timeline.get("span", [0.0, 0.0])
        rows = [
            ["samples", str(timeline.get("samples", 0))],
            ["columns", str(timeline.get("columns", 0))],
            ["cadence", f"{timeline.get('cadence', 0.0):g}s "
                        f"(stride {timeline.get('stride', 1)})"],
            ["span", f"{span[0]:.3f}s - {span[1]:.3f}s"],
            ["digest", str(timeline.get("digest", "-"))],
        ]
        peaks = timeline.get("peaks", {})
        if "peak_write_cost" in peaks:
            rows.append(["peak write cost", f"{peaks['peak_write_cost']:.4f}"])
        if "peak_cleaner_share" in peaks:
            rows.append(["peak cleaner share", f"{peaks['peak_cleaner_share']:.4f}"])
        lines.append(render_table(["metric", "value"], rows,
                                  title="timeline (flight recorder)"))
        slo = timeline.get("slo", {})
        if slo:
            rows = []
            for name, s in sorted(slo.items()):
                worst = s.get("worst_burn", {})
                rows.append(
                    [
                        name,
                        f"{s.get('threshold', 0.0):g}s",
                        str(s.get("requests", 0)),
                        str(s.get("breaches", 0)),
                        ", ".join(f"{w}={b:.2f}" for w, b in sorted(worst.items()))
                        or "-",
                        f"{s.get('time_above_slo', 0.0):.3f}s",
                    ]
                )
            lines.append(render_table(
                ["objective", "threshold", "requests", "breaches",
                 "worst burn", "above SLO"],
                rows, title="SLO burn rates"))
        annotations = timeline.get("annotations", [])
        if annotations:
            rows = [
                [
                    a.get("type", "?"),
                    f"{a.get('start', 0.0):.3f}",
                    f"{a.get('end', 0.0):.3f}",
                    f"{a.get('severity', 0.0):.3f}",
                ]
                for a in annotations
            ]
            lines.append(render_table(
                ["phase", "start", "end", "severity"], rows,
                title="detected phases"))

    for section, title in SECTION_TITLES.items():
        # Requested sections build_report nulled out: say so explicitly
        # rather than silently omitting the table the user asked for.
        if section in report and report[section] is None:
            lines.append(f"{title}: not enabled for this run")

    ledger = report.get("ledger")
    if ledger:
        rows = [[k.replace("_", " "), str(v)] for k, v in sorted(ledger.items())
                if not isinstance(v, (list, dict))]
        rows.append(["death causes",
                     ", ".join(f"{k}={v}" for k, v in
                               sorted(ledger.get("death_causes", {}).items()))
                     or "(none)"])
        lines.append(render_table(["metric", "value"], rows, title="segment ledger"))

    fig6 = report.get("figure6_distribution")
    if fig6 and sum(fig6):
        bins = len(fig6)
        rows = [
            [f"{i / bins:.2f}-{(i + 1) / bins:.2f}", str(count)]
            for i, count in enumerate(fig6)
            if count
        ]
        lines.append(render_table(["u at cleaning", "segments"], rows,
                                  title="Figure 6: utilization at cleaning"))

    tracer = report.get("tracer", {})
    lines.append(
        f"trace: {tracer.get('total_emitted', 0)} events emitted, "
        f"{tracer.get('retained', 0)} retained, "
        f"{tracer.get('ring_dropped', 0)} dropped by the ring"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# bench diffing


class BenchFormatError(ValueError):
    """A BENCH_*.json file could not be understood."""


def load_bench(path: str) -> dict:
    """Read one ``BENCH_*.json`` file, validating the schema field."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except json.JSONDecodeError as exc:
        raise BenchFormatError(f"{path}: not valid JSON ({exc.msg})") from exc
    except OSError as exc:
        raise BenchFormatError(f"{path}: cannot read ({exc.strerror})") from exc
    if not isinstance(data, dict):
        raise BenchFormatError(f"{path}: expected a JSON object")
    schema = data.get("schema")
    if not isinstance(schema, int):
        raise BenchFormatError(
            f"{path}: missing integer 'schema' field — not a BENCH_*.json record "
            "(or written by an incompatible version)"
        )
    return data


def _flatten_metrics(bench: dict) -> dict[str, float]:
    """Numeric comparable metrics from one bench record, flattened."""
    out: dict[str, float] = {}
    for key, value in bench.items():
        if key in ("schema", "workers", "steps", "sample", "population",
                   "base_seed", "created_at", "git_sha", "bench"):
            continue
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[key] = float(value)
        elif key == "write_costs" and isinstance(value, dict):
            for label, wc in value.items():
                if isinstance(wc, (int, float)):
                    out[f"write_cost[{label}]"] = float(wc)
                elif isinstance(wc, list):
                    for pair in wc:
                        if isinstance(pair, list) and len(pair) == 2:
                            out[f"write_cost[{label}@{pair[0]}]"] = float(pair[1])
        elif key == "write_costs" and isinstance(value, list):
            for i, wc in enumerate(value):
                if isinstance(wc, (int, float)):
                    out[f"write_cost[{i}]"] = float(wc)
    return out


def _direction(metric: str) -> int | None:
    """+1 higher-better, -1 lower-better, None unknown (informational)."""
    if metric.startswith("write_cost"):
        return -1
    # Server tail-latency metrics (BENCH_server_tail_latency.json writes
    # e.g. ``latency_p99[c1000/drr/cleaner]``): simulated-time latencies
    # are deterministic per seed, so gating them is noise-free.
    if metric.startswith("latency_"):
        return -1
    # Flash cleaning-migration ratios (blocks moved per block written):
    # deterministic in simulated time, lower is better.
    if metric.startswith("migration_ratio"):
        return -1
    # Timeline curve-level metrics (``peak_write_cost[label]``,
    # ``worst_burn_1m[label]``, ``time_above_slo[label]``): extrema and
    # integrals over the flight recorder's sampled curves. All derive
    # from simulated time, so they gate as deterministically as the
    # point metrics above, and lower is always better.
    if metric.startswith(("peak_write_cost", "worst_burn", "time_above_slo")):
        return -1
    return METRIC_DIRECTIONS.get(metric)


def bench_diff(
    old: dict,
    new: dict,
    *,
    threshold: float = 0.05,
    include_perf: bool = True,
) -> dict:
    """Compare two bench records; verdict per shared metric and overall.

    A metric regresses when it moves beyond ``threshold`` (relative)
    in its bad direction — except exact counters like ``violations``,
    where *any* increase regresses. Metrics with no known direction are
    listed as ``informational`` and never affect the overall verdict.
    With ``include_perf=False`` wall-clock-dependent metrics
    (:data:`PERF_METRICS`) are informational too, for cross-machine
    comparisons where timing noise would drown the signal.
    """
    old_metrics = _flatten_metrics(old)
    new_metrics = _flatten_metrics(new)
    shared = sorted(set(old_metrics) & set(new_metrics))
    metrics = []
    regressed: list[str] = []
    improved: list[str] = []
    for name in shared:
        before, after = old_metrics[name], new_metrics[name]
        delta = after - before
        rel = (delta / abs(before)) if before else (math.inf if delta else 0.0)
        direction = _direction(name)
        if direction is None or (not include_perf and name in PERF_METRICS):
            verdict = "informational"
        elif name == "violations":
            # Exact counter: any increase is a regression, full stop.
            verdict = (
                "regressed" if delta > 0 else "improved" if delta < 0 else "unchanged"
            )
        else:
            bad = -direction  # sign of a move in the bad direction
            if rel * bad > threshold:
                verdict = "regressed"
            elif rel * bad < -threshold:
                verdict = "improved"
            else:
                verdict = "unchanged"
        if verdict == "regressed":
            regressed.append(name)
        elif verdict == "improved":
            improved.append(name)
        metrics.append(
            {
                "metric": name,
                "old": before,
                "new": after,
                "delta": delta,
                "relative": rel,
                "verdict": verdict,
            }
        )
    overall = "regressed" if regressed else ("improved" if improved else "unchanged")
    return {
        "schema_old": old.get("schema"),
        "schema_new": new.get("schema"),
        "bench_old": old.get("bench"),
        "bench_new": new.get("bench"),
        "threshold": threshold,
        "include_perf": include_perf,
        "metrics": metrics,
        "regressed": regressed,
        "improved": improved,
        "only_in_old": sorted(set(old_metrics) - set(new_metrics)),
        "only_in_new": sorted(set(new_metrics) - set(old_metrics)),
        "verdict": overall,
    }


def render_bench_diff(diff: dict) -> str:
    """Text table of one :func:`bench_diff` result."""
    from repro.analysis.ascii_chart import render_table

    rows = []
    for entry in diff["metrics"]:
        rel = entry["relative"]
        rel_text = "inf" if math.isinf(rel) else f"{rel:+.2%}"
        rows.append(
            [
                entry["metric"],
                f"{entry['old']:.6g}",
                f"{entry['new']:.6g}",
                rel_text,
                entry["verdict"],
            ]
        )
    title = (
        f"bench diff: {diff.get('bench_old') or 'old'} -> "
        f"{diff.get('bench_new') or 'new'} "
        f"(threshold {diff['threshold']:.0%}"
        f"{'' if diff['include_perf'] else ', perf informational'})"
    )
    lines = [render_table(["metric", "old", "new", "rel", "verdict"], rows, title=title)]
    for side, names in (("old", diff["only_in_old"]), ("new", diff["only_in_new"])):
        if names:
            lines.append(f"only in {side}: {', '.join(names)}")
    lines.append(f"verdict: {diff['verdict'].upper()}")
    return "\n".join(lines)
