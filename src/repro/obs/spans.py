"""Hierarchical spans over the flat event stream.

A span is a nested scope in *simulated* time — one clean pass, one
checkpoint, one scrub sweep, one recovery replay. Spans ride the same
tracer stream as everything else: opening one emits ``span.begin``
(carrying its id, its parent's id, and a name), closing it emits
``span.end`` with the simulated duration, and every event emitted while
a span is open gets a ``span`` field naming the innermost open scope.
Nothing else changes — a reader that ignores span fields sees exactly
the flat trace it always did.

:func:`render_span_tree` reconstructs the tree from any event list (live
ring or a loaded JSONL) and prints per-span durations plus a per-cause
busy-time breakdown summed from the disk events each span encloses —
"where did this checkpoint's 0.18 s go" answered straight from the
trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.events import DISK_READ, DISK_WRITE, SPAN_BEGIN, SPAN_END, Event


class _SpanScope:
    """Context manager binding one span's begin/end around a block."""

    __slots__ = ("_tracker", "_name", "_fields")

    def __init__(self, tracker: "SpanTracker", name: str, fields: dict) -> None:
        self._tracker = tracker
        self._name = name
        self._fields = fields

    def __enter__(self) -> int:
        return self._tracker.begin(self._name, **self._fields)

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracker.end()


class SpanTracker:
    """Allocates span ids and maintains the open-scope stack."""

    def __init__(self, obs) -> None:
        self._obs = obs
        self._next_id = 1
        #: open scopes, innermost last: (span_id, name, begin_time)
        self._stack: list[tuple[int, str, float]] = []

    @property
    def current(self) -> int | None:
        """Id of the innermost open span, or None outside any span."""
        return self._stack[-1][0] if self._stack else None

    @property
    def depth(self) -> int:
        return len(self._stack)

    def begin(self, name: str, **fields) -> int:
        """Open a span; emits ``span.begin`` and returns the new id."""
        span_id = self._next_id
        self._next_id += 1
        now = self._obs.now()
        parent = self.current
        if parent is not None:
            fields["parent"] = parent
        self._obs.emit(SPAN_BEGIN, span=span_id, name=name, **fields)
        self._stack.append((span_id, name, now))
        return span_id

    def end(self) -> None:
        """Close the innermost span; emits ``span.end`` with its duration."""
        span_id, name, began = self._stack.pop()
        self._obs.emit(SPAN_END, span=span_id, name=name, dur=self._obs.now() - began)

    def span(self, name: str, **fields) -> _SpanScope:
        """``with obs.span("checkpoint"): ...`` convenience wrapper."""
        return _SpanScope(self, name, fields)


@dataclass
class SpanNode:
    """One reconstructed span with its enclosed-event accounting."""

    span_id: int
    name: str
    begin_time: float
    parent: int | None = None
    end_time: float | None = None
    dur: float | None = None
    events: int = 0
    cause_seconds: dict = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)


def build_span_tree(events: list[Event]) -> list[SpanNode]:
    """Reconstruct root spans (with children) from a flat event list."""
    nodes: dict[int, SpanNode] = {}
    roots: list[SpanNode] = []
    for event in events:
        if event.kind == SPAN_BEGIN:
            span_id = event.fields["span"]
            node = SpanNode(
                span_id=span_id,
                name=event.fields.get("name", "?"),
                begin_time=event.time,
                parent=event.fields.get("parent"),
            )
            nodes[span_id] = node
            parent = nodes.get(node.parent) if node.parent is not None else None
            if parent is not None:
                parent.children.append(node)
            else:
                roots.append(node)
        elif event.kind == SPAN_END:
            node = nodes.get(event.fields["span"])
            if node is not None:
                node.end_time = event.time
                node.dur = event.fields.get("dur", event.time - node.begin_time)
        else:
            span_id = event.fields.get("span")
            node = nodes.get(span_id) if span_id is not None else None
            if node is not None:
                node.events += 1
                if event.kind in (DISK_READ, DISK_WRITE) and event.cause is not None:
                    elapsed = event.fields.get("elapsed", 0.0)
                    node.cause_seconds[event.cause] = (
                        node.cause_seconds.get(event.cause, 0.0) + elapsed
                    )
    return roots


def render_span_tree(events: list[Event]) -> str:
    """ASCII tree of spans with durations and per-cause busy breakdown."""
    roots = build_span_tree(events)
    if not roots:
        return "(no spans recorded)"
    lines = ["span tree (simulated time)", "-" * 26]

    def walk(node: SpanNode, depth: int) -> None:
        indent = "  " * depth
        dur = f"{node.dur:.6f}s" if node.dur is not None else "open"
        line = f"{indent}{node.name} #{node.span_id}  t={node.begin_time:.6f}  dur={dur}"
        if node.events:
            line += f"  events={node.events}"
        if node.cause_seconds:
            parts = ", ".join(
                f"{cause}={secs:.6f}s"
                for cause, secs in sorted(node.cause_seconds.items())
            )
            line += f"  [{parts}]"
        lines.append(line)
        for child in node.children:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)
