"""``repro.obs`` — the unified observability layer.

Three pieces, usable together (via :class:`Observation`) or alone:

- :mod:`repro.obs.tracer` — a typed simulated-time event tracer (ring
  buffer, kind filter, optional JSONL export) fed by hooks in the disk
  model, the log writer, the cleaner, the cache, and checkpoint writes;
- :mod:`repro.obs.attribution` — a profiler charging every second of
  simulated disk busy-time to a cause (data write / cleaning read /
  cleaning write / checkpoint / application read), the paper's
  write-cost decomposition;
- :mod:`repro.obs.registry` — one ``snapshot()``/``delta()`` protocol
  over the previously scattered counter structs (``IOStats``,
  ``CleanerStats``, ``LFSStats``, ``LogWriteStats``, ``FFSStats``).

:mod:`repro.obs.derive` rederives the paper's Table 2 and Table 4
numbers from trace events and cross-checks them bit-identically against
the legacy counters.
"""

from repro.obs.attribution import (
    APPLICATION_READ,
    CAUSES,
    CHECKPOINT,
    CLEANING_READ,
    CLEANING_WRITE,
    DATA_WRITE,
    TimeAttribution,
)
from repro.obs.events import EVENT_KINDS, Event
from repro.obs.observation import Observation
from repro.obs.registry import MetricsRegistry, scrape
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "APPLICATION_READ",
    "CAUSES",
    "CHECKPOINT",
    "CLEANING_READ",
    "CLEANING_WRITE",
    "DATA_WRITE",
    "EVENT_KINDS",
    "Event",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Observation",
    "scrape",
    "TimeAttribution",
    "Tracer",
]
