"""``repro.obs`` — the unified observability layer.

Three pieces, usable together (via :class:`Observation`) or alone:

- :mod:`repro.obs.tracer` — a typed simulated-time event tracer (ring
  buffer, kind filter, optional JSONL export) fed by hooks in the disk
  model, the log writer, the cleaner, the cache, and checkpoint writes;
- :mod:`repro.obs.attribution` — a profiler charging every second of
  simulated disk busy-time to a cause (data write / cleaning read /
  cleaning write / checkpoint / application read), the paper's
  write-cost decomposition;
- :mod:`repro.obs.registry` — one ``snapshot()``/``delta()`` protocol
  over the previously scattered counter structs (``IOStats``,
  ``CleanerStats``, ``LFSStats``, ``LogWriteStats``, ``FFSStats``).

:mod:`repro.obs.derive` rederives the paper's Table 2 and Table 4
numbers from trace events and cross-checks them bit-identically against
the legacy counters.

The segment-lifecycle observatory builds on the tracer's subscriber
hook: :mod:`repro.obs.spans` adds nested scopes with simulated-time
durations, :mod:`repro.obs.ledger` reconstructs every segment's life
(birth, writes, decay, death) with live Figure 6 / Table 2 views,
:mod:`repro.obs.watchdog` continuously asserts cross-layer invariants
and raises a typed :class:`InvariantViolation` on the offending event,
and :mod:`repro.obs.report` emits run reports and bench-to-bench
regression verdicts.
"""

from repro.obs.attribution import (
    APPLICATION_READ,
    CAUSES,
    CHECKPOINT,
    CLEANING_CAUSES,
    CLEANING_READ,
    CLEANING_WRITE,
    DATA_WRITE,
    NVM_DESTAGE,
    NVM_STAGE,
    SYSTEM_TENANT,
    TimeAttribution,
)
from repro.obs.events import EVENT_KINDS, TRACE_SCHEMA, Event
from repro.obs.histogram import LatencyHistogram
from repro.obs.ledger import SegmentLedger, SegmentLife
from repro.obs.observation import Observation
from repro.obs.registry import MetricsRegistry, scrape
from repro.obs.report import (
    bench_diff,
    build_report,
    load_bench,
    render_bench_diff,
    render_report,
)
from repro.obs.spans import SpanTracker, build_span_tree, render_span_tree
from repro.obs.timeline import (
    TIMELINE_SCHEMA,
    SLOObjective,
    SLOTracker,
    TimelineAnnotation,
    TimelineFormatError,
    TimelineRecorder,
    TimelineStore,
    load_timeline_jsonl,
    render_dashboard,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceFormatError,
    Tracer,
    load_trace_jsonl,
)
from repro.obs.watchdog import InvariantViolation, Watchdog

__all__ = [
    "APPLICATION_READ",
    "CAUSES",
    "CHECKPOINT",
    "CLEANING_CAUSES",
    "CLEANING_READ",
    "CLEANING_WRITE",
    "DATA_WRITE",
    "EVENT_KINDS",
    "Event",
    "InvariantViolation",
    "LatencyHistogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NVM_DESTAGE",
    "NVM_STAGE",
    "NullTracer",
    "Observation",
    "SLOObjective",
    "SLOTracker",
    "SYSTEM_TENANT",
    "SegmentLedger",
    "SegmentLife",
    "SpanTracker",
    "TIMELINE_SCHEMA",
    "TRACE_SCHEMA",
    "TimeAttribution",
    "TimelineAnnotation",
    "TimelineFormatError",
    "TimelineRecorder",
    "TimelineStore",
    "TraceFormatError",
    "Tracer",
    "Watchdog",
    "bench_diff",
    "build_report",
    "build_span_tree",
    "load_bench",
    "load_timeline_jsonl",
    "load_trace_jsonl",
    "render_bench_diff",
    "render_dashboard",
    "render_report",
    "render_span_tree",
    "scrape",
]
