"""The flight recorder: metrics as curves over simulated time.

The paper's headline evidence is longitudinal — write cost and segment
utilization measured over months on /user6 — yet everything the obs
stack produced so far is point-in-time: end-of-run snapshots, reports,
and ledger biographies say *what* a run cost, never *when*. This module
records the when.

Three cooperating pieces:

- :class:`TimelineStore` — a compact columnar store: one aligned time
  axis plus one value column per metric, with bounded memory. When the
  sample count would exceed ``max_samples`` the store *thins* exactly
  like the segment ledger's utilization samples: drop every other
  sample and double the sampling stride, so a run of any length keeps
  an evenly spaced history at a known resolution.
- :class:`TimelineRecorder` — an :class:`~repro.obs.Observation`
  subscriber that samples every registered metrics source (flattened to
  ``source.field`` columns) plus derived gauges — instantaneous write
  cost, cache hit rate, cleaner share of busy time, and per-tenant
  windowed latency percentiles from throwaway
  :class:`~repro.obs.histogram.LatencyHistogram` shards — at a
  configurable simulated-time cadence. Sampling is *passive*: hooks
  (the server event loop, FS flush/clean/checkpoint, torture replay)
  call :meth:`TimelineRecorder.maybe_sample`, which fires only when the
  clock has crossed the next due time, so enabling the recorder never
  schedules events, never advances the clock, and never perturbs a
  digest.
- :class:`PhaseDetector` + :class:`SLOTracker` — anomaly phases
  (cleaning storms, read-only degradation, NVM destage stalls) become
  typed :class:`TimelineAnnotation` records, and per-tenant SLO
  objectives get multi-window error-budget burn rates sampled into
  ``slo.<name>.burn_<window>`` columns with worst-burn and
  time-above-SLO scalars for bench gating.

The on-disk format is framed JSONL exactly like the tracer's
(``timeline.header`` / ``timeline.sample`` / ``timeline.annotation`` /
``timeline.trailer`` lines, schema-versioned, tolerant reader raising
:class:`TimelineFormatError`), plus a CSV export for spreadsheet
consumption. Everything is deterministic: the same seed produces a
bit-identical export and a stable digest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.attribution import CLEANING_CAUSES
from repro.obs.events import (
    FS_READONLY,
    FS_SYNC,
    NVM_FAIL,
    SERVER_DONE,
    TIMELINE_ANNOTATION,
)
from repro.obs.histogram import LatencyHistogram

#: Version of the timeline JSONL on-disk format.
TIMELINE_SCHEMA = 1

TIMELINE_HEADER_KIND = "timeline.header"
TIMELINE_SAMPLE_KIND = "timeline.sample"
TIMELINE_ANNOTATION_KIND = "timeline.annotation"
TIMELINE_TRAILER_KIND = "timeline.trailer"

#: Default bound on retained samples before thinning halves the history.
DEFAULT_MAX_SAMPLES = 512

#: Default sampling cadence in simulated seconds.
DEFAULT_CADENCE = 0.25

#: Annotation types the phase detector emits.
CLEANING_STORM = "cleaning_storm"
READ_ONLY = "read_only"
NVM_STALL = "nvm_stall"

#: Derived gauge column names.
COL_WRITE_COST = "derived.write_cost"
COL_CACHE_HIT_RATE = "derived.cache_hit_rate"
COL_CLEANER_SHARE = "derived.cleaner_share"


class TimelineFormatError(ValueError):
    """A timeline JSONL file could not be understood."""


@dataclass
class TimelineAnnotation:
    """One typed anomaly phase: ``[start, end]`` in simulated seconds."""

    type: str
    start: float
    end: float
    severity: float = 1.0
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {
            "type": self.type,
            "start": self.start,
            "end": self.end,
            "severity": self.severity,
        }
        out.update(self.fields)
        return out

    @classmethod
    def from_dict(cls, record: dict) -> "TimelineAnnotation":
        record = dict(record)
        return cls(
            type=record.pop("type"),
            start=record.pop("start"),
            end=record.pop("end"),
            severity=record.pop("severity", 1.0),
            fields=record,
        )


class TimelineStore:
    """Columnar (time, metric) samples with ledger-style thinning.

    Columns appear lazily: a metric first seen at sample *k* is
    backfilled with ``None`` for samples ``0..k-1``, and a metric absent
    from one sample records ``None`` there — so every column always has
    exactly one entry per retained sample time.
    """

    def __init__(self, *, max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        if max_samples < 4:
            raise ValueError("max_samples must be >= 4")
        self.max_samples = max_samples
        self.times: list[float] = []
        self.columns: dict[str, list] = {}
        self.annotations: list[TimelineAnnotation] = []
        #: how many originally recorded samples each retained sample
        #: stands for (doubles at every thinning pass)
        self.stride = 1

    def __len__(self) -> int:
        return len(self.times)

    def append(self, t: float, values: dict) -> bool:
        """Add one sample; returns True when the append triggered a thin."""
        self.times.append(t)
        n = len(self.times)
        for name, column in self.columns.items():
            column.append(values.get(name))
        for name in values:
            if name not in self.columns:
                column = [None] * (n - 1)
                column.append(values[name])
                self.columns[name] = column
        if n > self.max_samples:
            self._thin()
            return True
        return False

    def _thin(self) -> None:
        # Same contract as the ledger's utilization samples: keep every
        # other sample (the survivors stay evenly spaced) and double the
        # stride so future appends arrive at the thinned rate.
        self.times = self.times[1::2]
        for name, column in self.columns.items():
            self.columns[name] = column[1::2]
        self.stride *= 2

    def annotate(self, annotation: TimelineAnnotation) -> None:
        self.annotations.append(annotation)

    def column(self, name: str) -> list:
        """One column's values aligned with :attr:`times` (empty if unknown)."""
        return self.columns.get(name, [])

    def column_names(self) -> list[str]:
        return sorted(self.columns)

    def sample_lines(self) -> list[str]:
        """Canonical JSON line per sample (the digest and export basis)."""
        lines = []
        for i, t in enumerate(self.times):
            values = {
                name: column[i]
                for name, column in sorted(self.columns.items())
                if column[i] is not None
            }
            lines.append(
                json.dumps(
                    {"kind": TIMELINE_SAMPLE_KIND, "t": t, "v": values},
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )
        return lines

    def digest(self) -> str:
        """SHA-256 (16 hex chars) over canonical samples + annotations."""
        import hashlib

        h = hashlib.sha256()
        for line in self.sample_lines():
            h.update(line.encode())
            h.update(b"\n")
        for annotation in self.annotations:
            h.update(
                json.dumps(
                    annotation.to_dict(), sort_keys=True, separators=(",", ":")
                ).encode()
            )
            h.update(b"\n")
        return h.hexdigest()[:16]

    # ------------------------------------------------------------------
    # export

    def export_jsonl(self, path: str, *, header_fields: dict | None = None) -> int:
        """Write the framed JSONL file; returns the sample line count."""
        with open(path, "w") as fh:
            header = {"kind": TIMELINE_HEADER_KIND, "schema": TIMELINE_SCHEMA}
            if header_fields:
                header.update(header_fields)
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for line in self.sample_lines():
                fh.write(line + "\n")
            for annotation in self.annotations:
                record = {"kind": TIMELINE_ANNOTATION_KIND}
                record.update(annotation.to_dict())
                fh.write(json.dumps(record, sort_keys=True) + "\n")
            trailer = {
                "kind": TIMELINE_TRAILER_KIND,
                "schema": TIMELINE_SCHEMA,
                "samples": len(self.times),
                "annotations": len(self.annotations),
                "stride": self.stride,
                "columns": self.column_names(),
                "digest": self.digest(),
            }
            fh.write(json.dumps(trailer, sort_keys=True) + "\n")
        return len(self.times)

    def export_csv(self, path: str) -> int:
        """Write ``time,<columns...>`` rows (empty cell for a gap)."""
        names = self.column_names()
        with open(path, "w") as fh:
            fh.write(",".join(["time"] + names) + "\n")
            for i, t in enumerate(self.times):
                cells = [repr(t)]
                for name in names:
                    value = self.columns[name][i]
                    cells.append("" if value is None else repr(value))
                fh.write(",".join(cells) + "\n")
        return len(self.times)


def load_timeline_jsonl(path: str) -> tuple[dict, TimelineStore]:
    """Read a timeline JSONL file into ``(header, store)``.

    Raises :class:`TimelineFormatError` with a human-readable message on
    malformed lines, a missing header, or a schema newer than this
    reader supports — never a KeyError.
    """
    try:
        fh = open(path)
    except OSError as exc:
        raise TimelineFormatError(f"{path}: cannot read ({exc.strerror})") from exc
    header: dict | None = None
    store = TimelineStore(max_samples=1 << 30)
    with fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TimelineFormatError(
                    f"{path}:{lineno}: not valid JSON ({exc.msg}); "
                    "is this a timeline file?"
                ) from exc
            if not isinstance(record, dict):
                raise TimelineFormatError(
                    f"{path}:{lineno}: expected a JSON object, "
                    f"got {type(record).__name__}"
                )
            kind = record.get("kind")
            if kind == TIMELINE_HEADER_KIND:
                schema = record.get("schema")
                if not isinstance(schema, int):
                    raise TimelineFormatError(
                        f"{path}:{lineno}: header missing integer 'schema' field"
                    )
                if schema > TIMELINE_SCHEMA:
                    raise TimelineFormatError(
                        f"{path}: timeline schema {schema} is newer than this "
                        f"reader (supports <= {TIMELINE_SCHEMA})"
                    )
                header = record
            elif kind == TIMELINE_SAMPLE_KIND:
                if header is None:
                    raise TimelineFormatError(
                        f"{path}:{lineno}: sample before header — not a "
                        "framed timeline file"
                    )
                values = record.get("v")
                if not isinstance(values, dict) or "t" not in record:
                    raise TimelineFormatError(
                        f"{path}:{lineno}: sample line missing 't' or 'v'"
                    )
                store.append(record["t"], values)
            elif kind == TIMELINE_ANNOTATION_KIND:
                record = dict(record)
                record.pop("kind")
                try:
                    store.annotate(TimelineAnnotation.from_dict(record))
                except KeyError as exc:
                    raise TimelineFormatError(
                        f"{path}:{lineno}: annotation missing field {exc}"
                    ) from exc
            elif kind == TIMELINE_TRAILER_KIND:
                if isinstance(record.get("stride"), int):
                    store.stride = record["stride"]
                header = dict(header or {})
                header["trailer"] = record
            else:
                raise TimelineFormatError(
                    f"{path}:{lineno}: unknown line kind {kind!r}"
                )
    if header is None:
        raise TimelineFormatError(f"{path}: no timeline.header line found")
    return header, store


# ----------------------------------------------------------------------
# SLO objectives and burn-rate tracking


@dataclass(frozen=True)
class SLOObjective:
    """One latency objective: ``target`` of requests under ``threshold``.

    ``name`` routes requests: a tenant id matches that tenant's
    completions; the reserved name ``"server"`` matches every
    completion. ``windows`` are the simulated-time spans the burn rate
    is evaluated over; the *first* (shortest) window drives the
    time-above-SLO integral.
    """

    name: str
    threshold: float
    target: float = 0.99
    windows: tuple[float, ...] = (5.0, 60.0)

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if not self.windows or any(w <= 0 for w in self.windows):
            raise ValueError("windows must be positive")

    def window_label(self, window: float) -> str:
        return f"{window:g}s"


class SLOTracker:
    """Multi-window error-budget burn for one :class:`SLOObjective`.

    A burn rate of 1.0 means the error budget (``1 - target``) is being
    consumed exactly at the allotted rate; above 1.0 the objective is
    headed for a breach. Windowed counts use one pass over the
    completion stream (monotone head pointers per window), so tracking
    is O(1) amortized per request.
    """

    def __init__(self, objective: SLOObjective) -> None:
        self.objective = objective
        self.total = 0
        self.bad = 0
        self.worst: dict[float, float] = {w: 0.0 for w in objective.windows}
        self.time_above_slo = 0.0
        self._events: list[tuple[float, int]] = []
        self._heads = [0] * len(objective.windows)
        self._counts = [[0, 0] for _ in objective.windows]  # [total, bad]

    def record(self, t: float, latency: float) -> None:
        bad = 1 if latency > self.objective.threshold else 0
        self._events.append((t, bad))
        self.total += 1
        self.bad += bad
        for counts in self._counts:
            counts[0] += 1
            counts[1] += bad

    def burn_rates(self, now: float) -> dict[float, float]:
        """Current burn rate per window (0.0 for an empty window)."""
        budget = 1.0 - self.objective.target
        out: dict[float, float] = {}
        for i, window in enumerate(self.objective.windows):
            head, counts = self._heads[i], self._counts[i]
            horizon = now - window
            while head < len(self._events) and self._events[head][0] <= horizon:
                counts[0] -= 1
                counts[1] -= self._events[head][1]
                head += 1
            self._heads[i] = head
            total, bad = counts
            out[window] = (bad / total) / budget if total else 0.0
        floor = min(self._heads)
        if floor > 4096:
            del self._events[:floor]
            self._heads = [h - floor for h in self._heads]
        return out

    def observe(self, now: float, dt: float) -> dict[float, float]:
        """Sample-time update: burn per window, worst-burn, time-above."""
        burns = self.burn_rates(now)
        for window, burn in burns.items():
            if burn > self.worst[window]:
                self.worst[window] = burn
        short = self.objective.windows[0]
        if burns[short] > 1.0 and dt > 0:
            self.time_above_slo += dt
        return burns

    def summary(self) -> dict:
        o = self.objective
        return {
            "threshold": o.threshold,
            "target": o.target,
            "windows": list(o.windows),
            "requests": self.total,
            "breaches": self.bad,
            "worst_burn": {
                o.window_label(w): self.worst[w] for w in o.windows
            },
            "time_above_slo": self.time_above_slo,
        }


# ----------------------------------------------------------------------
# phase / anomaly detection


class PhaseDetector:
    """Turns metric curves and events into typed timeline annotations.

    - **cleaning storm** — the cleaner-share gauge at or above
      ``storm_threshold`` for ``storm_min_samples`` consecutive samples
      opens a storm; it closes (and annotates) when the share drops.
      Severity is the peak share seen during the storm.
    - **read-only degradation** — an ``fs.readonly`` event annotates the
      instant the error budget ran out.
    - **NVM destage stall** — with a staging board attached, an
      ``fs.sync`` acknowledged *unstaged* (the board could not absorb
      it) or an ``nvm.fail`` marks the inter-sample window as a stall.
    """

    def __init__(
        self,
        emit,
        *,
        storm_threshold: float = 0.5,
        storm_min_samples: int = 2,
    ) -> None:
        self._emit = emit
        self.storm_threshold = storm_threshold
        self.storm_min_samples = storm_min_samples
        self._storm_times: list[float] = []
        self._storm_peak = 0.0
        self._stall_fallbacks = 0

    # -- event side -----------------------------------------------------

    def on_event(self, event, *, nvm_attached: bool) -> None:
        if event.kind == FS_READONLY:
            self._emit(TimelineAnnotation(
                type=READ_ONLY,
                start=event.time,
                end=event.time,
                severity=1.0,
                fields={k: event.fields[k]
                        for k in ("media_errors", "budget")
                        if k in event.fields},
            ))
        elif event.kind == FS_SYNC:
            if nvm_attached and event.fields.get("staged") is False:
                self._stall_fallbacks += 1
        elif event.kind == NVM_FAIL:
            self._emit(TimelineAnnotation(
                type=NVM_STALL,
                start=event.time,
                end=event.time,
                severity=1.0,
                fields={"reason": event.fields.get("reason", "fail")},
            ))

    # -- sample side ----------------------------------------------------

    def on_sample(self, now: float, prev: float | None, share: float | None) -> None:
        if self._stall_fallbacks:
            self._emit(TimelineAnnotation(
                type=NVM_STALL,
                start=prev if prev is not None else now,
                end=now,
                severity=1.0,
                fields={"fallback_syncs": self._stall_fallbacks},
            ))
            self._stall_fallbacks = 0
        if share is not None and share >= self.storm_threshold:
            self._storm_times.append(now)
            if share > self._storm_peak:
                self._storm_peak = share
        else:
            self._close_storm()

    def _close_storm(self) -> None:
        if len(self._storm_times) >= self.storm_min_samples:
            self._emit(TimelineAnnotation(
                type=CLEANING_STORM,
                start=self._storm_times[0],
                end=self._storm_times[-1],
                severity=self._storm_peak,
                fields={"samples": len(self._storm_times)},
            ))
        self._storm_times = []
        self._storm_peak = 0.0

    def finish(self) -> None:
        self._close_storm()


# ----------------------------------------------------------------------
# the recorder


def _flatten_snapshot(snapshot: dict) -> dict:
    """Registry snapshot -> flat ``source.field[.key]`` columns."""
    out: dict = {}
    for source, fields in snapshot.items():
        for name, value in fields.items():
            if isinstance(value, dict):
                for key, item in value.items():
                    out[f"{source}.{name}.{key}"] = item
            else:
                out[f"{source}.{name}"] = value
    return out


def _num(fields: dict, name: str) -> float:
    value = fields.get(name, 0)
    return value if isinstance(value, (int, float)) else 0


class TimelineRecorder:
    """Samples an :class:`~repro.obs.Observation` into a timeline store.

    Install with :meth:`install`; sampling hooks then call
    :meth:`maybe_sample` (via ``Observation.timeline_tick``, the server
    loop's sampler, and every traced event), and the recorder fires only
    when simulated time crosses the next cadence boundary. Call
    :meth:`finish` once at end of run to take the final sample and close
    open annotation phases.
    """

    def __init__(
        self,
        *,
        cadence: float = DEFAULT_CADENCE,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        slos: tuple[SLOObjective, ...] | list[SLOObjective] = (),
        storm_threshold: float = 0.5,
        storm_min_samples: int = 2,
        shard_exact_limit: int = 256,
    ) -> None:
        if cadence <= 0:
            raise ValueError("cadence must be positive")
        self.cadence = cadence
        self.store = TimelineStore(max_samples=max_samples)
        self.slos = [SLOTracker(objective) for objective in slos]
        self.detector = PhaseDetector(
            self._annotate,
            storm_threshold=storm_threshold,
            storm_min_samples=storm_min_samples,
        )
        self.shard_exact_limit = shard_exact_limit
        self.samples_taken = 0
        self._obs = None
        self._next_due: float | None = None
        self._last_sample: float | None = None
        self._prev_snapshot: dict | None = None
        self._prev_busy = 0.0
        self._prev_cleaning = 0.0
        self._shards: dict[str, LatencyHistogram] = {}
        self._finished = False
        self._sampling = False

    # -- wiring ---------------------------------------------------------

    def install(self, obs) -> "TimelineRecorder":
        """Subscribe to ``obs`` and become its ``timeline``."""
        self._obs = obs
        obs.timeline = self
        obs.subscribe(self)
        return self

    def on_event(self, event) -> None:
        if event.kind == SERVER_DONE:
            tenant = event.fields.get("tenant")
            latency = event.fields.get("latency", 0.0)
            if tenant is not None:
                self._shard(tenant).record(latency)
                for tracker in self.slos:
                    if tracker.objective.name == tenant:
                        tracker.record(event.time, latency)
            self._shard("server").record(latency)
            for tracker in self.slos:
                if tracker.objective.name == "server":
                    tracker.record(event.time, latency)
        elif event.kind in (FS_READONLY, FS_SYNC, NVM_FAIL):
            self.detector.on_event(event, nvm_attached=self._nvm_attached())
        # Every traced event doubles as a sampling opportunity, so runs
        # without an event loop (plain workloads, torture replays) still
        # sample at cadence resolution.
        if self._obs is not None and not self._sampling:
            self.maybe_sample(self._obs.now())

    def _shard(self, name: str) -> LatencyHistogram:
        shard = self._shards.get(name)
        if shard is None:
            shard = self._shards[name] = LatencyHistogram(
                exact_limit=self.shard_exact_limit
            )
        return shard

    def _nvm_attached(self) -> bool:
        return self._obs is not None and "nvm" in self._obs.registry.names()

    def _annotate(self, annotation: TimelineAnnotation) -> None:
        self.store.annotate(annotation)
        if self._obs is not None:
            self._obs.emit(TIMELINE_ANNOTATION, **annotation.to_dict())

    # -- sampling -------------------------------------------------------

    @property
    def effective_cadence(self) -> float:
        """Current sampling period (base cadence times the thinning stride)."""
        return self.cadence * self.store.stride

    def maybe_sample(self, now: float) -> bool:
        """Take a sample iff the clock crossed the next due time."""
        if self._finished or self._sampling:
            return False
        if self._next_due is not None and now < self._next_due - 1e-12:
            return False
        self.sample(now)
        return True

    def sample(self, now: float) -> None:
        """Take one sample unconditionally at simulated time ``now``."""
        if self._obs is None:
            raise RuntimeError("recorder not installed on an Observation")
        self._sampling = True
        try:
            values = self._collect(now)
            thinned = self.store.append(now, values)
            self.samples_taken += 1
            self._last_sample = now
            # Schedule the next due time on the cadence grid; a long
            # synchronous operation that skipped several periods yields
            # one late sample, not a backlog burst.
            period = self.effective_cadence
            if self._next_due is None:
                self._next_due = now + period
            else:
                due = self._next_due + period
                if due <= now:
                    due = now + period
                self._next_due = due
            if thinned:
                # Memory bound hit: history halved, so future samples
                # arrive at the new (doubled) stride automatically via
                # effective_cadence.
                pass
        finally:
            self._sampling = False

    def _collect(self, now: float) -> dict:
        obs = self._obs
        snapshot = obs.registry.snapshot()
        flat = _flatten_snapshot(snapshot)
        prev = self._prev_snapshot or {}
        values = dict(flat)

        # Instantaneous write cost over the sampling window: the paper's
        # formula applied to this window's deltas. No new data appended
        # this window -> a gap, not a bogus 1.0.
        lfs = snapshot.get("lfs", {})
        log = snapshot.get("log", {})
        cleaner = snapshot.get("cleaner", {})
        p_lfs = prev.get("lfs", {})
        p_log = prev.get("log", {})
        p_cleaner = prev.get("cleaner", {})
        d_total = (
            _num(log, "total_blocks") - _num(p_log, "total_blocks")
            + _num(lfs, "checkpoint_region_blocks")
            - _num(p_lfs, "checkpoint_region_blocks")
        )
        d_read = _num(cleaner, "blocks_read") - _num(p_cleaner, "blocks_read")
        d_new = (
            _num(log, "total_blocks") - _num(p_log, "total_blocks")
            - (_num(log, "cleaner_blocks") - _num(p_log, "cleaner_blocks"))
        )
        if log and d_new > 0:
            values[COL_WRITE_COST] = (d_total + d_read) / d_new

        cache = snapshot.get("cache", {})
        p_cache = prev.get("cache", {})
        d_hits = _num(cache, "hits") - _num(p_cache, "hits")
        d_misses = _num(cache, "misses") - _num(p_cache, "misses")
        if d_hits + d_misses > 0:
            values[COL_CACHE_HIT_RATE] = d_hits / (d_hits + d_misses)

        att = obs.attribution
        cleaning = sum(att.seconds.get(cause, 0.0) for cause in CLEANING_CAUSES)
        busy = att.total
        d_busy = busy - self._prev_busy
        share = None
        if d_busy > 0:
            share = (cleaning - self._prev_cleaning) / d_busy
            values[COL_CLEANER_SHARE] = share

        # Per-tenant windowed percentiles from throwaway histogram
        # shards — mergeable, but here each shard covers exactly one
        # sampling window and is discarded after quoting.
        for name in sorted(self._shards):
            shard = self._shards[name]
            if shard.count:
                p = shard.percentiles()
                values[f"latency.{name}.p50"] = p["p50"]
                values[f"latency.{name}.p99"] = p["p99"]
        self._shards = {}

        dt = (now - self._last_sample) if self._last_sample is not None else 0.0
        for tracker in self.slos:
            burns = tracker.observe(now, dt)
            for window, burn in burns.items():
                label = tracker.objective.window_label(window)
                values[f"slo.{tracker.objective.name}.burn_{label}"] = burn

        self.detector.on_sample(now, self._last_sample, share)

        self._prev_snapshot = snapshot
        self._prev_busy = busy
        self._prev_cleaning = cleaning
        return values

    def finish(self, now: float | None = None) -> "TimelineRecorder":
        """Final sample + close open annotation phases (idempotent)."""
        if self._finished:
            return self
        if now is None:
            now = self._obs.now() if self._obs is not None else 0.0
        if self._last_sample is None or now > self._last_sample:
            self.sample(now)
        self.detector.finish()
        self._finished = True
        return self

    # -- results --------------------------------------------------------

    def peaks(self) -> dict:
        """Curve-level extrema for bench gating."""
        out: dict = {}
        costs = [v for v in self.store.column(COL_WRITE_COST) if v is not None]
        if costs:
            out["peak_write_cost"] = max(costs)
        shares = [v for v in self.store.column(COL_CLEANER_SHARE) if v is not None]
        if shares:
            out["peak_cleaner_share"] = max(shares)
        return out

    def summary(self) -> dict:
        """JSON-serializable run summary (rides in reports and results)."""
        store = self.store
        return {
            "schema": TIMELINE_SCHEMA,
            "samples": len(store),
            "columns": len(store.columns),
            "cadence": self.cadence,
            "stride": store.stride,
            "span": [store.times[0], store.times[-1]] if store.times else [0.0, 0.0],
            "digest": store.digest(),
            "annotations": [a.to_dict() for a in store.annotations],
            "slo": {
                tracker.objective.name: tracker.summary()
                for tracker in self.slos
            },
            "peaks": self.peaks(),
        }

    def export_jsonl(self, path: str) -> int:
        return self.store.export_jsonl(
            path, header_fields={"cadence": self.cadence}
        )

    def export_csv(self, path: str) -> int:
        return self.store.export_csv(path)


# ----------------------------------------------------------------------
# dashboard rendering


#: Dashboard row selection: (column predicate label, display order).
_KEY_GAUGES = (
    (COL_WRITE_COST, "write cost"),
    (COL_CLEANER_SHARE, "cleaner share"),
    (COL_CACHE_HIT_RATE, "cache hit rate"),
)


def _selected_columns(
    store: TimelineStore, *, tenant: str | None, source: str | None
) -> list[tuple[str, str]]:
    """(column, display label) rows for one dashboard invocation."""
    names = store.column_names()
    if source is not None:
        return [(n, n) for n in names if n.startswith(f"{source}.")]
    if tenant is not None:
        rows = []
        for n in names:
            if n.startswith(f"latency.{tenant}.") or n.startswith(f"slo.{tenant}."):
                rows.append((n, n))
        return rows
    rows = [(col, label) for col, label in _KEY_GAUGES if col in store.columns]
    rows.extend((n, n) for n in names if n.startswith("latency.") and n.endswith(".p99"))
    rows.extend((n, n) for n in names if n.startswith("slo."))
    if not rows:
        # No key gauges recorded (a bare store or non-server run): show
        # everything rather than nothing.
        rows = [(n, n) for n in names]
    return rows


def render_dashboard(
    store: TimelineStore,
    *,
    summary: dict | None = None,
    tenant: str | None = None,
    source: str | None = None,
    width: int = 64,
) -> str:
    """ASCII sparkline dashboard over one timeline store."""
    from repro.analysis.ascii_chart import render_sparkline

    lines = []
    if store.times:
        span = store.times[-1] - store.times[0]
        lines.append(
            f"timeline: {len(store)} samples over {span:.3f}s simulated "
            f"({store.times[0]:.3f}s .. {store.times[-1]:.3f}s, "
            f"stride x{store.stride})"
        )
    else:
        lines.append("timeline: no samples")
    rows = _selected_columns(store, tenant=tenant, source=source)
    if not rows:
        what = (
            f"source {source!r}" if source is not None
            else f"tenant {tenant!r}" if tenant is not None
            else "key gauges"
        )
        lines.append(f"(no columns matched {what})")
    label_width = max((len(label) for _, label in rows), default=0)
    for column, label in rows:
        values = store.column(column)
        present = [v for v in values if v is not None]
        if not present:
            continue
        spark = render_sparkline(values, width=width)
        last = present[-1]
        lines.append(
            f"{label:<{label_width}} |{spark}| "
            f"min={min(present):.4g} max={max(present):.4g} last={last:.4g}"
        )
    if store.annotations:
        lines.append("annotations:")
        for a in store.annotations:
            extra = "".join(
                f" {k}={v}" for k, v in sorted(a.fields.items())
            )
            lines.append(
                f"  [{a.start:.3f}s .. {a.end:.3f}s] {a.type} "
                f"severity={a.severity:.3f}{extra}"
            )
    if summary:
        slo = summary.get("slo") or {}
        for name in sorted(slo):
            s = slo[name]
            worst = ", ".join(
                f"{label}={burn:.3f}" for label, burn in sorted(s["worst_burn"].items())
            )
            lines.append(
                f"slo {name}: {s['breaches']}/{s['requests']} over "
                f"{s['threshold']:g}s, worst burn {worst}, "
                f"time above SLO {s['time_above_slo']:.3f}s"
            )
    return "\n".join(lines)
