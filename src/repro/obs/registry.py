"""A metrics registry unifying the repo's scattered counter structs.

``IOStats``, ``CleanerStats``, ``LFSStats``, ``LogWriteStats``, and
``FFSStats`` each grew their own ad-hoc shape. The registry puts them
behind one protocol: :meth:`MetricsRegistry.snapshot` walks every
registered source and copies its numeric state into a plain nested dict,
and :meth:`MetricsRegistry.delta` subtracts two snapshots — so "what did
this phase cost" is one subtraction regardless of which subsystem the
counters live in.

Sources may be objects (dataclasses or plain attribute bags) or
zero-argument callables returning one; callables re-resolve at each
snapshot, which keeps a registration valid across ``Disk.reset_stats``
swapping the stats object out from under it.

Scraping rules: ints and floats are copied; dicts are copied with keys
stringified (enum keys use their ``name``) keeping only their numeric
entries — non-numeric entries are skipped individually and counted as
``<field>_skipped`` so a mixed-value stats dict still contributes its
counters instead of vanishing wholesale. Lists contribute their length
as ``<field>_count``. Everything else — derived properties, payloads,
private state — is skipped, so snapshots hold raw counters only and
deltas are always well-defined.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

Snapshot = dict[str, dict[str, Any]]


def _scrape_value(value: Any):
    """Numeric-only projection of one scalar attribute, or None to skip."""
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return value
    return None


def _scrape_dict(value: dict) -> tuple[dict, int]:
    """``(numeric entries, skipped count)`` of one dict-valued attribute.

    Entries are filtered individually — one string or bool value must
    not drop the dict's remaining counters from the snapshot.
    """
    out = {}
    skipped = 0
    for key, item in value.items():
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            skipped += 1
            continue
        out[getattr(key, "name", None) or str(key)] = item
    return out, skipped


def scrape(source: Any) -> dict[str, Any]:
    """Copy one stats object's numeric state into a plain dict."""
    if dataclasses.is_dataclass(source):
        names = [f.name for f in dataclasses.fields(source)]
    else:
        names = [n for n in vars(source) if not n.startswith("_")]
    out: dict[str, Any] = {}
    for name in names:
        value = getattr(source, name)
        if isinstance(value, list):
            out[f"{name}_count"] = len(value)
            continue
        if isinstance(value, dict):
            kept, skipped = _scrape_dict(value)
            out[name] = kept
            if skipped:
                out[f"{name}_skipped"] = skipped
            continue
        scraped = _scrape_value(value)
        if scraped is not None:
            out[name] = scraped
    return out


class MetricsRegistry:
    """Named counter sources with a uniform snapshot()/delta() protocol."""

    def __init__(self) -> None:
        self._sources: dict[str, Any] = {}

    def register(self, name: str, source: Any | Callable[[], Any]) -> None:
        """Add (or replace) a source under ``name``."""
        self._sources[name] = source

    def names(self) -> list[str]:
        return sorted(self._sources)

    def source(self, name: str) -> Any:
        """The live source object registered under ``name``."""
        source = self._sources[name]
        return source() if callable(source) else source

    def snapshot(self) -> Snapshot:
        """Copy every source's counters: ``{source: {field: number}}``."""
        return {name: scrape(self.source(name)) for name in self._sources}

    @staticmethod
    def delta(later: Snapshot, earlier: Snapshot) -> Snapshot:
        """Per-field ``later - earlier``; a field missing on either side
        counts as 0 there.

        Fields (or whole sources) present only in ``earlier`` — a source
        replaced or deregistered mid-run — surface as *negative* deltas
        rather than disappearing, so phase accounting stays conservative:
        summing deltas over consecutive phases always reproduces the
        end-to-end delta.
        """
        out: Snapshot = {}
        for source_name, fields in later.items():
            base = earlier.get(source_name, {})
            diff: dict[str, Any] = {}
            for field, value in fields.items():
                before = base.get(field, 0)
                if isinstance(value, dict):
                    before = before if isinstance(before, dict) else {}
                    diff[field] = {
                        k: v - before.get(k, 0) for k, v in value.items()
                    }
                    for k, v in before.items():
                        if k not in value:
                            diff[field][k] = -v
                else:
                    before = before if isinstance(before, (int, float)) else 0
                    diff[field] = value - before
            for field, before in base.items():
                if field in fields:
                    continue
                diff[field] = (
                    {k: -v for k, v in before.items()}
                    if isinstance(before, dict)
                    else -before
                )
            out[source_name] = diff
        for source_name in earlier:
            if source_name in later:
                continue
            out[source_name] = MetricsRegistry.delta(
                {source_name: {}}, {source_name: earlier[source_name]}
            )[source_name]
        return out

    def render(self, snapshot: Snapshot | None = None) -> str:
        """An ASCII table of one snapshot (current state by default)."""
        from repro.analysis.ascii_chart import render_table

        snap = snapshot if snapshot is not None else self.snapshot()
        rows = []
        for source_name in sorted(snap):
            for field in sorted(snap[source_name]):
                value = snap[source_name][field]
                if isinstance(value, dict):
                    value = ", ".join(f"{k}={v}" for k, v in sorted(value.items()))
                elif isinstance(value, float):
                    value = f"{value:.6g}"
                rows.append([source_name, field, value])
        return render_table(["source", "counter", "value"], rows, title="metrics registry")
