"""Typed events for the observability layer.

Every event carries the *simulated* time at which it happened (the same
clock the disk model advances), a dotted kind string, the attribution
cause active when it was emitted (if any), and a flat dict of
kind-specific fields. The taxonomy:

=================  ====================================================
kind               fields
=================  ====================================================
``disk.read``      ``addr, blocks, elapsed, seek``
``disk.write``     ``addr, blocks, elapsed, seek``
``log.write``      ``segment, seq, offset, blocks, cleaning, kinds``
``log.segment_open``  ``segment``
``clean.pass``     ``victims, moved``
``clean.segment``  ``segment, utilization, empty``
``checkpoint.write``  ``seq, region, blocks, timestamp``
``cache.evict``    ``inum, fbn``
``cache.flush``    ``dirty, items, cleaning``
``media.retry``    ``addr, op, attempt, backoff``
``media.error``    ``addr, op, attempts``
``clean.quarantine``  ``segment, rescued, lost``
``scrub.segment``  ``segment, blocks, bad``
``recover.scavenge``  ``segments, inodes, partial_writes``
``fs.readonly``    ``media_errors, budget``
``span.begin``     ``span, name[, parent, ...]``
``span.end``       ``span, name, dur``
``server.arrive``  ``client, tenant, op, depth``
``server.start``   ``client, tenant, op, wait``
``server.done``    ``client, tenant, op, latency, service``
``flash.erase``    ``block, start, blocks, count, reason``
``flash.trim``     ``segment, start, blocks, erased``
``fs.sync``        ``staged, bytes, unstaged_dirty``
``nvm.append``     ``seq, bytes, records, used, elapsed``
``nvm.truncate``   ``records, bytes, uncovered``
``nvm.fail``       ``reason``
``timeline.annotation``  ``type, start, end, severity[, ...]``
=================  ====================================================

Events emitted while a tenant attribution scope is open additionally
carry a ``tenant`` field (the server wraps every request it services in
one), so per-tenant views — busy-time rows, the ledger's
blocks-by-tenant breakdown — derive from the same stream.

Spans are nested scopes (a clean pass, a checkpoint, a scrub, a
recovery) emitted into the same stream: ``span.begin`` opens a scope,
``span.end`` closes it with its simulated duration, and every event
emitted while a span is open carries a ``span`` field naming the
innermost scope's id — so a flat trace reconstructs the full tree.

``log.write``'s ``kinds`` maps :class:`~repro.core.constants.BlockKind`
*names* to block counts for that partial write, so the Table 4 bandwidth
breakdown can be rederived from the trace alone and compared
bit-identically with the legacy ``LogWriteStats`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass

DISK_READ = "disk.read"
DISK_WRITE = "disk.write"
LOG_WRITE = "log.write"
LOG_SEGMENT_OPEN = "log.segment_open"
CLEAN_PASS = "clean.pass"
CLEAN_SEGMENT = "clean.segment"
CHECKPOINT_WRITE = "checkpoint.write"
CACHE_EVICT = "cache.evict"
CACHE_FLUSH = "cache.flush"
MEDIA_RETRY = "media.retry"
MEDIA_ERROR = "media.error"
CLEAN_QUARANTINE = "clean.quarantine"
SCRUB_SEGMENT = "scrub.segment"
RECOVER_SCAVENGE = "recover.scavenge"
FS_READONLY = "fs.readonly"
SPAN_BEGIN = "span.begin"
SPAN_END = "span.end"
SERVER_ARRIVE = "server.arrive"
SERVER_START = "server.start"
SERVER_DONE = "server.done"
# Flash lifecycle: the device erased an erase block (``block`` is the
# erase-block index, ``count`` its new wear count, ``reason`` is
# ``"reuse"`` for an on-demand erase stalling a program or ``"trim"``
# for an erase-ahead triggered by TRIM); the FS trimmed a dead segment.
FLASH_ERASE = "flash.erase"
FLASH_TRIM = "flash.trim"
# NVM staging lifecycle: a sync/fsync was acknowledged (``staged`` says
# whether it was absorbed into the NVM log or flushed synchronously;
# ``unstaged_dirty`` must be 0 — the acked-sync-durable invariant); the
# staging device accepted a framed record; the FS truncated the staging
# log after a covering flush (``uncovered`` must be 0); the device died.
FS_SYNC = "fs.sync"
NVM_APPEND = "nvm.append"
NVM_TRUNCATE = "nvm.truncate"
NVM_FAIL = "nvm.fail"
# The flight recorder's phase detector flagged an anomaly (a cleaning
# storm, a read-only degradation, an NVM destage stall). ``type`` names
# the anomaly, ``start``/``end`` bound it in simulated time, and
# ``severity`` is its peak intensity — the same record lands in the
# timeline store as a typed annotation.
TIMELINE_ANNOTATION = "timeline.annotation"

#: Version of the trace JSONL on-disk format. Bumped whenever the header,
#: trailer, or event line shape changes incompatibly. Schema 1 traces had
#: no header line at all; schema 2 added the ``trace.header`` /
#: ``trace.trailer`` framing lines and span events.
TRACE_SCHEMA = 2

EVENT_KINDS = (
    DISK_READ,
    DISK_WRITE,
    LOG_WRITE,
    LOG_SEGMENT_OPEN,
    CLEAN_PASS,
    CLEAN_SEGMENT,
    CHECKPOINT_WRITE,
    CACHE_EVICT,
    CACHE_FLUSH,
    MEDIA_RETRY,
    MEDIA_ERROR,
    CLEAN_QUARANTINE,
    SCRUB_SEGMENT,
    RECOVER_SCAVENGE,
    FS_READONLY,
    SPAN_BEGIN,
    SPAN_END,
    SERVER_ARRIVE,
    SERVER_START,
    SERVER_DONE,
    FLASH_ERASE,
    FLASH_TRIM,
    FS_SYNC,
    NVM_APPEND,
    NVM_TRUNCATE,
    NVM_FAIL,
    TIMELINE_ANNOTATION,
)


@dataclass(slots=True)
class Event:
    """One observed occurrence at a simulated instant."""

    time: float
    kind: str
    cause: str | None
    fields: dict

    def to_dict(self) -> dict:
        """A JSON-serializable flat representation (for JSONL export)."""
        out = {"t": self.time, "kind": self.kind}
        if self.cause is not None:
            out["cause"] = self.cause
        out.update(self.fields)
        return out
