"""The multi-tenant file server: event loop + policy queue + VFS.

``run_server`` is the subsystem's entry point: it formats an LFS sized
for the configured load, builds the tenant registry and namespaces,
installs the load generator on an :class:`~repro.server.loop.EventLoop`,
and services requests through the :class:`~repro.vfs.FileSystemView`
handle layer — one request at a time, in policy order, with cleaner
passes and checkpoints interleaved as loop events of their own.

What the run measures, per tenant and globally:

- **latency** (arrival to completion, simulated seconds) into
  :class:`~repro.obs.histogram.LatencyHistogram` — queueing delay
  included, which is where cleaner interference lives;
- **attribution** — every disk second charged to (cause, tenant), so
  "t3 spent 1.2s of its life inside emergency cleans" is a report row,
  not a guess (background passes charge :data:`~repro.obs.SYSTEM_TENANT`);
- **digests** — the loop's event-order digest and a latency digest over
  every completion, making determinism a string comparison.

The server is deliberately a *single-server* queue: the LFS core is
synchronous, so service is serialized and the policy's only power is
choosing the order — which is exactly the knob FIFO vs DRR disagree
about, and the experiment the tail-latency bench runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.config import LFSConfig
from repro.core.errors import NoSpaceError, ReadOnlyError
from repro.core.filesystem import LFS
from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry
from repro.obs import Observation, SYSTEM_TENANT
from repro.obs.events import SERVER_ARRIVE, SERVER_DONE, SERVER_START
from repro.server.clients import LoadGenerator, Request, WorkloadConfig
from repro.server.loop import EventLoop
from repro.server.policies import DEFAULT_QUANTUM, make_policy
from repro.server.tenants import TenantRegistry
from repro.vfs import FileSystemView


@dataclass
class ServerConfig:
    """One server run: the workload plus the serving discipline.

    The cleaner knob selects between three regimes:

    - ``cleaner=True`` — the loop schedules a cleaner check every
      ``cleaner_period`` simulated seconds (a pass runs when clean
      segments fall below ``clean_low_water``, charged to the system
      tenant), and the FS keeps a lower inline emergency threshold
      whose passes are charged to the requesting tenant;
    - ``cleaner=False`` — no background passes at all; only the
      emergency headroom path cleans, always inline, always charged to
      the tenant whose request needed the space.

    Checkpoints are loop events either way (the FS's own timed trigger
    is disabled in favor of the loop's), every
    ``checkpoint_interval`` simulated seconds.
    """

    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    policy: str = "fifo"
    quantum: float = DEFAULT_QUANTUM
    cleaner: bool = True
    cleaner_period: float = 0.5
    clean_low_water: int = 20
    clean_high_water: int = 40
    checkpoint_interval: float = 5.0
    cpu_op_seconds: float = 0.002
    block_size: int = 1024
    segment_bytes: int = 256 * 1024
    #: device capacity as a multiple of the expected write volume; small
    #: enough that the log wraps and the cleaner has real work.
    disk_headroom: float = 1.6
    #: attach an NVM staging board (default profile) so per-handle
    #: fsyncs are absorbed as staging-log appends instead of forcing a
    #: partial-segment flush per commit
    nvram: bool = False
    #: attach the flight recorder: sample every metrics source plus the
    #: derived gauges at ``timeline_cadence`` simulated seconds, track
    #: per-tenant SLO burn rates, and detect anomaly phases. Purely
    #: observational — the event-order and latency digests are identical
    #: with it on or off.
    timeline: bool = False
    timeline_cadence: float = 0.25
    timeline_max_samples: int = 512
    #: SLO objective applied per tenant (plus a global ``server``
    #: objective) when the timeline is on: ``slo_target`` of each
    #: tenant's requests must complete within ``slo_latency`` simulated
    #: seconds. ``slo_latency=0`` disables SLO tracking.
    slo_latency: float = 0.0
    slo_target: float = 0.99
    slo_windows: tuple[float, ...] = (5.0, 60.0)

    def geometry(self) -> DiskGeometry:
        w = self.workload
        # Expected bytes appended to the log: setup creates + measured
        # writes/appends. Sizing the device at only ``disk_headroom``
        # times that volume is deliberate — the log must wrap at bench
        # scale, or there is no cleaner interference to measure.
        volume = w.clients * (w.files_per_client + w.ops_per_client) * max(
            w.file_size, self.block_size
        )
        blocks = int(volume * self.disk_headroom) // self.block_size
        floor = 48 * (self.segment_bytes // self.block_size)
        blocks = max(blocks, floor)
        return DiskGeometry.wren4(block_size=self.block_size, num_blocks=blocks)

    def fs_config(self) -> LFSConfig:
        w = self.workload
        if self.cleaner:
            # Inline emergency floor sits below the loop's thresholds so
            # background passes do the steady-state work and the inline
            # path fires only when the loop falls behind.
            low = max(4, self.clean_low_water // 3)
            high = max(low, self.clean_high_water // 3)
        else:
            low = high = 0
        return LFSConfig(
            block_size=self.block_size,
            segment_bytes=self.segment_bytes,
            max_inodes=max(1024, w.clients * (w.files_per_client + 2) + w.tenants + 16),
            cache_blocks=16384,
            clean_low_water=low,
            clean_high_water=high,
            checkpoint_interval=0.0,  # the loop owns checkpoints
        )


@dataclass
class ServerResult:
    """Everything one run produced, JSON-serializable via ``to_dict``."""

    policy: str
    cleaner: bool
    clients: int
    tenants: int
    requests: int
    failed: int
    elapsed_seconds: float
    events_fired: int
    cleaner_passes: int
    checkpoints: int
    digest: str           # loop event-order digest
    latency_digest: str   # completion-stream digest
    latency: dict         # global + per-tenant percentile summaries
    tenant_summary: dict
    attribution_seconds: dict
    tenant_attribution: dict
    tenant_cleaning_seconds: dict
    watchdog_violations: int = 0
    #: flight-recorder summary (samples, digest, annotations, SLO burn
    #: rates, curve peaks) — None unless ``config.timeline`` was set
    timeline: dict | None = None

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "cleaner": self.cleaner,
            "clients": self.clients,
            "tenants": self.tenants,
            "requests": self.requests,
            "failed": self.failed,
            "elapsed_seconds": self.elapsed_seconds,
            "events_fired": self.events_fired,
            "cleaner_passes": self.cleaner_passes,
            "checkpoints": self.checkpoints,
            "digest": self.digest,
            "latency_digest": self.latency_digest,
            "latency": self.latency,
            "tenants_detail": self.tenant_summary,
            "attribution_seconds": self.attribution_seconds,
            "tenant_attribution": self.tenant_attribution,
            "tenant_cleaning_seconds": self.tenant_cleaning_seconds,
            "watchdog_violations": self.watchdog_violations,
            "timeline": self.timeline,
        }


class FileServer:
    """Admission queue + dispatcher over one FileSystemView."""

    def __init__(
        self,
        vfs: FileSystemView,
        loop: EventLoop,
        registry: TenantRegistry,
        queue,
        obs: Observation,
        generator: LoadGenerator,
        *,
        cpu_op_seconds: float = 0.002,
        sync_writes: bool = False,
    ) -> None:
        self.vfs = vfs
        self.fs = vfs.fs
        self.loop = loop
        self.registry = registry
        self.queue = queue
        self.obs = obs
        self.generator = generator
        self.cpu_op_seconds = cpu_op_seconds
        self.sync_writes = sync_writes
        self.completed = 0
        self.failed = 0
        #: optional hook fired after every request completes (run_server
        #: uses it to cancel pending system ticks once all clients drain)
        self.on_request_complete = None
        self._busy = False
        self._dirs: set[str] = set()
        self._latency_digest = hashlib.sha256()
        self.latency = obs.histogram("server")

    # ------------------------------------------------------------------
    # admission

    def submit(self, request: Request) -> None:
        """Accept one request into the admission queue."""
        now = self.loop.now
        request.submitted_at = now
        tenant = self.registry.get(request.tenant)
        tenant.stats.submitted += 1
        tenant.stats.queue_depth += 1
        if tenant.stats.queue_depth > tenant.stats.queue_depth_max:
            tenant.stats.queue_depth_max = tenant.stats.queue_depth
        self.queue.push(request)
        self.obs.emit(
            SERVER_ARRIVE,
            client=request.client,
            tenant=request.tenant,
            op=request.op,
            depth=len(self.queue),
        )
        if not self._busy:
            self._busy = True
            self.loop.at(now, "server.dispatch", self._dispatch)

    # ------------------------------------------------------------------
    # service

    def _dispatch(self, loop: EventLoop) -> None:
        request = self.queue.pop()
        if request is None:
            self._busy = False
            return
        tenant = self.registry.get(request.tenant)
        tenant.stats.queue_depth -= 1
        request.started_at = loop.now
        self.obs.emit(
            SERVER_START,
            client=request.client,
            tenant=request.tenant,
            op=request.op,
            wait=request.wait,
        )
        with self.obs.tenant(request.tenant):
            try:
                self._execute(request, tenant)
            except (NoSpaceError, ReadOnlyError):
                self.failed += 1
                tenant.stats.failed += 1
        request.completed_at = loop.now
        self._account(request, tenant)
        # Chain the next dispatch as its own event so queued arrivals
        # with earlier timestamps (admitted while this request held the
        # clock) enter the queue before the policy picks again.
        self.loop.at(loop.now, "server.dispatch", self._dispatch)

    def _ensure_dirs(self, tenant_prefix: str, path: str) -> None:
        parts = path.strip("/").split("/")[:-1]
        built = tenant_prefix
        for part in parts:
            built = f"{built}/{part}"
            if built not in self._dirs:
                if not self.fs.exists(built):
                    self.fs.mkdir(built)
                self._dirs.add(built)

    def _execute(self, request: Request, tenant) -> None:
        path = tenant.path(request.path)
        payload = b"x" * request.size if request.size else b""
        self.fs.disk.clock.advance(self.cpu_op_seconds)
        # Per-handle commit inside the tenant's attribution scope, so
        # staging (or the forced partial flush without NVM) is charged
        # to the tenant whose request demanded the durability.
        commit = self.sync_writes
        if request.op == "create":
            self._ensure_dirs(tenant.prefix, request.path)
            with self.vfs.open(path, "w") as fh:
                fh.write(payload)
                if commit:
                    fh.fsync()
            tenant.stats.bytes_written += len(payload)
        elif request.op == "write":
            with self.vfs.open(path, "r+") as fh:
                fh.write(payload)
                if commit:
                    fh.fsync()
            tenant.stats.bytes_written += len(payload)
        elif request.op == "append":
            with self.vfs.open(path, "a") as fh:
                fh.write(payload)
                if commit:
                    fh.fsync()
            tenant.stats.bytes_written += len(payload)
        elif request.op == "read":
            with self.vfs.open(path, "r") as fh:
                tenant.stats.bytes_read += len(fh.read())
        elif request.op == "delete":
            self.vfs.remove(path)
        else:
            raise ValueError(f"unknown op {request.op!r}")

    def _account(self, request: Request, tenant) -> None:
        latency = request.latency
        service = request.completed_at - request.started_at
        tenant.stats.completed += 1
        tenant.stats.service_seconds += service
        tenant.stats.wait_seconds += request.wait
        tenant.latency.record(latency)
        self.latency.record(latency)
        self.completed += 1
        self._latency_digest.update(
            f"{request.client}:{request.op}:{latency!r}".encode()
        )
        self.obs.emit(
            SERVER_DONE,
            client=request.client,
            tenant=request.tenant,
            op=request.op,
            latency=latency,
            service=service,
        )
        self.generator.on_complete(self.loop, request)
        if self.on_request_complete is not None:
            self.on_request_complete()

    @property
    def latency_digest(self) -> str:
        return self._latency_digest.hexdigest()[:16]


def run_server(
    config: ServerConfig | None = None,
    *,
    obs: Observation | None = None,
    watchdog: bool = False,
) -> ServerResult:
    """Run one multi-tenant serving experiment to completion.

    Deterministic: the returned result's ``digest`` (event order) and
    ``latency_digest`` (completion stream) depend only on ``config`` —
    the same seed reproduces them bit-for-bit in any process.
    """
    config = config if config is not None else ServerConfig()
    w = config.workload

    disk = Disk(config.geometry())
    if obs is None:
        obs = Observation(ring_capacity=4096)
    ledger = None
    if watchdog:
        from repro.obs import SegmentLedger, Watchdog

        ledger = SegmentLedger()
        ledger.install(obs)
        Watchdog(ledger=ledger).install(obs)
    nvm = None
    if config.nvram:
        from repro.disk.nvram import NVMDevice

        nvm = NVMDevice(clock=disk.clock)
    fs = LFS.format(disk, config.fs_config(), obs=obs, nvram=nvm)
    vfs = FileSystemView(fs)
    loop = EventLoop(disk.clock)

    generator = LoadGenerator(w)
    registry = TenantRegistry()
    exact_limit = 512 if w.clients <= 2048 else 128
    for index, tid in enumerate(generator.tenant_ids()):
        registry.add(tid, weight=generator.tenant_weight(index),
                     exact_limit=exact_limit)
        fs.mkdir(f"/{tid}")
    obs.registry.register("tenants", registry.counters)

    recorder = None
    if config.timeline:
        from repro.obs.timeline import SLOObjective, TimelineRecorder

        slos = []
        if config.slo_latency > 0:
            slos = [
                SLOObjective(
                    name=tid,
                    threshold=config.slo_latency,
                    target=config.slo_target,
                    windows=config.slo_windows,
                )
                for tid in generator.tenant_ids()
            ]
            slos.append(SLOObjective(
                name="server",
                threshold=config.slo_latency,
                target=config.slo_target,
                windows=config.slo_windows,
            ))
        recorder = TimelineRecorder(
            cadence=config.timeline_cadence,
            max_samples=config.timeline_max_samples,
            slos=slos,
        ).install(obs)
        # The loop drives the cadence gate after every fired event; the
        # sampler is not an event, so digests are unaffected.
        loop.sampler = recorder.maybe_sample

    weights = {t.tid: t.weight for t in registry.tenants()}
    queue = make_policy(config.policy, quantum=config.quantum, weights=weights)
    server = FileServer(
        vfs, loop, registry, queue, obs, generator,
        cpu_op_seconds=config.cpu_op_seconds,
        sync_writes=w.sync_writes,
    )

    expected = sum(c.budget for c in generator.clients)
    counters = {"cleaner_passes": 0, "checkpoints": 0}

    pending: dict[str, object] = {}

    def finished() -> bool:
        return server.completed + server.failed >= expected

    def cleaner_tick(lp: EventLoop) -> None:
        if finished():
            return
        if fs.usage.clean_count < config.clean_low_water:
            counters["cleaner_passes"] += 1
            with obs.tenant(SYSTEM_TENANT):
                fs.cleaner.clean(config.clean_high_water)
        pending["cleaner"] = lp.after(
            config.cleaner_period, "cleaner.tick", cleaner_tick
        )

    def checkpoint_tick(lp: EventLoop) -> None:
        if finished():
            return
        counters["checkpoints"] += 1
        with obs.tenant(SYSTEM_TENANT):
            fs.checkpoint()
        pending["checkpoint"] = lp.after(
            config.checkpoint_interval, "checkpoint.tick", checkpoint_tick
        )

    def cancel_ticks_when_done() -> None:
        # Without this, a far-future checkpoint tick would drag the clock
        # out long past the last completion and inflate elapsed time.
        if finished():
            for event in pending.values():
                event.cancel()

    server.on_request_complete = cancel_ticks_when_done

    if config.cleaner:
        pending["cleaner"] = loop.after(
            config.cleaner_period, "cleaner.tick", cleaner_tick
        )
    if config.checkpoint_interval > 0:
        pending["checkpoint"] = loop.after(
            config.checkpoint_interval, "checkpoint.tick", checkpoint_tick
        )

    generator.install(loop, server)
    loop.run()

    if not finished():
        raise RuntimeError(
            f"server run stalled: {server.completed + server.failed} of "
            f"{expected} requests finished with an empty event heap"
        )
    with obs.tenant(SYSTEM_TENANT):
        fs.sync()
    if recorder is not None:
        recorder.finish(disk.clock.now)

    latency_summary = {"server": server.latency.percentiles()}
    for tenant in registry.tenants():
        latency_summary[tenant.tid] = tenant.latency.percentiles()

    return ServerResult(
        policy=config.policy,
        cleaner=config.cleaner,
        clients=w.clients,
        tenants=w.tenants,
        requests=server.completed,
        failed=server.failed,
        elapsed_seconds=disk.clock.now,
        events_fired=loop.events_fired,
        cleaner_passes=counters["cleaner_passes"],
        checkpoints=counters["checkpoints"],
        digest=loop.digest,
        latency_digest=server.latency_digest,
        latency=latency_summary,
        tenant_summary=registry.summary(),
        attribution_seconds=dict(obs.attribution.seconds),
        tenant_attribution={
            t: dict(row) for t, row in sorted(obs.attribution.tenant_seconds.items())
        },
        tenant_cleaning_seconds=obs.attribution.tenant_cleaning_seconds(),
        watchdog_violations=0,
        timeline=recorder.summary() if recorder is not None else None,
    )
