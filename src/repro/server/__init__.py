"""Multi-tenant file server front-end: event loop, tenants, policies.

The package turns the synchronous LFS core into a served system: an
event-loop scheduler interleaves client requests, cleaner passes, and
checkpoints in simulated time; a tenant registry maps clients to
namespace prefixes; pluggable admission policies (FIFO, deficit
round-robin) order service; and latency histograms + per-tenant busy
time attribution measure who paid for the cleaner.

Entry point: :func:`repro.server.frontend.run_server`, or the
``repro serve`` CLI.
"""

from repro.server.clients import Client, LoadGenerator, Request, WorkloadConfig
from repro.server.frontend import FileServer, ServerConfig, ServerResult, run_server
from repro.server.loop import EventLoop, ScheduledEvent
from repro.server.policies import (
    DEFAULT_QUANTUM,
    DRRQueue,
    FIFOQueue,
    POLICIES,
    make_policy,
)
from repro.server.tenants import Tenant, TenantRegistry, TenantStats

__all__ = [
    "Client",
    "DEFAULT_QUANTUM",
    "DRRQueue",
    "EventLoop",
    "FIFOQueue",
    "FileServer",
    "LoadGenerator",
    "POLICIES",
    "Request",
    "ScheduledEvent",
    "ServerConfig",
    "ServerResult",
    "Tenant",
    "TenantRegistry",
    "TenantStats",
    "WorkloadConfig",
    "make_policy",
    "run_server",
]
