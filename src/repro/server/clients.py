"""Simulated clients: the load the multi-tenant front-end serves.

Each client belongs to a tenant, owns a smallfile-style working set
(``/t<T>/c<CLIENT>/f<N>``, 1 KB-ish files), and issues an
open/read/write mix. Two arrival disciplines:

- **closed-loop** (default): a client has at most one request in flight;
  after a completion it thinks for a jittered think time, then submits
  the next. Offered load self-throttles under congestion — the classic
  interactive-user model, and the right one for "what latency do N
  users see".
- **open-loop**: every request's arrival time is precomputed from the
  client's rate, regardless of completions. Load does *not* back off,
  so queues grow unboundedly past saturation — the right model for
  measuring tail collapse.

Determinism: every client gets its own ``random.Random`` seeded by
:func:`~repro.simulator.sweep.derive_point_seed` (CRC-based, stable
across processes and Python versions), and all think times, mix draws,
and file choices come from that stream. Same seed, same schedule —
always.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.simulator.sweep import derive_point_seed

#: Request operations, in mix-weight order.
OPS = ("write", "read", "append")

MODES = ("closed", "open")


@dataclass
class Request:
    """One client request travelling arrival -> queue -> service."""

    client: int
    tenant: str
    op: str          # "create" | "write" | "read" | "append" | "delete"
    path: str        # tenant-relative, e.g. "/c12/f3"
    size: int = 0    # payload bytes for writes/appends
    submitted_at: float = 0.0
    started_at: float = 0.0
    completed_at: float = 0.0

    @property
    def cost(self) -> float:
        """Fairness cost in KB of payload (min 1 per request)."""
        return max(1.0, self.size / 1024.0)

    @property
    def wait(self) -> float:
        return self.started_at - self.submitted_at

    @property
    def latency(self) -> float:
        return self.completed_at - self.submitted_at


@dataclass
class WorkloadConfig:
    """Shape of the generated load (everything derived from ``seed``).

    ``ops_per_client`` counts post-setup requests; every client first
    creates its ``files_per_client`` working-set files (those creates
    are requests too, and are measured — cold-start is part of life).
    A client's requests ramp in over ``ramp_seconds`` so 10k clients do
    not all arrive at t=0.
    """

    clients: int = 100
    tenants: int = 4
    ops_per_client: int = 4
    files_per_client: int = 2
    file_size: int = 1024
    mode: str = "closed"
    think_seconds: float = 0.25
    open_rate: float = 4.0          # requests/sec per client (open-loop)
    ramp_seconds: float = 1.0
    #: op mix weights over OPS = (write, read, append)
    mix: tuple[float, float, float] = (0.45, 0.40, 0.15)
    seed: int = 42
    #: optional per-tenant weight overrides (tenant index -> weight)
    tenant_weights: dict[int, float] = field(default_factory=dict)
    #: extra fraction of the client population assigned to tenant 0 on
    #: top of its round-robin share — the asymmetric load that separates
    #: FIFO from DRR (0.0 = symmetric tenants)
    heavy_fraction: float = 0.0
    #: commit every mutating request with a per-handle ``fsync`` before
    #: completion — the mail-server/database pattern (paper §5.1); pair
    #: with NVM staging to measure what the board buys under real load
    sync_writes: bool = False

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if not 1 <= self.tenants <= self.clients:
            raise ValueError("tenants must be in [1, clients]")
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        if self.ops_per_client < 0 or self.files_per_client < 1:
            raise ValueError("ops_per_client must be >= 0, files_per_client >= 1")
        if min(self.mix) < 0 or sum(self.mix) <= 0:
            raise ValueError("mix weights must be non-negative and sum > 0")
        if not 0.0 <= self.heavy_fraction < 1.0:
            raise ValueError("heavy_fraction must be in [0, 1)")

    def tenant_of(self, client: int) -> int:
        """Tenant index of one client.

        The first ``heavy_fraction`` of clients all belong to tenant 0
        (the aggressor); the rest are assigned round-robin across every
        tenant, so all tenants stay populated.
        """
        if client < int(self.clients * self.heavy_fraction):
            return 0
        return client % self.tenants


class Client:
    """One simulated client: a private RNG and a request cursor."""

    __slots__ = ("cid", "tenant", "rng", "issued", "budget", "files",
                 "file_size", "think_seconds", "mix_cdf", "_created")

    def __init__(self, cid: int, tenant: str, cfg: WorkloadConfig) -> None:
        self.cid = cid
        self.tenant = tenant
        self.rng = random.Random(derive_point_seed(cfg.seed, "client", cid))
        self.issued = 0
        # setup creates + measured ops
        self.budget = cfg.files_per_client + cfg.ops_per_client
        self.files = cfg.files_per_client
        self.file_size = cfg.file_size
        self.think_seconds = cfg.think_seconds
        total = sum(cfg.mix)
        acc, cdf = 0.0, []
        for w in cfg.mix:
            acc += w / total
            cdf.append(acc)
        self.mix_cdf = cdf
        self._created = 0

    @property
    def done(self) -> bool:
        return self.issued >= self.budget

    def think_time(self) -> float:
        """Jittered think delay: uniform in [0.5, 1.5] x think_seconds."""
        return self.think_seconds * (0.5 + self.rng.random())

    def next_request(self) -> Request:
        """The client's next request (setup creates, then the mix)."""
        if self.done:
            raise RuntimeError(f"client {self.cid} exhausted its budget")
        self.issued += 1
        if self._created < self.files:
            idx = self._created
            self._created += 1
            return Request(
                client=self.cid, tenant=self.tenant, op="create",
                path=f"/c{self.cid}/f{idx}", size=self.file_size,
            )
        draw = self.rng.random()
        op = OPS[-1]
        for i, edge in enumerate(self.mix_cdf):
            if draw <= edge:
                op = OPS[i]
                break
        fidx = self.rng.randrange(self.files)
        size = self.file_size if op in ("write", "append") else 0
        return Request(
            client=self.cid, tenant=self.tenant, op=op,
            path=f"/c{self.cid}/f{fidx}", size=size,
        )


class LoadGenerator:
    """Builds the client population and drives arrivals on the loop.

    ``install(loop, server)`` schedules every client's first arrival;
    closed-loop clients are re-armed by the server's completion callback
    (:meth:`on_complete`), open-loop clients precompute their whole
    arrival schedule up front.
    """

    def __init__(self, cfg: WorkloadConfig) -> None:
        self.cfg = cfg
        self.clients: list[Client] = [
            Client(cid, f"t{cfg.tenant_of(cid)}", cfg) for cid in range(cfg.clients)
        ]
        self.requests_submitted = 0

    def tenant_ids(self) -> list[str]:
        return [f"t{i}" for i in range(self.cfg.tenants)]

    def tenant_weight(self, index: int) -> float:
        return self.cfg.tenant_weights.get(index, 1.0)

    def install(self, loop, server) -> None:
        self._server = server
        for client in self.clients:
            if client.done:
                continue
            start = client.rng.random() * self.cfg.ramp_seconds
            if self.cfg.mode == "open":
                # Precompute the whole schedule: arrivals ignore service.
                when = start
                for _ in range(client.budget):
                    loop.at(when, "client.arrive",
                            self._arrival_callback(client))
                    when += self._interarrival(client)
            else:
                loop.at(start, "client.arrive", self._arrival_callback(client))

    def _interarrival(self, client: Client) -> float:
        # Jittered fixed-rate stream (uniform, not exponential: bounded
        # burstiness keeps small smoke runs from degenerate schedules).
        return (0.5 + client.rng.random()) / self.cfg.open_rate

    def _arrival_callback(self, client: Client):
        def fire(loop) -> None:
            if client.done:
                return
            self.requests_submitted += 1
            self._server.submit(client.next_request())
        return fire

    def on_complete(self, loop, request: Request) -> None:
        """Server completion hook: re-arm closed-loop clients."""
        if self.cfg.mode != "closed":
            return
        client = self.clients[request.client]
        if not client.done:
            loop.after(client.think_time(), "client.think",
                       self._arrival_callback(client))
