"""Tenant namespaces and per-tenant service accounting.

A tenant is a named slice of the shared file system: tenant ``t3`` owns
everything under ``/t3``, and every request a client submits is resolved
against its tenant's prefix — clients cannot name paths outside their
namespace (LogBase's cloud-store shape: one log, many isolated users).

The registry also owns the per-tenant accounting the fairness policies
and reports read: submitted/completed counts, bytes moved, service and
wait time, instantaneous and high-water queue depth, and a per-tenant
:class:`~repro.obs.histogram.LatencyHistogram`. The counters live in a
plain dataclass so :func:`repro.obs.registry.scrape` picks them up like
every other stats struct.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import InvalidOperationError
from repro.obs.histogram import LatencyHistogram


@dataclass
class TenantStats:
    """Service accounting for one tenant (scrape-compatible counters)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    #: simulated seconds requests spent being serviced (clock delta)
    service_seconds: float = 0.0
    #: simulated seconds requests spent queued before dispatch
    wait_seconds: float = 0.0
    queue_depth: int = 0
    queue_depth_max: int = 0


class Tenant:
    """One tenant: an id, a namespace prefix, a weight, and accounting."""

    __slots__ = ("tid", "prefix", "weight", "stats", "latency")

    def __init__(self, tid: str, *, weight: float = 1.0,
                 exact_limit: int | None = None) -> None:
        if "/" in tid or not tid:
            raise InvalidOperationError(f"bad tenant id {tid!r}")
        if weight <= 0:
            raise InvalidOperationError(f"tenant weight must be positive, got {weight}")
        self.tid = tid
        self.prefix = f"/{tid}"
        self.weight = weight
        self.stats = TenantStats()
        self.latency = (
            LatencyHistogram() if exact_limit is None
            else LatencyHistogram(exact_limit=exact_limit)
        )

    def path(self, relative: str) -> str:
        """Resolve a tenant-relative path inside this namespace."""
        if not relative.startswith("/"):
            relative = "/" + relative
        return self.prefix + relative

    def __repr__(self) -> str:
        return f"Tenant({self.tid!r}, weight={self.weight})"


class TenantRegistry:
    """Ordered mapping of tenant id -> :class:`Tenant`."""

    def __init__(self) -> None:
        self._tenants: dict[str, Tenant] = {}

    def add(self, tid: str, *, weight: float = 1.0,
            exact_limit: int | None = None) -> Tenant:
        if tid in self._tenants:
            raise InvalidOperationError(f"tenant {tid!r} already registered")
        tenant = self._tenants[tid] = Tenant(
            tid, weight=weight, exact_limit=exact_limit
        )
        return tenant

    def get(self, tid: str) -> Tenant:
        try:
            return self._tenants[tid]
        except KeyError:
            raise InvalidOperationError(f"unknown tenant {tid!r}") from None

    def tenants(self) -> list[Tenant]:
        """All tenants, in registration order (deterministic)."""
        return list(self._tenants.values())

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, tid: str) -> bool:
        return tid in self._tenants

    # ------------------------------------------------------------------
    # registry/report views

    def counters(self) -> "TenantCounters":
        """A scrape-compatible aggregate for the metrics registry."""
        return TenantCounters(
            submitted={t.tid: t.stats.submitted for t in self.tenants()},
            completed={t.tid: t.stats.completed for t in self.tenants()},
            bytes_read={t.tid: t.stats.bytes_read for t in self.tenants()},
            bytes_written={t.tid: t.stats.bytes_written for t in self.tenants()},
            queue_depth_max={t.tid: t.stats.queue_depth_max for t in self.tenants()},
        )

    def summary(self) -> dict:
        """JSON-serializable per-tenant stats + latency percentiles."""
        out: dict = {}
        for tenant in self.tenants():
            s = tenant.stats
            out[tenant.tid] = {
                "weight": tenant.weight,
                "submitted": s.submitted,
                "completed": s.completed,
                "failed": s.failed,
                "bytes_read": s.bytes_read,
                "bytes_written": s.bytes_written,
                "service_seconds": s.service_seconds,
                "wait_seconds": s.wait_seconds,
                "queue_depth_max": s.queue_depth_max,
                "latency": tenant.latency.percentiles(),
            }
        return out


@dataclass
class TenantCounters:
    """Per-tenant counter dicts in the registry's scrape shape."""

    submitted: dict[str, int] = field(default_factory=dict)
    completed: dict[str, int] = field(default_factory=dict)
    bytes_read: dict[str, int] = field(default_factory=dict)
    bytes_written: dict[str, int] = field(default_factory=dict)
    queue_depth_max: dict[str, int] = field(default_factory=dict)
