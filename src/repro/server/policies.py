"""Admission and fairness policies: which queued request runs next.

The server holds one logical admission queue; the policy decides service
order. Two contenders to start, behind one small API (`push`, `pop`,
`depth`, `__len__`) so cleaning-policy-tournament-style comparisons are
one flag:

- **FIFO** — global arrival order. Simple, and the baseline every
  fairness paper beats: one heavy tenant's burst heads-of-line-blocks
  everyone (its queue *is* the queue).
- **Deficit round-robin** (Shreedhar & Varghese) — one sub-queue per
  tenant, visited in a fixed rotation; each visit adds ``quantum x
  weight`` to the tenant's deficit counter, and the tenant may dispatch
  requests while its deficit covers their cost. Costs here are request
  sizes in KB (min 1), so a tenant writing 64 KB blobs gets the same
  *byte* share as one writing 1 KB files, not 64x more.

Determinism: sub-queues live in an insertion-ordered dict, the rotation
index advances predictically, and no randomness is involved — the same
arrival sequence always yields the same service order.
"""

from __future__ import annotations

from collections import deque

from repro.core.errors import InvalidOperationError

#: Default DRR quantum, in cost units (KB of payload, min 1 per request).
DEFAULT_QUANTUM = 8.0


class FIFOQueue:
    """Global first-in-first-out admission queue."""

    name = "fifo"

    def __init__(self) -> None:
        self._queue: deque = deque()
        self._depths: dict[str, int] = {}

    def push(self, request) -> None:
        self._queue.append(request)
        self._depths[request.tenant] = self._depths.get(request.tenant, 0) + 1

    def pop(self):
        """The next request to service, or None when idle."""
        if not self._queue:
            return None
        request = self._queue.popleft()
        self._depths[request.tenant] -= 1
        return request

    def depth(self, tenant: str) -> int:
        """Queued requests for one tenant."""
        return self._depths.get(tenant, 0)

    def __len__(self) -> int:
        return len(self._queue)


class DRRQueue:
    """Deficit round-robin across per-tenant sub-queues."""

    name = "drr"

    def __init__(self, *, quantum: float = DEFAULT_QUANTUM,
                 weights: dict[str, float] | None = None) -> None:
        if quantum <= 0:
            raise InvalidOperationError(f"quantum must be positive, got {quantum}")
        self.quantum = quantum
        self._weights = dict(weights or {})
        #: tenant -> sub-queue, insertion-ordered (rotation order)
        self._queues: dict[str, deque] = {}
        #: tenants with queued work, in rotation order
        self._active: deque[str] = deque()
        self._deficit: dict[str, float] = {}
        self._len = 0

    def push(self, request) -> None:
        tenant = request.tenant
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        if not queue:
            # (Re)joining the rotation: a fresh arrival burst must not
            # spend deficit banked while the tenant had nothing queued.
            self._deficit[tenant] = 0.0
            self._active.append(tenant)
        queue.append(request)
        self._len += 1

    def pop(self):
        """The next request under DRR order, or None when idle."""
        while self._active:
            tenant = self._active[0]
            queue = self._queues[tenant]
            deficit = self._deficit[tenant]
            head_cost = queue[0].cost
            if deficit < head_cost:
                # Head doesn't fit this visit: top up and rotate. The
                # topped-up deficit persists to the tenant's next visit,
                # so even a single over-quantum request eventually runs.
                self._deficit[tenant] = deficit + (
                    self.quantum * self._weights.get(tenant, 1.0)
                )
                self._active.rotate(-1)
                continue
            request = queue.popleft()
            self._deficit[tenant] = deficit - head_cost
            self._len -= 1
            if not queue:
                self._active.popleft()
                self._deficit[tenant] = 0.0
            return request
        return None

    def depth(self, tenant: str) -> int:
        queue = self._queues.get(tenant)
        return len(queue) if queue is not None else 0

    def __len__(self) -> int:
        return self._len


POLICIES = ("fifo", "drr")


def make_policy(name: str, *, quantum: float = DEFAULT_QUANTUM,
                weights: dict[str, float] | None = None):
    """Build an admission queue by policy name."""
    if name == "fifo":
        return FIFOQueue()
    if name == "drr":
        return DRRQueue(quantum=quantum, weights=weights)
    raise InvalidOperationError(f"unknown policy {name!r} (choose from {POLICIES})")
