"""The event-loop kernel: simulated-time events over a synchronous core.

The 1991 system serves one synchronous caller; its successors serve
thousands. The bridge is this scheduler: client arrivals, request
dispatches, cleaner passes, and checkpoints become *timestamped events*
on one priority queue, interleaved by simulated time instead of by
nested Python calls.

The model is a single-server queue over the file system. The underlying
``LFS`` is synchronous — a dispatched operation runs to completion and
advances the shared :class:`~repro.disk.timing.SimClock` by however much
disk and CPU time it consumed. The loop therefore distinguishes an
event's *scheduled* time from its *fire* time: the heap pops events in
(time, seq) order, but if a long operation (say, a cleaner pass the
event loop scheduled, or an emergency clean inside a tenant's write)
pushed the clock past an event's timestamp, the event fires late, at the
current clock reading. That lateness *is* queueing delay — it is
exactly how the cleaner's busy time turns into other tenants' tail
latency, and it falls out of the clock coupling rather than being
modeled separately.

Determinism contract: given the same initial schedule and the same
callbacks, the execution order is a pure function of (time, seq) — seq
is the insertion counter, so simultaneous events fire in the order they
were scheduled, with no dependence on hash ordering, wall clock, or
thread timing. :attr:`EventLoop.digest` folds every fired event into a
SHA-256 running hash, so two runs interleaved identically are provable
by comparing one hex string.
"""

from __future__ import annotations

import hashlib
import heapq
from typing import Callable

from repro.disk.timing import SimClock


class ScheduledEvent:
    """One pending event: fire ``callback(loop)`` at simulated ``time``.

    Comparison is (time, seq) so the heap is deterministic; ``cancelled``
    events stay in the heap but are skipped when popped (cheap lazy
    cancellation, same trick as the cleaner's lazy-invalidation heap).
    """

    __slots__ = ("time", "seq", "kind", "callback", "cancelled")

    def __init__(self, time: float, seq: int, kind: str, callback: Callable) -> None:
        self.time = time
        self.seq = seq
        self.kind = kind
        self.callback = callback
        self.cancelled = False

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"ScheduledEvent({self.kind!r} @ {self.time:.6f} seq={self.seq}{state})"


class EventLoop:
    """A deterministic simulated-time event scheduler."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[ScheduledEvent] = []
        self._seq = 0
        self.events_fired = 0
        #: running hash over (seq, kind, fire time) of every fired event
        self._digest = hashlib.sha256()
        self._running = False
        #: optional sampling hook ``sampler(now)`` called after every
        #: fired event (the timeline recorder's cadence gate). Purely
        #: observational: it is not an event, so it never touches the
        #: heap, the clock, or the digest.
        self.sampler: Callable[[float], None] | None = None

    # ------------------------------------------------------------------
    # scheduling

    @property
    def now(self) -> float:
        return self.clock.now

    def at(self, when: float, kind: str, callback: Callable) -> ScheduledEvent:
        """Schedule ``callback(loop)`` at absolute simulated time ``when``.

        Scheduling into the past is allowed (the event fires as soon as
        the loop reaches it, at the current clock reading) — arrivals
        generated while a long operation held the clock do exactly this.
        """
        event = ScheduledEvent(when, self._seq, kind, callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay: float, kind: str, callback: Callable) -> ScheduledEvent:
        """Schedule ``callback(loop)`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self.at(self.clock.now + delay, kind, callback)

    def __len__(self) -> int:
        """Pending (non-cancelled) events."""
        return sum(1 for e in self._heap if not e.cancelled)

    # ------------------------------------------------------------------
    # execution

    def run(self, *, until: float | None = None, max_events: int | None = None) -> int:
        """Fire events in (time, seq) order until the heap drains.

        ``until`` stops before firing any event scheduled strictly after
        that simulated time; ``max_events`` bounds the number fired.
        Returns the number of events fired by this call. Re-entrant
        ``run`` is a bug (an event callback must schedule, not run) and
        raises immediately.
        """
        if self._running:
            raise RuntimeError("EventLoop.run is not re-entrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                if max_events is not None and fired >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                # Fire time: an event never runs before its scheduled
                # time, but a long synchronous operation may already have
                # pushed the clock past it — then it fires late, and the
                # lateness is the queueing delay the latency histograms
                # measure.
                self.clock.advance_to(event.time)
                self.events_fired += 1
                fired += 1
                self._digest.update(
                    f"{event.seq}:{event.kind}:{self.clock.now!r}".encode()
                )
                event.callback(self)
                if self.sampler is not None:
                    self.sampler(self.clock.now)
        finally:
            self._running = False
        return fired

    @property
    def digest(self) -> str:
        """Hex digest of the execution so far (order + kinds + times)."""
        return self._digest.hexdigest()[:16]
