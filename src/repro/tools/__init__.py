"""Operational tooling: an offline integrity checker and a log inspector.

Unlike Unix fsck, :mod:`repro.tools.lfsck` is *not* needed for crash
recovery (checkpoints plus roll-forward handle that); it exists to verify
the reproduction's on-disk invariants — the role the paper assigns to
fsck is precisely what LFS eliminates.
"""

from repro.tools.dumplog import dump_checkpoints, dump_segment, dump_superblock
from repro.tools.lfsck import CheckReport, check_filesystem

__all__ = [
    "CheckReport",
    "check_filesystem",
    "dump_checkpoints",
    "dump_segment",
    "dump_superblock",
]
