"""lfsck — offline integrity checker for an LFS disk image.

Reads only on-disk bytes (no file-system state) and verifies:

1. the superblock parses and matches the device;
2. at least one checkpoint region is valid;
3. every inode-map entry with an address points at a parseable inode
   block containing an inode with the right number and version;
4. every file block pointer (direct and indirect) lies inside the
   segment area and no two live files claim the same block;
5. directory trees are connected: every directory entry names a live
   inode, link counts match entry counts, and every non-root live inode
   is reachable from the root;
6. the segment usage table's live-byte counts are consistent with the
   actual live data (within the block-rounding granularity), no live file
   block sits in a quarantined segment, and
7. every current-epoch partial write in a live segment matches its
   summary CRCs. A failing write that sits at the very end of the
   post-checkpoint log is a *torn tail* — the expected residue of a crash,
   which roll-forward will drop — and is reported as a warning; a failing
   write anywhere else is silent corruption and is reported in
   ``checksum_errors`` (the CLI maps these to exit code 2).

All reads use ``disk.peek`` so checking never perturbs simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import directory as dirfmt
from repro.core.blocks import checksum, unpack_addrs
from repro.core.checkpoint import read_checkpoint
from repro.core.constants import INODE_SIZE, NO_SEGMENT, NULL_ADDR, ROOT_INUM
from repro.core.errors import CorruptionError
from repro.core.inode import Inode, addrs_per_indirect, unpack_inode_block
from repro.core.inode_map import InodeMap
from repro.core.seg_usage import SegmentUsageTable
from repro.core.summary import try_parse_summary
from repro.core.superblock import Superblock
from repro.disk.device import Disk


@dataclass
class CheckReport:
    """Outcome of an offline check."""

    ok: bool = True
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    live_inodes: int = 0
    live_blocks: int = 0
    checkpoint_seq: int = 0
    # Block addresses whose contents fail a recorded CRC (bit-rot); a torn
    # tail is *not* listed here — it lands in ``warnings`` instead.
    checksum_errors: list[int] = field(default_factory=list)

    def error(self, message: str) -> None:
        self.ok = False
        self.errors.append(message)

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    def to_dict(self) -> dict:
        """Machine-readable form (``repro fsck --json``, CI, torture runs)."""
        return {
            "ok": self.ok,
            "errors": list(self.errors),
            "warnings": list(self.warnings),
            "live_inodes": self.live_inodes,
            "live_blocks": self.live_blocks,
            "checkpoint_seq": self.checkpoint_seq,
            "checksum_errors": list(self.checksum_errors),
        }

    def render(self) -> str:
        lines = [
            f"lfsck: {'clean' if self.ok else 'CORRUPT'} "
            f"(checkpoint {self.checkpoint_seq}, {self.live_inodes} inodes, "
            f"{self.live_blocks} live blocks)"
        ]
        lines.extend(f"  error: {e}" for e in self.errors)
        lines.extend(f"  warning: {w}" for w in self.warnings)
        return "\n".join(lines)


class _PeekDisk:
    """Read-only, time-free view over a disk image.

    Also quacks enough like :class:`Disk` (``geometry``, ``read_block``,
    ``read_blocks``) for the checkpoint reader to use it directly.
    """

    def __init__(self, disk: Disk) -> None:
        self._disk = disk
        self.geometry = disk.geometry

    def read(self, addr: int) -> bytes:
        return self._disk.peek(addr)

    def read_block(self, addr: int) -> bytes:
        return self._disk.peek(addr)

    def read_blocks(self, addr: int, count: int) -> list[bytes]:
        return [self._disk.peek(addr + i) for i in range(count)]


def _load_inode(view: _PeekDisk, block_size: int, addr: int, inum: int) -> Inode | None:
    try:
        for candidate in unpack_inode_block(view.read(addr), block_size):
            if candidate.inum == inum:
                return candidate
    except CorruptionError:
        return None
    return None


def _file_blocks(view: _PeekDisk, block_size: int, inode: Inode) -> list[tuple[str, int]]:
    """Every allocated (kind, addr) of a file, reading indirects via peek."""
    out: list[tuple[str, int]] = []
    per = addrs_per_indirect(block_size)
    nblocks = inode.nblocks(block_size)
    for fbn in range(min(nblocks, len(inode.direct))):
        if inode.direct[fbn] != NULL_ADDR:
            out.append(("data", inode.direct[fbn]))
    if nblocks > len(inode.direct) and inode.indirect != NULL_ADDR:
        out.append(("indirect", inode.indirect))
        l1 = unpack_addrs(view.read(inode.indirect), per)
        for slot in range(min(nblocks - len(inode.direct), per)):
            if l1[slot] != NULL_ADDR:
                out.append(("data", l1[slot]))
    first_double = len(inode.direct) + per
    if nblocks > first_double and inode.dindirect != NULL_ADDR:
        out.append(("indirect", inode.dindirect))
        l2 = unpack_addrs(view.read(inode.dindirect), per)
        remaining = nblocks - first_double
        for child_idx in range((remaining + per - 1) // per):
            if l2[child_idx] == NULL_ADDR:
                continue
            out.append(("indirect", l2[child_idx]))
            child = unpack_addrs(view.read(l2[child_idx]), per)
            for slot in range(min(remaining - child_idx * per, per)):
                if child[slot] != NULL_ADDR:
                    out.append(("data", child[slot]))
    return out


def _next_summary_offset(
    read, start: int, from_offset: int, seg_blocks: int, prev_seq: int, bs: int
) -> int | None:
    """Scan forward for the next current-epoch summary after a bad block.

    Sequence numbers are global and strictly increasing, so any parseable
    summary with ``seq > prev_seq`` belongs to the current epoch — stale
    residue from a segment's earlier life always carries a lower seq. A
    hit means the walk broke on a *damaged* summary rather than the end
    of the log, and tells us where to resume.
    """
    for off in range(from_offset + 1, seg_blocks):
        cand = try_parse_summary(read(start + off), bs)
        if (
            cand is not None
            and cand.seq > prev_seq
            and off + 1 + len(cand.entries) <= seg_blocks
        ):
            return off
    return None


def check_filesystem(disk: Disk) -> CheckReport:
    """Verify an unmounted LFS disk image; returns a :class:`CheckReport`."""
    report = CheckReport()
    view = _PeekDisk(disk)

    # 1. superblock
    try:
        sb = Superblock.from_bytes(view.read(0))
    except CorruptionError as exc:
        report.error(f"superblock: {exc}")
        return report
    layout = sb.layout()
    bs = sb.block_size

    # 2. checkpoint regions (peek-based: checking is time-free)
    best = None
    for region_b in (False, True):
        try:
            cp = read_checkpoint(view, layout, region_b=region_b)
        except CorruptionError:
            continue
        if best is None or cp.seq > best.seq:
            best = cp
    if best is None:
        report.error("no valid checkpoint region")
        return report
    report.checkpoint_seq = best.seq

    # 3. inode map
    imap = InodeMap(sb.max_inodes, bs // 32)
    for idx, addr in enumerate(best.imap_addrs):
        if addr != NULL_ADDR:
            imap.load_block(idx, view.read(addr))
    usage = SegmentUsageTable(layout.num_segments, sb.segment_bytes, bs // 24)
    for idx, addr in enumerate(best.usage_addrs):
        if addr != NULL_ADDR:
            usage.load_block(idx, view.read(addr))

    seg_lo = layout.segment_area_start
    seg_hi = seg_lo + layout.num_segments * layout.segment_blocks

    owners: dict[int, int] = {}  # block addr -> owning inum
    inodes: dict[int, Inode] = {}
    # Every block something current claims: file data/indirects, inode
    # blocks, and the checkpoint's inode-map and usage-table blocks.
    live_addrs: set[int] = {
        a for a in best.imap_addrs + best.usage_addrs if a != NULL_ADDR
    }
    expected_live = [0] * layout.num_segments

    def in_log(addr: int) -> bool:
        return seg_lo <= addr < seg_hi

    for inum in imap.allocated_inums():
        entry = imap.get(inum)
        if not in_log(entry.addr):
            report.error(f"inode {inum}: map address {entry.addr} outside the log")
            continue
        inode = _load_inode(view, bs, entry.addr, inum)
        if inode is None:
            report.error(f"inode {inum}: not found in its inode block at {entry.addr}")
            continue
        if inode.version != entry.version:
            report.error(
                f"inode {inum}: version {inode.version} != map version {entry.version}"
            )
        inodes[inum] = inode
        report.live_inodes += 1
        live_addrs.add(entry.addr)
        expected_live[layout.segment_of(entry.addr)] += INODE_SIZE
        for kind, addr in _file_blocks(view, bs, inode):
            if not in_log(addr):
                report.error(f"inode {inum}: {kind} block {addr} outside the log")
                continue
            if addr in owners:
                report.error(
                    f"block {addr} claimed by both inode {owners[addr]} and {inum}"
                )
            owners[addr] = inum
            live_addrs.add(addr)
            report.live_blocks += 1
            expected_live[layout.segment_of(addr)] += bs

    # 4. directory connectivity and link counts
    entry_counts: dict[int, int] = {}
    reachable: set[int] = set()

    def walk(dir_inum: int) -> None:
        if dir_inum in reachable:
            report.error(f"directory cycle involving inode {dir_inum}")
            return
        reachable.add(dir_inum)
        inode = inodes.get(dir_inum)
        if inode is None:
            return
        addrs = [a for k, a in _file_blocks(view, bs, inode) if k == "data"]
        for addr in addrs:
            try:
                entries = dirfmt.parse_block(view.read(addr))
            except CorruptionError as exc:
                report.error(f"directory {dir_inum}: bad block at {addr}: {exc}")
                continue
            for name, child in entries:
                if child not in inodes:
                    report.error(
                        f"directory {dir_inum}: entry {name!r} -> dead inode {child}"
                    )
                    continue
                entry_counts[child] = entry_counts.get(child, 0) + 1
                if inodes[child].is_directory:
                    walk(child)
                else:
                    reachable.add(child)

    if ROOT_INUM in inodes:
        walk(ROOT_INUM)
    else:
        report.error("root inode missing")

    for inum, inode in inodes.items():
        if inum == ROOT_INUM:
            continue
        if inum not in reachable:
            report.error(f"inode {inum} is allocated but unreachable from the root")
        refs = entry_counts.get(inum, 0)
        if refs != inode.nlink:
            report.error(
                f"inode {inum}: link count {inode.nlink} but {refs} directory entries"
            )

    # 5. usage-table consistency (the map/table/log blocks themselves are
    # live too, so the on-disk count may exceed the file-data estimate;
    # it must never be lower). Quarantined segments must hold nothing live:
    # the rescue moved every surviving block out before retiring them.
    for seg_no in range(layout.num_segments):
        rec = usage.get(seg_no)
        if rec.quarantined:
            if expected_live[seg_no]:
                report.error(
                    f"segment {seg_no}: quarantined but files still own "
                    f"{expected_live[seg_no]} bytes in it"
                )
            continue
        if rec.live_bytes + bs < expected_live[seg_no]:
            report.error(
                f"segment {seg_no}: usage table records {rec.live_bytes} live "
                f"bytes but files own at least {expected_live[seg_no]}"
            )

    # 6. log checksums: walk the current-epoch partial writes of every
    # live segment (plus the checkpoint's tail and its reserved successor,
    # which may carry post-checkpoint writes the table knows nothing
    # about) and verify each against its summary's CRCs.
    suspects = {
        seg_no
        for seg_no in range(layout.num_segments)
        if not usage.get(seg_no).clean and not usage.get(seg_no).quarantined
    }
    if 0 <= best.tail_segment < layout.num_segments:
        suspects.add(best.tail_segment)
    if best.next_segment != NO_SEGMENT and 0 <= best.next_segment < layout.num_segments:
        suspects.add(best.next_segment)

    for seg_no in sorted(suspects):
        start = layout.segment_start(seg_no)
        offset = 0
        prev_seq = 0
        # (summary offset, seq, implicated addrs) for each failing write
        bad_writes: list[tuple[int, int, list[int]]] = []
        last_write_offset = -1
        covered: set[int] = set()  # addrs some walked write accounts for
        while offset < layout.segment_blocks:
            summary = try_parse_summary(view.read(start + offset), bs)
            if (
                summary is None
                or summary.seq <= prev_seq
                or offset + 1 + len(summary.entries) > layout.segment_blocks
            ):
                resume = _next_summary_offset(
                    view.read, start, offset, layout.segment_blocks, prev_seq, bs
                )
                if resume is None:
                    break  # genuine end of this segment's log — or is it?
                # A later current-epoch write exists, so the walk broke on
                # a summary block that rot made unparseable.
                bad_writes.append((offset, prev_seq + 1, [start + offset]))
                covered.update(range(start + offset, start + resume))
                offset = resume
                continue
            prev_seq = summary.seq
            last_write_offset = offset
            covered.update(
                range(start + offset, start + offset + 1 + len(summary.entries))
            )
            payloads = [
                view.read(start + offset + 1 + i)
                for i in range(len(summary.entries))
            ]
            if not summary.verify(payloads):
                bad = [
                    start + offset + 1 + i
                    for i, entry in enumerate(summary.entries)
                    if entry.block_crc and checksum([payloads[i]]) != entry.block_crc
                ]
                # All payloads individually intact -> the summary block
                # itself carries the damage.
                bad_writes.append((offset, summary.seq, bad if bad else [start + offset]))
            offset += 1 + len(summary.entries)
        for write_offset, seq, bad_addrs in bad_writes:
            trailing = write_offset == last_write_offset
            if trailing and seq >= best.log_seq:
                # The newest write on the device failing its CRC is the
                # expected residue of a crash, not rot.
                report.warn(
                    f"segment {seg_no}: torn tail at offset {write_offset} "
                    f"(post-checkpoint seq {seq}; roll-forward will drop it)"
                )
            elif trailing and not any(a in live_addrs for a in bad_addrs):
                # A trailing write that fails its CRC without implicating a
                # single live block is droppable crash residue too. The seq
                # test above clears the hot log's tail, but a cold-cursor
                # tail (hot/cold segregation) is not checkpointed: after a
                # remount the hot log's seq moves past the torn cold write,
                # which nothing ever revisits or overwrites. Whatever it
                # carried was cleaner copies whose sources are still live
                # at their old addresses — nothing of value is lost.
                report.warn(
                    f"segment {seg_no}: dead torn write at offset {write_offset} "
                    f"(seq {seq}, no live block implicated; crash residue)"
                )
            else:
                report.checksum_errors.extend(bad_addrs)
                report.error(
                    f"segment {seg_no}: write at offset {write_offset} fails its "
                    f"summary CRC (blocks {bad_addrs})"
                )
        # Every live block must be described by some walked summary. A
        # stranded one means the walk ended early — i.e. the unparseable
        # block it stopped on was a *rotted summary*, not the end of the
        # log (the one case the CRC checks above cannot see, because the
        # CRCs lived in the block that rotted).
        stranded = sorted(
            a
            for a in live_addrs
            if start <= a < start + layout.segment_blocks and a not in covered
        )
        if stranded:
            # The stranded blocks' own CRCs rotted away with the summary,
            # so none of them can be verified: implicate them all.
            bad_summary = start + offset
            report.checksum_errors.append(bad_summary)
            report.checksum_errors.extend(stranded)
            report.error(
                f"segment {seg_no}: block {bad_summary} is unparseable but "
                f"live blocks {stranded} lie beyond it — its summary rotted, "
                f"stranding them unverifiable"
            )
    return report
