"""Online media scrubber: patrol-read the log and verify checksums.

Real disks run periodic "patrol reads" so latent sector errors and silent
bit-rot are found while the redundancy to repair them still exists, not at
the moment the data is needed. This is the LFS equivalent: walk every
in-log segment of a *mounted* file system, re-read each partial write, and
verify it against both the summary's whole-write CRC and the per-block
CRCs carried in the summary entries.

Two kinds of damage are distinguished:

* **unreadable** blocks — the device itself failed the read (a latent
  sector error, surfacing as :class:`~repro.core.errors.MediaError` after
  the device's own retries are exhausted);
* **corrupt** blocks — the read succeeded but the payload no longer
  matches its recorded CRC (silent bit-rot).

Scrub probes the disk directly, *not* through the file system's read
path, so a scrub never burns the mount's media-error budget: finding ten
rotted blocks must not flip a healthy-looking file system read-only. With
``rescue=True`` every damaged segment is handed to the cleaner's
:meth:`~repro.core.cleaner.Cleaner.rescue_segment`, which re-writes the
still-verifiable live blocks to the log head and quarantines the segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.blocks import checksum
from repro.core.errors import MediaError
from repro.core.summary import try_parse_summary
from repro.obs.events import SCRUB_SEGMENT


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    segments_scanned: int = 0
    writes_checked: int = 0
    blocks_checked: int = 0
    corrupt_blocks: list[int] = field(default_factory=list)
    corrupt_summaries: list[int] = field(default_factory=list)
    unreadable_blocks: list[int] = field(default_factory=list)
    sick_segments: list[int] = field(default_factory=list)
    segments_quarantined: list[int] = field(default_factory=list)
    blocks_rescued: int = 0
    blocks_lost: int = 0

    @property
    def clean(self) -> bool:
        """True when the scrub found no damage at all."""
        return not (
            self.corrupt_blocks or self.corrupt_summaries or self.unreadable_blocks
        )

    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "segments_scanned": self.segments_scanned,
            "writes_checked": self.writes_checked,
            "blocks_checked": self.blocks_checked,
            "corrupt_blocks": list(self.corrupt_blocks),
            "corrupt_summaries": list(self.corrupt_summaries),
            "unreadable_blocks": list(self.unreadable_blocks),
            "sick_segments": list(self.sick_segments),
            "segments_quarantined": list(self.segments_quarantined),
            "blocks_rescued": self.blocks_rescued,
            "blocks_lost": self.blocks_lost,
        }

    def render(self) -> str:
        lines = [
            f"scrub: {'clean' if self.clean else 'DAMAGED'} "
            f"({self.segments_scanned} segments, {self.writes_checked} writes, "
            f"{self.blocks_checked} blocks checked)"
        ]
        for addr in self.unreadable_blocks:
            lines.append(f"  unreadable: block {addr} (latent sector error)")
        for addr in self.corrupt_blocks:
            lines.append(f"  corrupt: block {addr} fails its recorded CRC")
        for addr in self.corrupt_summaries:
            lines.append(f"  corrupt: summary at {addr} disowns its write")
        if self.segments_quarantined:
            lines.append(
                f"  rescue: quarantined segments {self.segments_quarantined}, "
                f"{self.blocks_rescued} live blocks rescued, "
                f"{self.blocks_lost} lost"
            )
        elif self.sick_segments:
            lines.append(
                f"  sick segments: {self.sick_segments} (re-run with rescue "
                f"to salvage and quarantine)"
            )
        return "\n".join(lines)


def _scrub_segment(fs, seg_no: int, report: ScrubReport) -> bool:
    """Check one segment's partial writes; returns True if damage was found."""
    bs = fs.config.block_size
    seg_blocks = fs.config.segment_blocks
    start = fs.layout.segment_start(seg_no)
    damaged = False
    blocks_here = 0
    bad_before = len(report.corrupt_blocks) + len(report.unreadable_blocks) + len(
        report.corrupt_summaries
    )

    def probe(addr: int) -> bytes | None:
        """Real device read (so latent sectors surface), None on failure."""
        nonlocal damaged
        try:
            return fs.disk.read_block(addr)
        except MediaError:
            report.unreadable_blocks.append(addr)
            damaged = True
            return None

    def sink_sweep(lo_off: int, hi_off: int) -> None:
        """Per-block verification against the writer's in-memory CRC index,
        for regions whose on-disk summary (and with it the recorded CRCs)
        was lost. The index is authoritative for anything written this
        mount; blocks without an entry stay unverifiable."""
        nonlocal damaged
        for off in range(lo_off, hi_off):
            addr = start + off
            expected = fs.writer.block_crcs.get(addr)
            if (
                expected
                and checksum([fs.disk.peek(addr)]) != expected
                and addr not in report.corrupt_blocks
                and addr not in report.corrupt_summaries
            ):
                report.corrupt_blocks.append(addr)
                damaged = True

    def next_summary_offset(from_offset: int, prev_seq: int) -> int | None:
        """Resume point after a damaged summary: seqs within an epoch are
        strictly increasing, so a parseable summary further on with
        ``prev_seq < seq < writer.seq`` proves the walk broke on rot, not
        on the end of the log."""
        for off in range(from_offset + 1, seg_blocks):
            cand = try_parse_summary(fs.disk.peek(start + off), bs)
            if (
                cand is not None
                and prev_seq < cand.seq < fs.writer.seq
                and off + 1 + len(cand.entries) <= seg_blocks
            ):
                return off
        return None

    offset = 0
    prev_seq = 0
    while offset < seg_blocks:
        # Discover the walk via peek: parsing must work even when the
        # summary's sector is unreadable, and discovery itself is free.
        summary = try_parse_summary(fs.disk.peek(start + offset), bs)
        if (
            summary is None
            or summary.seq <= prev_seq
            or summary.seq >= fs.writer.seq
            or offset + 1 + len(summary.entries) > seg_blocks
        ):
            resume = next_summary_offset(offset, prev_seq)
            if resume is None:
                # End of this segment's log — unless the in-memory CRC
                # index says a summary was written here, in which case
                # rot ate the *last* write's summary (nothing after it
                # to resume from, so only this check can tell).
                expected = fs.writer.block_crcs.get(start + offset)
                if expected and checksum([fs.disk.peek(start + offset)]) != expected:
                    report.corrupt_summaries.append(start + offset)
                    damaged = True
                sink_sweep(offset + 1, seg_blocks)
                break
            # Rot ate the summary block itself; the write it led is
            # unidentifiable, but the walk can pick up at the next one —
            # and the CRC index can still vouch for the skipped payloads.
            report.corrupt_summaries.append(start + offset)
            damaged = True
            sink_sweep(offset + 1, resume)
            offset = resume
            continue
        prev_seq = summary.seq
        report.writes_checked += 1
        blocks_here += 1 + len(summary.entries)
        raw = probe(start + offset)
        expected = fs.writer.block_crcs.get(start + offset)
        summary_bad = bool(
            raw is not None and expected and checksum([raw]) != expected
        )
        if summary_bad:
            # The summary still parses but is not the one the log wrote
            # (rot in the header/entry area that spared the magic).
            report.corrupt_summaries.append(start + offset)
            damaged = True
        payloads = []
        entry_damage = False
        for i, entry in enumerate(summary.entries):
            addr = start + offset + 1 + i
            payload = probe(addr)
            if payload is None:
                payload = fs.disk.peek(addr)  # still needed for the walk
                entry_damage = True
            elif entry.block_crc and checksum([payload]) != entry.block_crc:
                report.corrupt_blocks.append(addr)
                damaged = entry_damage = True
            payloads.append(payload)
        if not entry_damage and not summary_bad and not summary.verify(payloads):
            # Every payload matches its own CRC but the write as a whole
            # does not: the summary block itself is the rotted one.
            report.corrupt_summaries.append(start + offset)
            damaged = True
        offset += 1 + len(summary.entries)

    report.blocks_checked += blocks_here
    if fs.obs is not None:
        bad_now = len(report.corrupt_blocks) + len(report.unreadable_blocks) + len(
            report.corrupt_summaries
        )
        fs.obs.emit(
            SCRUB_SEGMENT, segment=seg_no, blocks=blocks_here, bad=bad_now - bad_before
        )
    return damaged


def scrub_filesystem(fs, *, rescue: bool = False) -> ScrubReport:
    """Scrub every in-log segment of a mounted file system.

    Clean and quarantined segments are skipped: the former hold no
    current-epoch writes (stale bytes there are dead by definition) and
    the latter are already retired. With ``rescue=True`` each damaged
    segment is salvaged and quarantined on the spot — except the writer's
    active tail and its reserved successor, which cannot be retired while
    the log is running through them (they are reported and left in place).
    """
    fs._require_mounted()
    report = ScrubReport()
    with fs._span("scrub", rescue=rescue):
        for seg_no in fs.usage.dirty_segments():
            report.segments_scanned += 1
            if not _scrub_segment(fs, seg_no, report):
                continue
            report.sick_segments.append(seg_no)
            if rescue and not (
                seg_no == fs.writer.current_segment or seg_no == fs.writer.next_segment
            ):
                rescued, lost = fs.cleaner.rescue_segment(seg_no)
                report.segments_quarantined.append(seg_no)
                report.blocks_rescued += rescued
                report.blocks_lost += lost
    return report
