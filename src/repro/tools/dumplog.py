"""dumplog — human-readable inspection of an LFS disk image.

A debugfs-style viewer: prints the superblock, both checkpoint regions,
and the summary chain of any segment, straight from on-disk bytes (via
``peek``, so inspection never advances simulated time).
"""

from __future__ import annotations

from repro.core.checkpoint import read_checkpoint
from repro.core.constants import NO_SEGMENT, NULL_ADDR, BlockKind
from repro.core.errors import CorruptionError
from repro.core.summary import try_parse_summary
from repro.core.superblock import Superblock
from repro.disk.device import Disk


def dump_superblock(disk: Disk) -> str:
    """Render the superblock."""
    try:
        sb = Superblock.from_bytes(disk.peek(0))
    except CorruptionError as exc:
        return f"superblock: INVALID ({exc})"
    return (
        "superblock:\n"
        f"  block size      {sb.block_size}\n"
        f"  segment size    {sb.segment_bytes} ({sb.segment_bytes // sb.block_size} blocks)\n"
        f"  segments        {sb.num_segments} starting at block {sb.segment_area_start}\n"
        f"  max inodes      {sb.max_inodes}\n"
        f"  checkpoints     A@{sb.checkpoint_a} B@{sb.checkpoint_b} "
        f"({sb.checkpoint_blocks} blocks each)"
    )


class _Peek:
    def __init__(self, disk: Disk) -> None:
        self.geometry = disk.geometry
        self._disk = disk

    def read_blocks(self, addr: int, count: int) -> list[bytes]:
        return [self._disk.peek(addr + i) for i in range(count)]


def dump_checkpoints(disk: Disk) -> str:
    """Render both checkpoint regions."""
    try:
        sb = Superblock.from_bytes(disk.peek(0))
    except CorruptionError as exc:
        return f"superblock: INVALID ({exc})"
    layout = sb.layout()
    view = _Peek(disk)
    parts = []
    for label, region_b in (("A", False), ("B", True)):
        try:
            cp = read_checkpoint(view, layout, region_b=region_b)
        except CorruptionError as exc:
            parts.append(f"checkpoint {label}: invalid ({exc})")
            continue
        nxt = "-" if cp.next_segment == NO_SEGMENT else cp.next_segment
        imap_blocks = sum(1 for a in cp.imap_addrs if a != NULL_ADDR)
        parts.append(
            f"checkpoint {label}: seq={cp.seq} time={cp.timestamp:.3f} "
            f"log_seq={cp.log_seq} tail=seg{cp.tail_segment}+{cp.tail_offset} "
            f"next={nxt} imap_blocks={imap_blocks} usage_blocks={len(cp.usage_addrs)}"
        )
    return "\n".join(parts)


def dump_segment(disk: Disk, seg_no: int, *, max_entries: int = 8) -> str:
    """Render the summary chain of one segment."""
    try:
        sb = Superblock.from_bytes(disk.peek(0))
    except CorruptionError as exc:
        return f"superblock: INVALID ({exc})"
    layout = sb.layout()
    if seg_no < 0 or seg_no >= layout.num_segments:
        return f"segment {seg_no}: out of range (0..{layout.num_segments - 1})"
    start = layout.segment_start(seg_no)
    seg_blocks = layout.segment_blocks
    lines = [f"segment {seg_no} (blocks {start}..{start + seg_blocks - 1}):"]
    offset = 0
    found = 0
    while offset < seg_blocks:
        summary = try_parse_summary(disk.peek(start + offset), sb.block_size)
        if summary is None:
            break
        found += 1
        nxt = "-" if summary.next_segment == NO_SEGMENT else summary.next_segment
        lines.append(
            f"  +{offset:4}: summary seq={summary.seq} t={summary.write_time:.3f} "
            f"{len(summary.entries)} blocks, next_seg={nxt}"
        )
        for i, entry in enumerate(summary.entries[:max_entries]):
            lines.append(
                f"         [{i}] {BlockKind(entry.kind).name.lower():10} "
                f"inum={entry.inum} off={entry.offset} v={entry.version}"
            )
        if len(summary.entries) > max_entries:
            lines.append(f"         ... {len(summary.entries) - max_entries} more")
        offset += 1 + len(summary.entries)
    if not found:
        lines.append("  (no valid summaries — clean or never written)")
    return "\n".join(lines)
