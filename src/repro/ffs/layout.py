"""On-disk layout for the FFS baseline.

Block 0 is the superblock; the rest of the device is divided into
cylinder groups, each holding a slice of the inode table followed by data
blocks — the real FFS arrangement, which keeps a file's inode, its data,
and its directory close together ("logical locality"). Unlike LFS there
is no log: every structure has a home address, which is why small-file
metadata updates are seek-separated synchronous writes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constants import INODE_SIZE
from repro.core.errors import InvalidOperationError


@dataclass(frozen=True)
class FFSLayout:
    """Computed placement of the FFS cylinder groups.

    Inode ``i`` lives in group ``i % num_groups`` at slot
    ``i // num_groups`` of that group's inode-table slice; its data is
    preferentially allocated from the same group.

    Attributes:
        num_blocks: device size in blocks.
        num_groups: cylinder groups.
        group_blocks: blocks per group (table slice + data).
        itab_blocks: inode-table blocks at the head of each group.
        inodes_per_block: packed inodes per table block.
        max_inodes: total inode capacity.
    """

    num_blocks: int
    num_groups: int
    group_blocks: int
    itab_blocks: int
    inodes_per_block: int
    max_inodes: int

    @property
    def data_blocks(self) -> int:
        """Blocks available for file data across all groups."""
        return self.num_groups * (self.group_blocks - self.itab_blocks)

    def group_start(self, group: int) -> int:
        """First block (the inode-table slice) of a group."""
        if group < 0 or group >= self.num_groups:
            raise InvalidOperationError(f"group {group} out of range")
        return 1 + group * self.group_blocks

    def group_data_start(self, group: int) -> int:
        """First data block of a group."""
        return self.group_start(group) + self.itab_blocks

    def group_end(self, group: int) -> int:
        """One past the last block of a group."""
        return self.group_start(group) + self.group_blocks

    def group_for_inode(self, inum: int) -> int:
        """The group holding an inode (and preferring its data)."""
        return inum % self.num_groups

    def inode_addr(self, inum: int) -> tuple[int, int]:
        """(table block, slot) holding inode ``inum`` — a fixed location."""
        if inum <= 0 or inum >= self.max_inodes:
            raise InvalidOperationError(f"inode {inum} out of range")
        group = self.group_for_inode(inum)
        slot_in_group = inum // self.num_groups
        block = self.group_start(group) + slot_in_group // self.inodes_per_block
        if block >= self.group_data_start(group):
            raise InvalidOperationError(f"inode {inum} beyond the group's table slice")
        return block, slot_in_group % self.inodes_per_block

    def is_data_block(self, addr: int) -> bool:
        """True if ``addr`` lies in some group's data area."""
        if addr < 1 or addr >= 1 + self.num_groups * self.group_blocks:
            return False
        offset = (addr - 1) % self.group_blocks
        return offset >= self.itab_blocks

    def data_block_iter_from(self, goal: int):
        """Yield data-block addresses starting at ``goal``, wrapping once."""
        end = 1 + self.num_groups * self.group_blocks
        goal = min(max(goal, 1), end - 1)
        for addr in range(goal, end):
            if self.is_data_block(addr):
                yield addr
        for addr in range(1, goal):
            if self.is_data_block(addr):
                yield addr


def compute_ffs_layout(
    block_size: int, num_blocks: int, *, max_inodes: int = 32768, num_groups: int = 16
) -> FFSLayout:
    """Size and place the cylinder groups for a device."""
    if block_size < INODE_SIZE:
        raise InvalidOperationError("block size smaller than an inode record")
    if num_groups < 1:
        raise InvalidOperationError("need at least one cylinder group")
    inodes_per_block = block_size // INODE_SIZE
    group_blocks = (num_blocks - 1) // num_groups
    inodes_per_group = (max_inodes + num_groups - 1) // num_groups
    itab_blocks = (inodes_per_group + inodes_per_block - 1) // inodes_per_block
    if itab_blocks >= group_blocks:
        raise InvalidOperationError("device too small for the inode table")
    return FFSLayout(
        num_blocks=num_blocks,
        num_groups=num_groups,
        group_blocks=group_blocks,
        itab_blocks=itab_blocks,
        inodes_per_block=inodes_per_block,
        max_inodes=max_inodes,
    )
