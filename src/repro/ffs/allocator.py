"""Block and inode allocation for the FFS baseline.

A bitmap over the data areas with near-goal allocation: a file's blocks
are placed as close as possible to the previous block (sequential layout
within a file) and within the cylinder group of the file's inode — the
"logical locality" the paper contrasts with LFS's temporal locality.
Inodes are allocated group-aware so a new file's inode lands in its
parent directory's cylinder group.
"""

from __future__ import annotations

from repro.core.errors import InvalidOperationError, NoSpaceError
from repro.ffs.layout import FFSLayout


class BitmapAllocator:
    """Data-block bitmap with goal-directed first-fit allocation."""

    def __init__(self, layout: FFSLayout) -> None:
        self.layout = layout
        self._used: set[int] = set()
        self.free_blocks = layout.data_blocks

    def is_used(self, addr: int) -> bool:
        """True if ``addr`` is allocated."""
        return addr in self._used

    def allocate_near(self, goal: int) -> int:
        """Allocate the free data block closest at-or-after ``goal``.

        Scans forward from the goal (skipping inode-table slices) and
        wraps once, mimicking FFS's rotational-layout search without the
        per-cylinder detail.
        """
        if self.free_blocks <= 0:
            raise NoSpaceError("FFS data region is full")
        for addr in self.layout.data_block_iter_from(goal):
            if addr not in self._used:
                self._used.add(addr)
                self.free_blocks -= 1
                return addr
        raise NoSpaceError("FFS data region is full")

    def allocate_in_group(self, group: int) -> int:
        """Allocate a block inside a cylinder group (spilling if full)."""
        return self.allocate_near(self.layout.group_data_start(group))

    def free(self, addr: int) -> None:
        """Return a block to the free pool."""
        if addr not in self._used:
            raise InvalidOperationError(f"double free of block {addr}")
        self._used.remove(addr)
        self.free_blocks += 1

    @property
    def used_blocks(self) -> int:
        """Currently allocated data blocks."""
        return len(self._used)


class InodeAllocator:
    """Group-aware inode allocation over the fixed table."""

    def __init__(self, max_inodes: int, num_groups: int = 1) -> None:
        self.max_inodes = max_inodes
        self.num_groups = num_groups
        self._used: set[int] = set()

    def allocate(self, group: int | None = None) -> int:
        """Reserve a free inode, preferring ``group`` (parent's group)."""
        if group is not None:
            start = group % self.num_groups
            for inum in range(start or self.num_groups, self.max_inodes, self.num_groups):
                if inum not in self._used:
                    self._used.add(inum)
                    return inum
        for inum in range(1, self.max_inodes):
            if inum not in self._used:
                self._used.add(inum)
                return inum
        raise NoSpaceError("FFS inode table is full")

    def mark_used(self, inum: int) -> None:
        """Record an inode as allocated (used when loading a disk)."""
        self._used.add(inum)

    def free(self, inum: int) -> None:
        """Release an inode number."""
        self._used.discard(inum)

    @property
    def live_count(self) -> int:
        """Allocated inodes."""
        return len(self._used)
