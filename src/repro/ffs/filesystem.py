"""The FFS baseline file system.

Faithful to the paper's characterization of SunOS 4.0.3 / Unix FFS:

- inodes at fixed addresses; directory data, directory inodes, and
  new-file inodes (written twice) are **synchronous** individual writes —
  so creating a small file costs at least five seek-separated I/Os;
- file data is written asynchronously but as individual per-block
  operations (no write clustering), so even sequential writes miss
  rotations;
- reads use read-ahead, so sequential reads stream at full bandwidth —
  which is why the paper's Figure 9 shows SunOS matching LFS on reads.

There is no crash-recovery log: :meth:`FFS.fsck` models the full-disk
metadata scan the paper contrasts with LFS roll-forward.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import directory as dirfmt
from repro.core.cache import BlockCache
from repro.core.constants import NULL_ADDR, ROOT_INUM, FileType
from repro.core.errors import (
    DirectoryNotEmptyError,
    FileExistsLFSError,
    FileNotFoundLFSError,
    InvalidOperationError,
    IsADirectoryError_,
    NotADirectoryError_,
)
from repro.core.inode import Inode, pack_inode_block
from repro.core.mapping import FileMap
from repro.disk.device import Disk
from repro.ffs.allocator import BitmapAllocator, InodeAllocator
from repro.ffs.layout import FFSLayout, compute_ffs_layout


@dataclass
class FFSConfig:
    """Tunables for the FFS baseline.

    Attributes:
        block_size: bytes per block (the paper's SunOS used 8 KB).
        max_inodes: inode table capacity.
        num_groups: cylinder groups.
        write_buffer_blocks: dirty data blocks buffered before the
            asynchronous writer pushes them out one at a time.
        sync_metadata: write metadata synchronously (the behavior the
            paper blames for small-file slowness). Setting this False
            models a delayed-metadata variant for ablations.
        double_inode_writes: write each new file's inode twice "to ease
            recovery from crashes" (Figure 1's caption).
        readahead_blocks: blocks fetched per streamed read when access is
            sequential.
        cache_blocks: file-cache capacity in blocks.
        write_clustering: stream contiguous dirty runs as single requests,
            like the extent-based SunOS the paper cites ("a newer version
            of SunOS groups writes and should therefore have performance
            equivalent to Sprite LFS" for sequential writes). Off by
            default: the paper's measured SunOS 4.0.3 issued per-block
            operations.
    """

    block_size: int = 8192
    max_inodes: int = 32768
    num_groups: int = 16
    write_buffer_blocks: int = 64
    sync_metadata: bool = True
    double_inode_writes: bool = True
    readahead_blocks: int = 8
    cache_blocks: int = 3072
    write_clustering: bool = False


@dataclass
class FFSStats:
    """Operation and I/O-pattern counters."""

    creates: int = 0
    deletes: int = 0
    reads: int = 0
    writes: int = 0
    sync_metadata_writes: int = 0
    async_data_writes: int = 0
    ops: int = 0


class _DirState:
    """In-memory image of one directory (same shape as the LFS one)."""

    def __init__(self, blocks: list[list[tuple[str, int]]]) -> None:
        self.blocks = blocks
        self.index: dict[str, tuple[int, int]] = {}
        for block_idx, entries in enumerate(blocks):
            for name, inum in entries:
                if inum != 0:
                    self.index[name] = (inum, block_idx)

    def lookup(self, name: str) -> int | None:
        hit = self.index.get(name)
        return hit[0] if hit else None

    def names(self) -> list[str]:
        return sorted(self.index.keys())

    def __len__(self) -> int:
        return len(self.index)


class FFS:
    """A Unix FFS-style file system on a simulated disk."""

    def __init__(self, disk: Disk, config: FFSConfig | None = None) -> None:
        self.disk = disk
        self.config = config if config is not None else FFSConfig()
        if self.config.block_size != disk.geometry.block_size:
            raise InvalidOperationError(
                f"config block size {self.config.block_size} != disk block size "
                f"{disk.geometry.block_size}"
            )
        self.layout: FFSLayout = compute_ffs_layout(
            self.config.block_size,
            disk.geometry.num_blocks,
            max_inodes=self.config.max_inodes,
            num_groups=self.config.num_groups,
        )
        self.allocator = BitmapAllocator(self.layout)
        self.inode_alloc = InodeAllocator(self.layout.max_inodes, self.layout.num_groups)
        self.cache = BlockCache(self.config.cache_blocks)
        self.stats = FFSStats()
        # Optional observability hook (repro.obs.Observation); None = off.
        self.obs = None
        self._inodes: dict[int, Inode] = {}
        self._filemaps: dict[int, FileMap] = {}
        self._dir_states: dict[int, _DirState] = {}
        self._dirty_data: set[tuple[int, int]] = set()
        self._last_read: dict[int, int] = {}  # inum -> last fbn (read-ahead)

    # ==================================================================
    # lifecycle

    @classmethod
    def format(cls, disk: Disk, config: FFSConfig | None = None, *, obs=None) -> "FFS":
        """mkfs: create a fresh FFS with an empty root directory.

        ``obs`` (a :class:`repro.obs.Observation`) is attached before the
        first write so the trace covers the whole session.
        """
        fs = cls(disk, config)
        if obs is not None:
            obs.attach(fs)
        now = disk.clock.now
        root = Inode(inum=ROOT_INUM, ftype=FileType.DIRECTORY, mtime=now, ctime=now)
        fs._inodes[ROOT_INUM] = root
        fs.inode_alloc.mark_used(ROOT_INUM)
        fs._dir_states[ROOT_INUM] = _DirState([])
        fs._write_inode_sync(root)
        return fs

    # ==================================================================
    # low-level I/O patterns

    def _write_inode_sync(self, inode: Inode, *, twice: bool = False) -> None:
        """Synchronously write the table block holding ``inode``."""
        block_addr, _ = self.layout.inode_addr(inode.inum)
        payload = self._pack_inode_table_block(block_addr)
        repeats = 2 if (twice and self.config.double_inode_writes) else 1
        for _ in range(repeats):
            self.disk.write_block(block_addr, payload, force_latency=True)
            self.stats.sync_metadata_writes += 1

    def _pack_inode_table_block(self, block_addr: int) -> bytes:
        """Serialize every in-memory inode living in one table block.

        Table block ``k`` of group ``g`` holds inodes
        ``(k * inodes_per_block + slot) * num_groups + g``.
        """
        lay = self.layout
        group = (block_addr - 1) // lay.group_blocks
        k = block_addr - lay.group_start(group)
        first_slot = k * lay.inodes_per_block
        present = []
        for slot in range(first_slot, first_slot + lay.inodes_per_block):
            inum = slot * lay.num_groups + group
            if inum in self._inodes:
                present.append(self._inodes[inum])
        return pack_inode_block(present, self.config.block_size)

    def _write_dir_block_sync(self, dir_inum: int, block_idx: int, state: _DirState) -> None:
        """Synchronously write one directory data block."""
        fmap = self._filemap(dir_inum)
        addr = fmap.get(block_idx)
        if addr == NULL_ADDR:
            inode = self._inodes[dir_inum]
            goal = self.layout.group_data_start(self.layout.group_for_inode(dir_inum))
            addr = self.allocator.allocate_near(goal)
            fmap.set(block_idx, addr)
            needed = (block_idx + 1) * self.config.block_size
            if inode.size < needed:
                inode.size = needed
        payload = dirfmt.pack_block(
            [e for e in state.blocks[block_idx] if e[1] != 0], self.config.block_size
        )
        self.disk.write_block(addr, payload, force_latency=True)
        self.stats.sync_metadata_writes += 1
        self.cache.insert_clean(dir_inum, block_idx, payload, self.disk.clock.now)

    def _filemap(self, inum: int) -> FileMap:
        fmap = self._filemaps.get(inum)
        if fmap is None:
            inode = self._get_inode(inum)
            fmap = FileMap(
                inode,
                self.config.block_size,
                lambda addr: self.disk.read_block(addr),
                lambda: None,
            )
            self._filemaps[inum] = fmap
        return fmap

    def _get_inode(self, inum: int) -> Inode:
        inode = self._inodes.get(inum)
        if inode is None:
            raise FileNotFoundLFSError(f"inode {inum} is not allocated")
        return inode

    # ==================================================================
    # path resolution and directories (mirrors the LFS facade)

    @staticmethod
    def _split_path(path: str) -> list[str]:
        if not path.startswith("/"):
            raise InvalidOperationError(f"path {path!r} must be absolute")
        return [part for part in path.split("/") if part]

    def _resolve(self, path: str) -> int:
        inum = ROOT_INUM
        for part in self._split_path(path):
            inode = self._get_inode(inum)
            if not inode.is_directory:
                raise NotADirectoryError_(f"{part!r} looked up under a non-directory")
            child = self._dir_state(inum).lookup(part)
            if child is None:
                raise FileNotFoundLFSError(f"path {path!r}: component {part!r} not found")
            inum = child
        return inum

    def _resolve_parent(self, path: str) -> tuple[int, str]:
        parts = self._split_path(path)
        if not parts:
            raise InvalidOperationError("the root directory has no parent")
        parent = self._resolve("/" + "/".join(parts[:-1]))
        if not self._get_inode(parent).is_directory:
            raise NotADirectoryError_(f"parent of {path!r} is not a directory")
        return parent, parts[-1]

    def _dir_state(self, inum: int) -> _DirState:
        state = self._dir_states.get(inum)
        if state is not None:
            return state
        inode = self._get_inode(inum)
        blocks = []
        for fbn in range(inode.nblocks(self.config.block_size)):
            blocks.append(dirfmt.parse_block(self._read_data_block(inum, fbn)))
        state = _DirState(blocks)
        self._dir_states[inum] = state
        return state

    def exists(self, path: str) -> bool:
        """True if ``path`` names a file or directory."""
        try:
            self._resolve(path)
            return True
        except (FileNotFoundLFSError, NotADirectoryError_):
            return False

    # ==================================================================
    # operations

    def create(self, path: str, *, ftype: FileType = FileType.REGULAR) -> int:
        """Create a file: the paper's five-synchronous-I/O pattern."""
        parent, name = self._resolve_parent(path)
        dirfmt.validate_name(name)
        state = self._dir_state(parent)
        if state.lookup(name) is not None:
            raise FileExistsLFSError(f"{path!r} already exists")
        inum = self.inode_alloc.allocate(self.layout.group_for_inode(parent))
        now = self.disk.clock.now
        inode = Inode(inum=inum, ftype=ftype, mtime=now, ctime=now)
        self._inodes[inum] = inode
        if ftype == FileType.DIRECTORY:
            self._dir_states[inum] = _DirState([])

        # directory entry
        target = None
        for idx, entries in enumerate(state.blocks):
            if dirfmt.block_has_room(entries, name, self.config.block_size):
                target = idx
                break
        if target is None:
            state.blocks.append([])
            target = len(state.blocks) - 1
        state.blocks[target].append((name, inum))
        state.index[name] = (inum, target)

        parent_inode = self._get_inode(parent)
        parent_inode.mtime = now
        if self.config.sync_metadata:
            self._write_inode_sync(inode, twice=True)  # new file's inode, twice
            self._write_dir_block_sync(parent, target, state)  # directory data
            self._write_inode_sync(parent_inode)  # directory's inode
        self.stats.creates += 1
        self.stats.ops += 1
        return inum

    def mkdir(self, path: str) -> int:
        """Create a directory."""
        return self.create(path, ftype=FileType.DIRECTORY)

    def write(self, path: str, data: bytes, offset: int = 0) -> None:
        """Write data at an offset (buffered, asynchronous per-block I/O)."""
        self.write_inum(self._resolve(path), data, offset)

    def write_inum(self, inum: int, data: bytes, offset: int = 0) -> None:
        """Write by inode number."""
        if offset < 0:
            raise InvalidOperationError("negative offset")
        inode = self._get_inode(inum)
        if inode.is_directory:
            raise IsADirectoryError_(f"inode {inum} is a directory")
        if not data:
            return
        bs = self.config.block_size
        now = self.disk.clock.now
        end = offset + len(data)
        pos = offset
        while pos < end:
            fbn = pos // bs
            block_off = pos % bs
            take = min(bs - block_off, end - pos)
            if take == bs:
                payload = bytes(data[pos - offset : pos - offset + bs])
            else:
                base = bytearray(self._read_data_block(inum, fbn))
                base[block_off : block_off + take] = data[pos - offset : pos - offset + take]
                payload = bytes(base)
            self.cache.write(inum, fbn, payload, now)
            self._dirty_data.add((inum, fbn))
            pos += take
        if end > inode.size:
            inode.size = end
        inode.mtime = now
        self.stats.writes += 1
        self.stats.ops += 1
        if len(self._dirty_data) >= self.config.write_buffer_blocks:
            self._flush_data()

    def write_file(self, path: str, data: bytes) -> int:
        """Create (or truncate) and write a whole file."""
        if self.exists(path):
            inum = self._resolve(path)
            self.truncate(path, 0)
        else:
            inum = self.create(path)
        self.write_inum(inum, data)
        return inum

    def _flush_data(self) -> None:
        """Push dirty data blocks out, one disk operation per block."""
        by_addr: list[tuple[int, int, int]] = []
        # Allocate in file order so sequential files get contiguous blocks.
        for inum, fbn in sorted(self._dirty_data):
            fmap = self._filemap(inum)
            addr = fmap.get(fbn)
            if addr == NULL_ADDR:
                addr = self._allocate_data_block(inum, fbn, fmap)
            by_addr.append((addr, inum, fbn))
        touched = set()
        ordered = sorted(by_addr, key=lambda t: (t[1], t[2]))
        if self.config.write_clustering:
            # extent-style clustering: stream each contiguous run
            run_start = 0
            while run_start < len(ordered):
                run_end = run_start + 1
                while (
                    run_end < len(ordered)
                    and ordered[run_end][0] == ordered[run_end - 1][0] + 1
                ):
                    run_end += 1
                run = ordered[run_start:run_end]
                payloads = []
                for addr, inum, fbn in run:
                    entry = self.cache.lookup(inum, fbn)
                    payloads.append(entry.payload if entry else bytes(self.config.block_size))
                    self.cache.mark_clean(inum, fbn)
                    touched.add(inum)
                self.disk.write_blocks(run[0][0], payloads)
                self.stats.async_data_writes += len(run)
                run_start = run_end
        else:
            # the paper's SunOS 4.0.3: one disk operation per block
            for addr, inum, fbn in ordered:
                entry = self.cache.lookup(inum, fbn)
                if entry is None:
                    continue
                self.disk.write_block(addr, entry.payload, force_latency=True)
                self.stats.async_data_writes += 1
                self.cache.mark_clean(inum, fbn)
                touched.add(inum)
        self._dirty_data.clear()
        # indirect blocks and inodes of the files just written follow
        for inum in sorted(touched):
            fmap = self._filemaps.get(inum)
            if fmap is not None:
                self._flush_indirect(inum, fmap)

    def _allocate_data_block(self, inum: int, fbn: int, fmap: FileMap) -> int:
        """Place a new block near the file's previous block (locality)."""
        if fbn > 0:
            prev = fmap.get(fbn - 1)
            goal = prev + 1 if prev != NULL_ADDR else 0
        else:
            goal = 0
        if not goal:
            goal = self.layout.group_data_start(self.layout.group_for_inode(inum))
        addr = self.allocator.allocate_near(goal)
        fmap.set(fbn, addr)
        return addr

    def _flush_indirect(self, inum: int, fmap: FileMap) -> None:
        """Write dirty indirect blocks in place, allocating on first use."""
        inode = self._inodes.get(inum)
        if inode is None:
            return
        goal = self.layout.group_data_start(self.layout.group_for_inode(inum))
        if fmap.dirty_children:
            l2 = fmap._load_l2()
            for child_idx in sorted(fmap.dirty_children):
                addr = l2[child_idx]
                if addr == NULL_ADDR:
                    addr = self.allocator.allocate_near(goal)
                    fmap.place_child(child_idx, addr)
                self.disk.write_block(addr, fmap.pack_child(child_idx), force_latency=True)
                self.stats.async_data_writes += 1
            fmap.dirty_children.clear()
        if fmap.l1_dirty:
            if inode.indirect == NULL_ADDR:
                fmap.place_l1(self.allocator.allocate_near(goal))
            self.disk.write_block(inode.indirect, fmap.pack_l1(), force_latency=True)
            self.stats.async_data_writes += 1
            fmap.l1_dirty = False
        if fmap.l2_dirty:
            if inode.dindirect == NULL_ADDR:
                fmap.place_l2(self.allocator.allocate_near(goal))
            self.disk.write_block(inode.dindirect, fmap.pack_l2(), force_latency=True)
            self.stats.async_data_writes += 1
            fmap.l2_dirty = False
        block_addr, _ = self.layout.inode_addr(inum)
        self.disk.write_block(
            block_addr, self._pack_inode_table_block(block_addr), force_latency=True
        )
        self.stats.async_data_writes += 1

    def _read_data_block(self, inum: int, fbn: int) -> bytes:
        entry = self.cache.lookup(inum, fbn)
        if entry is not None:
            return entry.payload
        fmap = self._filemap(inum)
        addr = fmap.get(fbn)
        if addr == NULL_ADDR:
            payload = bytes(self.config.block_size)
            self.cache.insert_clean(inum, fbn, payload)
            return payload
        # Read-ahead: when access looks sequential, stream a cluster.
        sequential = self._last_read.get(inum) == fbn - 1
        self._last_read[inum] = fbn
        if sequential and self.config.readahead_blocks > 1:
            inode = self._get_inode(inum)
            nblocks = inode.nblocks(self.config.block_size)
            run = [addr]
            next_fbn = fbn + 1
            while (
                len(run) < self.config.readahead_blocks
                and next_fbn < nblocks
                and fmap.get(next_fbn) == run[-1] + 1
                and not self.cache.contains(inum, next_fbn)
            ):
                run.append(fmap.get(next_fbn))
                next_fbn += 1
            payloads = self.disk.read_blocks(addr, len(run))
            for i, p in enumerate(payloads):
                self.cache.insert_clean(inum, fbn + i, p)
            return payloads[0]
        payload = self.disk.read_block(addr)
        self.cache.insert_clean(inum, fbn, payload)
        return payload

    def read(self, path: str, offset: int = 0, length: int | None = None) -> bytes:
        """Read bytes from a file."""
        return self.read_inum(self._resolve(path), offset, length)

    def read_inum(self, inum: int, offset: int = 0, length: int | None = None) -> bytes:
        """Read by inode number."""
        inode = self._get_inode(inum)
        if length is None:
            length = max(0, inode.size - offset)
        end = min(offset + length, inode.size)
        if end <= offset:
            return b""
        bs = self.config.block_size
        chunks = []
        pos = offset
        while pos < end:
            fbn = pos // bs
            block_off = pos % bs
            take = min(bs - block_off, end - pos)
            payload = self._read_data_block(inum, fbn)
            chunks.append(payload[block_off : block_off + take])
            pos += take
        self.stats.reads += 1
        self.stats.ops += 1
        return b"".join(chunks)

    def truncate(self, path: str, size: int = 0) -> None:
        """Shrink a file, freeing its blocks back to the bitmap."""
        inum = self._resolve(path)
        inode = self._get_inode(inum)
        if inode.is_directory:
            raise IsADirectoryError_(f"{path!r} is a directory")
        if size < 0 or size > inode.size:
            raise InvalidOperationError(f"cannot truncate to {size}")
        if size == inode.size:
            return
        bs = self.config.block_size
        first_dead = (size + bs - 1) // bs
        fmap = self._filemap(inum)
        for _, addr in fmap.clear_from(first_dead, inode.nblocks(bs)):
            self.allocator.free(addr)
        self.cache.drop_from(inum, first_dead)
        self._dirty_data = {(i, f) for (i, f) in self._dirty_data if i != inum or f < first_dead}
        inode.size = size
        inode.mtime = self.disk.clock.now
        if self.config.sync_metadata:
            self._write_inode_sync(inode)
        self.stats.ops += 1

    def _dir_insert_sync(self, parent: int, name: str, inum: int) -> None:
        """Add a directory entry with the synchronous write pattern."""
        state = self._dir_state(parent)
        target = None
        for idx, entries in enumerate(state.blocks):
            if dirfmt.block_has_room(entries, name, self.config.block_size):
                target = idx
                break
        if target is None:
            state.blocks.append([])
            target = len(state.blocks) - 1
        state.blocks[target].append((name, inum))
        state.index[name] = (inum, target)
        parent_inode = self._get_inode(parent)
        parent_inode.mtime = self.disk.clock.now
        if self.config.sync_metadata:
            self._write_dir_block_sync(parent, target, state)
            self._write_inode_sync(parent_inode)

    def _dir_remove_sync(self, parent: int, name: str) -> int:
        """Remove a directory entry with the synchronous write pattern."""
        state = self._dir_state(parent)
        hit = state.index.get(name)
        if hit is None:
            raise FileNotFoundLFSError(f"{name!r} not found")
        inum, block_idx = hit
        del state.index[name]
        state.blocks[block_idx] = [e for e in state.blocks[block_idx] if e[0] != name]
        if self.config.sync_metadata:
            self._write_dir_block_sync(parent, block_idx, state)
            self._write_inode_sync(self._get_inode(parent))
        return inum

    def _drop_inode(self, inum: int) -> None:
        """Free an inode and everything it owns (link count reached zero)."""
        inode = self._get_inode(inum)
        fmap = self._filemap(inum)
        for _, addr in fmap.all_block_addrs(inode.nblocks(self.config.block_size)):
            self.allocator.free(addr)
        self.cache.drop_file(inum)
        self._dirty_data = {(i, f) for (i, f) in self._dirty_data if i != inum}
        self._inodes.pop(inum, None)
        self._filemaps.pop(inum, None)
        self._dir_states.pop(inum, None)
        self.inode_alloc.free(inum)

    def unlink(self, path: str) -> None:
        """Remove a directory entry: synchronous metadata updates."""
        parent, name = self._resolve_parent(path)
        state = self._dir_state(parent)
        hit = state.index.get(name)
        if hit is None:
            raise FileNotFoundLFSError(f"{path!r} not found")
        inum, _ = hit
        inode = self._get_inode(inum)
        if inode.is_directory and len(self._dir_state(inum)):
            raise DirectoryNotEmptyError(f"{path!r} is not empty")
        self._dir_remove_sync(parent, name)
        inode.nlink -= 1
        if self.config.sync_metadata:
            self._write_inode_sync(inode)  # updated link count
        if inode.nlink <= 0:
            self._drop_inode(inum)
        self.stats.deletes += 1
        self.stats.ops += 1

    def link(self, existing: str, newpath: str) -> None:
        """Create a hard link to a regular file."""
        inum = self._resolve(existing)
        inode = self._get_inode(inum)
        if inode.is_directory:
            from repro.core.errors import IsADirectoryError_ as _IsDir

            raise _IsDir("cannot hard-link a directory")
        parent, name = self._resolve_parent(newpath)
        dirfmt.validate_name(name)
        if self._dir_state(parent).lookup(name) is not None:
            raise FileExistsLFSError(f"{newpath!r} already exists")
        self._dir_insert_sync(parent, name, inum)
        inode.nlink += 1
        if self.config.sync_metadata:
            self._write_inode_sync(inode)
        self.stats.ops += 1

    def rename(self, oldpath: str, newpath: str) -> None:
        """Move a file or directory (synchronous directory updates)."""
        old_parent, old_name = self._resolve_parent(oldpath)
        new_parent, new_name = self._resolve_parent(newpath)
        dirfmt.validate_name(new_name)
        inum = self._dir_state(old_parent).lookup(old_name)
        if inum is None:
            raise FileNotFoundLFSError(f"{oldpath!r} not found")
        displaced = self._dir_state(new_parent).lookup(new_name)
        if displaced == inum:
            return
        if displaced is not None:
            victim = self._get_inode(displaced)
            if victim.is_directory and len(self._dir_state(displaced)):
                raise DirectoryNotEmptyError(f"{newpath!r} is not empty")
            self._dir_remove_sync(new_parent, new_name)
            victim.nlink -= 1
            if victim.nlink <= 0:
                self._drop_inode(displaced)
        self._dir_remove_sync(old_parent, old_name)
        self._dir_insert_sync(new_parent, new_name, inum)
        self.stats.ops += 1

    def readdir(self, path: str) -> list[str]:
        """Names in a directory, sorted."""
        inum = self._resolve(path)
        if not self._get_inode(inum).is_directory:
            raise NotADirectoryError_(f"{path!r} is not a directory")
        return self._dir_state(inum).names()

    def stat(self, path: str):
        """Attributes of a file or directory (LFS-compatible shape)."""
        from repro.core.filesystem import StatResult

        inum = self._resolve(path)
        inode = self._get_inode(inum)
        return StatResult(
            inum=inum,
            ftype=inode.ftype,
            size=inode.size,
            nlink=inode.nlink,
            mtime=inode.mtime,
            version=0,
        )

    def sync(self) -> None:
        """Flush all buffered data."""
        if self._dirty_data:
            self._flush_data()

    def fsck(self) -> float:
        """The full-disk consistency scan the paper contrasts with LFS.

        Reads the entire inode table plus every indirect block of every
        allocated file to rebuild the block bitmap; returns the simulated
        seconds it took. "The system cannot determine where the last
        changes were made, so it must scan all of the metadata structures
        on disk."
        """
        start = self.disk.clock.now
        for group in range(self.layout.num_groups):
            self.disk.read_blocks(self.layout.group_start(group), self.layout.itab_blocks)
        for inum, inode in self._inodes.items():
            if inode.indirect != NULL_ADDR:
                self.disk.read_block(inode.indirect, force_latency=True)
            if inode.dindirect != NULL_ADDR:
                self.disk.read_block(inode.dindirect, force_latency=True)
        return self.disk.clock.now - start
