"""A Unix FFS-style baseline file system (the paper's comparison point).

This models the Berkeley Fast File System the way the paper characterizes
it: inodes live at fixed disk addresses grouped into cylinder groups, a
bitmap allocates data blocks near their inode for logical locality, file
data is written asynchronously, and metadata (directory blocks, directory
inodes, and new-file inodes — the latter written twice) is written
synchronously. Creating a small file therefore costs the paper's "at
least five separate disk I/Os, each preceded by a seek".
"""

from repro.ffs.allocator import BitmapAllocator
from repro.ffs.filesystem import FFS, FFSConfig
from repro.ffs.layout import FFSLayout, compute_ffs_layout

__all__ = [
    "FFS",
    "BitmapAllocator",
    "FFSConfig",
    "FFSLayout",
    "compute_ffs_layout",
]
