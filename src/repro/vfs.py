"""A file-handle layer over either file system.

The core `LFS`/`FFS` APIs are whole-call (read/write by path or inode).
``FileSystemView`` adds the open/read/write/seek/close discipline real
applications use — what a fusepy front-end would sit on — and works over
any object exposing the shared facade (LFS and FFS both do).

Example::

    vfs = FileSystemView(fs)
    with vfs.open("/log.txt", "a") as fh:
        fh.write(b"appended line\\n")
    with vfs.open("/log.txt") as fh:
        fh.seek(-14, whence=2)
        print(fh.read())
"""

from __future__ import annotations

from repro.core.errors import FileNotFoundLFSError, InvalidOperationError


class FileHandle:
    """An open file with a position cursor.

    Modes: ``"r"`` (read only, must exist), ``"w"`` (truncate/create),
    ``"a"`` (append, create), ``"r+"`` (read/write, must exist). Handles
    are context managers; closing flushes nothing extra (the file system
    buffers durably on its own schedule) but invalidates the handle.
    """

    def __init__(self, vfs: "FileSystemView", path: str, mode: str) -> None:
        if mode not in ("r", "w", "a", "r+"):
            raise InvalidOperationError(f"unsupported mode {mode!r}")
        self._vfs = vfs
        self._fs = vfs.fs
        self.path = path
        self.mode = mode
        self._closed = False
        exists = self._fs.exists(path)
        if mode in ("r", "r+") and not exists:
            raise FileNotFoundLFSError(f"{path!r} does not exist")
        if mode == "w":
            if exists:
                self._fs.truncate(path, 0)
            else:
                self._fs.create(path)
        if mode == "a" and not exists:
            self._fs.create(path)
        self._inum = self._fs.stat(path).inum
        self._pos = self._size() if mode == "a" else 0

    # ------------------------------------------------------------------

    def _size(self) -> int:
        return self._fs.stat(self.path).size

    def _check_open(self) -> None:
        if self._closed:
            raise InvalidOperationError(f"I/O on closed handle for {self.path!r}")

    @property
    def closed(self) -> bool:
        return self._closed

    def tell(self) -> int:
        """Current position."""
        self._check_open()
        return self._pos

    def seek(self, offset: int, whence: int = 0) -> int:
        """Reposition: whence 0 = start, 1 = current, 2 = end."""
        self._check_open()
        if whence == 0:
            new = offset
        elif whence == 1:
            new = self._pos + offset
        elif whence == 2:
            new = self._size() + offset
        else:
            raise InvalidOperationError(f"bad whence {whence}")
        if new < 0:
            raise InvalidOperationError("negative seek position")
        self._pos = new
        return new

    def read(self, size: int | None = None) -> bytes:
        """Read up to ``size`` bytes (default: to EOF) from the cursor."""
        self._check_open()
        if self.mode in ("w", "a"):
            raise InvalidOperationError(f"handle opened {self.mode!r} cannot read")
        data = self._fs.read_inum(self._inum, self._pos, size)
        self._pos += len(data)
        return data

    def write(self, data: bytes) -> int:
        """Write ``data`` at the cursor; returns bytes written."""
        self._check_open()
        if self.mode == "r":
            raise InvalidOperationError("handle is read-only")
        if self.mode == "a":
            self._pos = self._size()
        self._fs.write_inum(self._inum, data, self._pos)
        self._pos += len(data)
        return len(data)

    def truncate(self, size: int | None = None) -> int:
        """Truncate to ``size`` (default: the cursor)."""
        self._check_open()
        if self.mode == "r":
            raise InvalidOperationError("handle is read-only")
        target = self._pos if size is None else size
        self._fs.truncate(self.path, target)
        return target

    def flush(self) -> None:
        """Push buffered writes into the log (fsync-ish)."""
        self._check_open()
        if hasattr(self._fs, "sync"):
            self._fs.sync()

    def fsync(self) -> None:
        """Make this file's writes durable before returning.

        The per-handle commit point real applications use (mail servers,
        database WALs): on an LFS with NVM staging the acknowledgement
        may come from a staging-log append instead of a segment flush,
        but either way everything written through this handle up to now
        survives any later crash. Raises on a closed handle, same as any
        other I/O — fsync-after-close is a lifetime bug, not a no-op.
        """
        self._check_open()
        if hasattr(self._fs, "fsync"):
            self._fs.fsync(self.path)
        elif hasattr(self._fs, "sync"):
            self._fs.sync()

    def close(self) -> None:
        """Invalidate the handle; closing twice is a usage bug."""
        if self._closed:
            raise InvalidOperationError(
                f"handle for {self.path!r} is already closed"
            )
        self._closed = True
        self._vfs._handles.discard(self)

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc) -> None:
        if not self._closed:
            self.close()

    def __iter__(self):
        """Iterate lines, like a Python file object."""
        buffer = b""
        while True:
            chunk = self.read(4096)
            if not chunk:
                break
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                yield line + b"\n"
        if buffer:
            yield buffer


class FileSystemView:
    """Handle-oriented facade over an LFS or FFS instance."""

    def __init__(self, fs) -> None:
        self.fs = fs
        self._handles: set[FileHandle] = set()

    def open(self, path: str, mode: str = "r") -> FileHandle:
        """Open a file, creating it when the mode requires."""
        handle = FileHandle(self, path, mode)
        self._handles.add(handle)
        return handle

    def close_all(self) -> None:
        """Close every still-open handle this view produced."""
        for handle in list(self._handles):
            if not handle.closed:
                handle.close()

    # convenience passthroughs ------------------------------------------------

    def exists(self, path: str) -> bool:
        return self.fs.exists(path)

    def listdir(self, path: str = "/") -> list[str]:
        return self.fs.readdir(path)

    def remove(self, path: str) -> None:
        self.fs.unlink(path)

    def mkdir(self, path: str) -> None:
        self.fs.mkdir(path)

    def rename(self, old: str, new: str) -> None:
        self.fs.rename(old, new)
