"""Tests for configuration and disk layout computation."""

import pytest

from repro.core.config import CleaningPolicy, LFSConfig, compute_layout


class TestLFSConfig:
    def test_defaults_match_paper(self):
        cfg = LFSConfig()
        assert cfg.block_size == 4096
        assert cfg.segment_bytes == 512 * 1024
        assert cfg.cleaning_policy == CleaningPolicy.COST_BENEFIT
        assert cfg.checkpoint_interval == 30.0

    def test_segment_blocks(self):
        assert LFSConfig().segment_blocks == 128

    def test_rejects_unaligned_segment(self):
        with pytest.raises(ValueError):
            LFSConfig(segment_bytes=4096 * 3 + 1)

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            LFSConfig(block_size=1000)

    def test_rejects_inverted_watermarks(self):
        with pytest.raises(ValueError):
            LFSConfig(clean_low_water=10, clean_high_water=5)

    def test_rejects_tiny_segments(self):
        with pytest.raises(ValueError):
            LFSConfig(segment_bytes=4096 * 2)

    def test_imap_blocks(self):
        cfg = LFSConfig(max_inodes=1000)
        assert cfg.imap_entries_per_block == 128
        assert cfg.imap_blocks == 8

    def test_usage_entries_per_block(self):
        assert LFSConfig().seg_usage_entries_per_block == 4096 // 24


class TestLayout:
    def test_structure_order(self):
        cfg = LFSConfig(max_inodes=1024, segment_bytes=128 * 1024)
        layout = compute_layout(cfg, 8192)
        assert layout.checkpoint_a == 1
        assert layout.checkpoint_b == layout.checkpoint_a + layout.checkpoint_blocks
        assert layout.segment_area_start == layout.checkpoint_b + layout.checkpoint_blocks
        assert layout.num_segments >= 1

    def test_segments_fit_on_device(self):
        cfg = LFSConfig(max_inodes=1024, segment_bytes=128 * 1024)
        layout = compute_layout(cfg, 8192)
        last_end = layout.segment_start(layout.num_segments - 1) + cfg.segment_blocks
        assert last_end <= 8192

    def test_segment_addressing_roundtrip(self):
        cfg = LFSConfig(max_inodes=1024, segment_bytes=128 * 1024)
        layout = compute_layout(cfg, 8192)
        for seg in (0, 1, layout.num_segments - 1):
            start = layout.segment_start(seg)
            assert layout.segment_of(start) == seg
            assert layout.segment_of(start + cfg.segment_blocks - 1) == seg

    def test_segment_of_rejects_fixed_area(self):
        cfg = LFSConfig(max_inodes=1024, segment_bytes=128 * 1024)
        layout = compute_layout(cfg, 8192)
        with pytest.raises(ValueError):
            layout.segment_of(0)

    def test_segment_start_rejects_out_of_range(self):
        cfg = LFSConfig(max_inodes=1024, segment_bytes=128 * 1024)
        layout = compute_layout(cfg, 8192)
        with pytest.raises(ValueError):
            layout.segment_start(layout.num_segments)

    def test_too_small_device_rejected(self):
        cfg = LFSConfig(max_inodes=1024, segment_bytes=512 * 1024)
        with pytest.raises(ValueError):
            compute_layout(cfg, 512)

    def test_checkpoint_region_scales_with_inodes(self):
        small = compute_layout(LFSConfig(max_inodes=1024, segment_bytes=128 * 1024), 65536)
        big = compute_layout(LFSConfig(max_inodes=500000, segment_bytes=128 * 1024), 65536)
        assert big.checkpoint_blocks > small.checkpoint_blocks
