"""Tests for the paper's proposed-but-untried extensions.

Section 4.1 proposes checkpointing by data volume; Section 3.4 proposes
reading only live blocks when cleaning nearly-empty segments. Both are
implemented behind config knobs that default to the paper's behavior.
"""

import pytest

from repro.core.config import LFSConfig
from repro.core.filesystem import LFS
from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry

from tests.conftest import small_config


class TestDataTriggeredCheckpoints:
    def test_checkpoint_fires_on_data_volume(self, disk):
        fs = LFS.format(disk, small_config(checkpoint_data_blocks=64))
        base = fs.stats.checkpoints
        for i in range(40):
            fs.write_file(f"/f{i}", b"d" * 12000)
        assert fs.stats.checkpoints > base

    def test_no_checkpoint_below_threshold(self, disk):
        fs = LFS.format(disk, small_config(checkpoint_data_blocks=100000))
        base = fs.stats.checkpoints
        fs.write_file("/one", b"tiny")
        fs.sync()
        assert fs.stats.checkpoints == base

    def test_idle_time_does_not_trigger_data_checkpoints(self, disk):
        fs = LFS.format(disk, small_config(checkpoint_data_blocks=64))
        base = fs.stats.checkpoints
        disk.clock.advance(10000.0)  # a long idle period
        fs.write_file("/one", b"x")
        assert fs.stats.checkpoints == base

    def test_bounds_recovery(self, disk):
        """Data-volume checkpoints bound how much roll-forward must scan."""
        cfg = small_config(checkpoint_data_blocks=64)
        fs = LFS.format(disk, cfg)
        for i in range(60):
            fs.write_file(f"/f{i}", b"r" * 12000)
        fs.sync()
        fs.crash()
        disk.power_on()
        fs2 = LFS.mount(disk, cfg)
        # only the tail since the last data-triggered checkpoint replays
        assert fs2.last_recovery.partial_writes_replayed < 10
        for i in range(60):
            assert fs2.read(f"/f{i}") == b"r" * 12000

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LFSConfig(checkpoint_data_blocks=-1)


class TestSelectiveCleaningReads:
    def _build_sparse_segments(self, fs):
        for cohort in range(20):
            for i in range(20):
                fs.write_file(f"/c{cohort}_{i}", b"s" * 8000)
            fs.sync()  # the cohort must reach the log before it dies
            for i in range(18):
                fs.unlink(f"/c{cohort}_{i}")

    def test_selective_reads_fewer_blocks(self):
        reads = {}
        for threshold in (0.0, 0.3):
            disk = Disk(DiskGeometry.wren4(num_blocks=8192))
            fs = LFS.format(disk, small_config(selective_read_utilization=threshold))
            self._build_sparse_segments(fs)
            base = fs.cleaner.stats.blocks_read
            fs.clean_now(fs.usage.clean_count + 10)
            reads[threshold] = fs.cleaner.stats.blocks_read - base
        assert reads[0.3] < reads[0.0]

    def test_selective_cleaning_preserves_data(self):
        disk = Disk(DiskGeometry.wren4(num_blocks=8192))
        fs = LFS.format(disk, small_config(selective_read_utilization=0.5))
        self._build_sparse_segments(fs)
        survivors = {
            f"/c{cohort}_{i}": b"s" * 8000
            for cohort in range(20)
            for i in range(18, 20)
        }
        fs.clean_now(fs.usage.clean_count + 10)
        assert fs.cleaner.stats.selective_segments > 0
        for path, payload in survivors.items():
            assert fs.read(path) == payload

    def test_selective_survives_crash(self):
        disk = Disk(DiskGeometry.wren4(num_blocks=8192))
        cfg = small_config(selective_read_utilization=0.5)
        fs = LFS.format(disk, cfg)
        self._build_sparse_segments(fs)
        fs.clean_now(fs.usage.clean_count + 10)
        fs.crash()
        disk.power_on()
        fs2 = LFS.mount(disk, cfg)
        for cohort in range(20):
            for i in range(18, 20):
                assert fs2.read(f"/c{cohort}_{i}") == b"s" * 8000

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LFSConfig(selective_read_utilization=1.5)
