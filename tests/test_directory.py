"""Tests for the directory block format."""

import pytest

from repro.core import directory as d
from repro.core.errors import CorruptionError, InvalidOperationError


class TestNames:
    def test_validate_ok(self):
        assert d.validate_name("hello.txt") == b"hello.txt"

    @pytest.mark.parametrize("bad", ["", ".", "..", "a/b", "a\0b"])
    def test_validate_rejects(self, bad):
        with pytest.raises(InvalidOperationError):
            d.validate_name(bad)

    def test_too_long_rejected(self):
        with pytest.raises(InvalidOperationError):
            d.validate_name("x" * 256)

    def test_utf8_names(self):
        assert d.validate_name("日本語") == "日本語".encode("utf-8")

    def test_entry_size_counts_encoded_bytes(self):
        assert d.entry_size("ab") == 10 + 2
        assert d.entry_size("é") == 10 + 2


class TestPackParse:
    def test_roundtrip(self):
        entries = [("a", 1), ("bb", 2), ("ccc", 3)]
        payload = d.pack_block(entries, 4096)
        assert d.parse_block(payload) == entries

    def test_block_is_padded(self):
        assert len(d.pack_block([("x", 1)], 4096)) == 4096

    def test_empty_block(self):
        assert d.parse_block(d.pack_block([], 4096)) == []

    def test_overflow_rejected(self):
        entries = [(f"name{i:04}", i) for i in range(400)]
        with pytest.raises(InvalidOperationError):
            d.pack_block(entries, 4096)

    def test_unicode_roundtrip(self):
        entries = [("ファイル", 9)]
        assert d.parse_block(d.pack_block(entries, 4096)) == entries

    def test_corrupt_overrun_raises(self):
        import struct

        raw = struct.pack("<QH", 1, 500) + b"short"
        with pytest.raises(CorruptionError):
            d.parse_block(raw)

    def test_parse_stops_at_zero_namelen(self):
        payload = d.pack_block([("a", 1)], 4096)
        assert len(d.parse_block(payload)) == 1


class TestRoomAccounting:
    def test_block_has_room(self):
        entries = [("a", 1)]
        assert d.block_has_room(entries, "b", 4096)

    def test_block_full(self):
        entries = [(f"n{i:06}", i) for i in range(200)]
        used = d.block_used_bytes(entries)
        free = 4096 - used
        long_name = "x" * (free + 1)
        # the long name cannot fit even though short ones can
        assert not d.block_has_room(entries, long_name[:250], 4096) or free > 260

    def test_used_bytes(self):
        assert d.block_used_bytes([("ab", 1), ("c", 2)]) == (10 + 2) + (10 + 1)
