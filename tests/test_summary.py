"""Tests for segment summary blocks."""

import pytest

from repro.core.constants import BlockKind
from repro.core.errors import CorruptionError, InvalidOperationError
from repro.core.summary import (
    SegmentSummary,
    SummaryEntry,
    summary_capacity,
    try_parse_summary,
)


def make_summary(n=3, seq=10):
    entries = [SummaryEntry(kind=BlockKind.DATA, inum=i + 1, offset=i, version=2) for i in range(n)]
    return SegmentSummary(seq=seq, write_time=1.0, youngest_mtime=0.5, entries=entries,
                          next_segment=7)


class TestPackUnpack:
    def test_roundtrip(self):
        s = make_summary()
        payloads = [b"a" * 4096, b"b" * 4096, b"c" * 4096]
        raw = s.pack(payloads, 4096)
        got = SegmentSummary.unpack(raw, 4096)
        assert got.seq == 10
        assert got.next_segment == 7
        assert got.youngest_mtime == 0.5
        assert [e.inum for e in got.entries] == [1, 2, 3]
        assert got.verify(payloads)

    def test_crc_detects_payload_change(self):
        s = make_summary(1)
        raw = s.pack([b"a" * 4096], 4096)
        got = SegmentSummary.unpack(raw, 4096)
        assert not got.verify([b"b" * 4096])

    def test_crc_detects_missing_payload(self):
        s = make_summary(2)
        raw = s.pack([b"a" * 4096, b"b" * 4096], 4096)
        got = SegmentSummary.unpack(raw, 4096)
        assert not got.verify([b"a" * 4096])

    def test_mismatched_entry_count_rejected(self):
        with pytest.raises(InvalidOperationError):
            make_summary(2).pack([b"a"], 4096)

    def test_capacity_enforced(self):
        cap = summary_capacity(4096)
        s = make_summary(cap + 1)
        with pytest.raises(InvalidOperationError):
            s.pack([b"x"] * (cap + 1), 4096)

    def test_bad_magic_rejected(self):
        raw = bytearray(make_summary().pack([b"", b"", b""], 4096))
        raw[0] = 0
        with pytest.raises(CorruptionError):
            SegmentSummary.unpack(bytes(raw), 4096)

    def test_bad_kind_rejected(self):
        s = make_summary(1)
        raw = bytearray(s.pack([b""], 4096))
        raw[48] = 200  # first entry's kind byte
        with pytest.raises(CorruptionError):
            SegmentSummary.unpack(bytes(raw), 4096)

    def test_zero_entries(self):
        s = SegmentSummary(seq=1, write_time=0.0)
        raw = s.pack([], 4096)
        got = SegmentSummary.unpack(raw, 4096)
        assert got.entries == []

    def test_capacity_value(self):
        assert summary_capacity(4096) == (4096 - 48) // 32
        assert summary_capacity(1024) == (1024 - 48) // 32


class TestTryParse:
    def test_garbage_returns_none(self):
        assert try_parse_summary(b"\x00" * 4096, 4096) is None

    def test_valid_parses(self):
        raw = make_summary(1).pack([b"x" * 4096], 4096)
        assert try_parse_summary(raw, 4096) is not None

    def test_random_data_block_rarely_parses(self):
        # a data block full of text must not look like a summary
        assert try_parse_summary(b"hello world " * 341, 4096) is None
