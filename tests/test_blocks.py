"""Tests for low-level serialization helpers."""

import pytest

from repro.core.blocks import (
    checksum,
    pack_addr_list,
    pack_addrs,
    require,
    unpack_addr_list,
    unpack_addrs,
)
from repro.core.errors import CorruptionError


class TestAddrPacking:
    def test_roundtrip(self):
        addrs = [1, 2, 3, 0xFFFFFFFFFFFF]
        payload = pack_addrs(addrs, 4096)
        assert unpack_addrs(payload, 4) == addrs

    def test_payload_is_block_sized(self):
        assert len(pack_addrs([1], 4096)) == 4096

    def test_too_many_addrs_rejected(self):
        with pytest.raises(ValueError):
            pack_addrs(list(range(513)), 4096)

    def test_unpack_truncated_raises(self):
        with pytest.raises(CorruptionError):
            unpack_addrs(b"\0" * 8, 2)

    def test_unpack_zero_count(self):
        assert unpack_addrs(b"", 0) == []

    def test_list_spans_blocks(self):
        addrs = list(range(1000))
        blocks = pack_addr_list(addrs, 4096)
        assert len(blocks) == 2
        assert unpack_addr_list(blocks, 1000, 4096) == addrs

    def test_empty_list_gives_one_block(self):
        blocks = pack_addr_list([], 4096)
        assert len(blocks) == 1
        assert unpack_addr_list(blocks, 0, 4096) == []

    def test_unpack_list_truncated_raises(self):
        blocks = pack_addr_list(list(range(10)), 4096)
        with pytest.raises(CorruptionError):
            unpack_addr_list(blocks[:0], 10, 4096)


class TestChecksum:
    def test_deterministic(self):
        assert checksum([b"abc", b"def"]) == checksum([b"abc", b"def"])

    def test_order_sensitive(self):
        assert checksum([b"abc", b"def"]) != checksum([b"def", b"abc"])

    def test_detects_corruption(self):
        assert checksum([b"abcd"]) != checksum([b"abce"])

    def test_empty(self):
        assert checksum([]) == 0


class TestRequire:
    def test_passes(self):
        require(True, "nope")

    def test_raises(self):
        with pytest.raises(CorruptionError, match="boom"):
            require(False, "boom")
