"""Tests for the segment usage table."""

import pytest

from repro.core.errors import InvalidOperationError
from repro.core.seg_usage import SegmentUsageTable


@pytest.fixture
def table():
    return SegmentUsageTable(num_segments=32, segment_bytes=128 * 1024, entries_per_block=170)


class TestAccounting:
    def test_add_and_remove(self, table):
        table.add_live(3, 4096, when=1.0)
        table.add_live(3, 4096, when=2.0)
        table.remove_live(3, 4096)
        assert table.get(3).live_bytes == 4096
        assert table.get(3).last_write == 2.0

    def test_remove_never_negative(self, table):
        table.add_live(1, 100, when=0.0)
        table.remove_live(1, 5000)
        assert table.get(1).live_bytes == 0

    def test_add_marks_in_log(self, table):
        table.add_live(2, 1, when=0.0)
        assert not table.get(2).clean

    def test_last_write_monotonic(self, table):
        table.add_live(4, 1, when=5.0)
        table.add_live(4, 1, when=3.0)
        assert table.get(4).last_write == 5.0

    def test_utilization(self, table):
        table.add_live(0, 64 * 1024, when=0.0)
        assert table.utilization(0) == pytest.approx(0.5)

    def test_out_of_range(self, table):
        with pytest.raises(InvalidOperationError):
            table.get(32)


class TestCleanliness:
    def test_initially_all_clean(self, table):
        assert table.clean_count == 32

    def test_mark_in_use_and_clean(self, table):
        table.mark_in_use(5)
        assert table.clean_count == 31
        assert 5 in table.dirty_segments()
        table.mark_clean(5)
        assert table.clean_count == 32

    def test_mark_clean_zeroes_live(self, table):
        table.add_live(5, 999, when=0.0)
        table.mark_clean(5)
        assert table.get(5).live_bytes == 0

    def test_clean_segments_sorted(self, table):
        table.mark_in_use(0)
        table.mark_in_use(7)
        clean = table.clean_segments()
        assert clean == sorted(clean)
        assert 0 not in clean and 7 not in clean

    def test_total_live_bytes(self, table):
        table.add_live(0, 100, when=0.0)
        table.add_live(9, 200, when=0.0)
        assert table.total_live_bytes() == 300


class TestHistogram:
    def test_histogram_counts_dirty_only(self, table):
        table.add_live(0, 128 * 1024, when=0.0)  # u = 1.0
        table.add_live(1, 64 * 1024, when=0.0)  # u = 0.5
        hist = table.utilization_histogram(bins=4)
        assert sum(hist) == 2
        assert hist[3] == 1  # the full one
        assert hist[2] == 1  # the half one

    def test_histogram_rejects_bad_bins(self, table):
        with pytest.raises(InvalidOperationError):
            table.utilization_histogram(bins=0)


class TestSerialization:
    def test_roundtrip(self, table):
        table.add_live(3, 12345, when=9.0)
        payload = table.pack_block(0, 4096)
        other = SegmentUsageTable(32, 128 * 1024, 170)
        other.load_block(0, payload)
        assert other.get(3).live_bytes == 12345
        assert other.get(3).last_write == 9.0
        assert not other.get(3).clean

    def test_load_marks_empty_clean(self, table):
        table.mark_in_use(3)  # dirty but empty
        payload = table.pack_block(0, 4096)
        other = SegmentUsageTable(32, 128 * 1024, 170)
        other.load_block(0, payload)
        assert other.get(3).clean

    def test_dirty_tracking(self, table):
        table.add_live(0, 1, when=0.0)
        assert table.dirty_block_indexes() == [0]
        table.clear_dirty(0)
        assert table.dirty_block_indexes() == []
