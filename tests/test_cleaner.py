"""Tests for the segment cleaner: mechanism, policies, and safety."""

import pytest

from repro.core.config import CleaningPolicy
from repro.core.constants import NULL_ADDR
from repro.core.filesystem import LFS
from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry

from tests.conftest import small_config


def churn_fs(policy=CleaningPolicy.COST_BENEFIT, num_blocks=4096, rounds=8, nfiles=80):
    """Build a small FS and churn it until cleaning has happened."""
    disk = Disk(DiskGeometry.wren4(num_blocks=num_blocks))
    fs = LFS.format(disk, small_config(cleaning_policy=policy))
    data = {}
    for r in range(rounds):
        for i in range(nfiles):
            path = f"/f{i}"
            payload = bytes([(r * 13 + i) % 256]) * 9000
            fs.write_file(path, payload)
            data[path] = payload
        for i in range(0, nfiles, 4):
            p = f"/f{i}"
            if fs.exists(p):
                fs.unlink(p)
                data.pop(p, None)
    return fs, data


class TestCleaningPreservesData:
    @pytest.mark.parametrize("policy", [CleaningPolicy.GREEDY, CleaningPolicy.COST_BENEFIT])
    def test_no_data_lost(self, policy):
        fs, data = churn_fs(policy=policy, rounds=10)
        fs.clean_now()
        for path, payload in data.items():
            assert fs.read(path) == payload, path

    def test_cleaning_actually_ran(self):
        fs, _ = churn_fs(rounds=12)
        fs.clean_now(fs.usage.clean_count + 2)
        assert fs.cleaner.stats.segments_cleaned > 0

    def test_cleaned_segments_become_clean(self, fs):
        for i in range(60):
            fs.write_file(f"/f{i}", b"z" * 8000)
        for i in range(60):
            fs.unlink(f"/f{i}")
        fs.checkpoint()
        before = fs.usage.clean_count
        fs.clean_now(before + 4)
        assert fs.usage.clean_count > before

    def test_empty_segments_cleaned_without_reading(self, fs):
        """Segments with u = 0 'need not be read at all' (Section 3.4)."""
        for i in range(60):
            fs.write_file(f"/f{i}", b"z" * 8000)
        fs.checkpoint()
        for i in range(60):
            fs.unlink(f"/f{i}")
        fs.checkpoint()
        reads_before = fs.cleaner.stats.blocks_read
        fs.clean_now(fs.usage.clean_count + 3)
        stats = fs.cleaner.stats
        assert stats.empty_segments_cleaned > 0
        assert stats.blocks_read == reads_before  # empties were free


class TestPolicySelection:
    def test_greedy_picks_least_utilized(self, fs):
        fs.config.cleaning_policy = CleaningPolicy.GREEDY
        # build three segments with different utilizations
        for i in range(90):
            fs.write_file(f"/f{i}", b"q" * 8000)
        fs.checkpoint()
        for i in range(0, 90, 2):
            fs.unlink(f"/f{i}")
        fs.checkpoint()
        victims = fs.cleaner.select_segments(3)
        utils = [fs.usage.utilization(v) for v in victims]
        all_utils = sorted(
            fs.usage.utilization(s)
            for s in fs.usage.dirty_segments()
            if s not in (fs.writer.current_segment, fs.writer.next_segment)
        )
        assert utils[0] == pytest.approx(all_utils[0])

    def test_cost_benefit_prefers_old_cold_over_young_equal_u(self, fs):
        """At equal utilization, the older segment has higher benefit."""
        fs.config.cleaning_policy = CleaningPolicy.COST_BENEFIT
        for i in range(40):
            fs.write_file(f"/old{i}", b"o" * 8000)
        fs.checkpoint()
        fs.disk.clock.advance(10000.0)
        for i in range(40):
            fs.write_file(f"/new{i}", b"n" * 8000)
        fs.checkpoint()
        # kill half of each population so both cohorts have dead space
        for i in range(0, 40, 2):
            fs.unlink(f"/old{i}")
            fs.unlink(f"/new{i}")
        fs.checkpoint()
        ranked = fs.cleaner.select_segments(100)
        ages = [fs.disk.clock.now - fs.usage.get(s).last_write for s in ranked]
        # the first-ranked candidates skew old
        assert ages[0] >= max(ages) * 0.5

    def test_selection_excludes_log_head(self, fs):
        fs.write_file("/f", b"x" * 50000)
        victims = fs.cleaner.select_segments(100)
        assert fs.writer.current_segment not in victims
        assert fs.writer.next_segment not in victims


class TestVersionFastPath:
    def test_deleted_file_blocks_discarded_without_inode_read(self, fs):
        """The uid (version) check discards dead blocks immediately."""
        for i in range(40):
            fs.write_file(f"/f{i}", b"v" * 8000)
        fs.checkpoint()
        for i in range(40):
            fs.unlink(f"/f{i}")
        fs.checkpoint()
        moved_before = fs.cleaner.stats.live_blocks_moved
        fs.clean_now(fs.usage.clean_count + 2)
        # nothing live in those segments: nothing may be moved
        assert fs.cleaner.stats.live_blocks_moved == moved_before


class TestWriteCostAccounting:
    def test_write_cost_at_least_one(self, fs):
        fs.write_file("/f", b"x" * 20000)
        fs.sync()
        assert fs.write_cost >= 1.0

    def test_cleaning_increases_write_cost(self):
        fs, _ = churn_fs(rounds=12)
        if fs.cleaner.stats.live_blocks_moved > 0:
            assert fs.write_cost > 1.0

    def test_utilization_tracks_live_data(self, fs):
        fs.write_file("/f", b"x" * 409600)
        fs.sync()
        assert 0.0 < fs.disk_capacity_utilization < 1.0
