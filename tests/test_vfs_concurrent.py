"""VFS hardening: concurrent handles, close discipline, sparse writes.

The server front-end keeps many handles alive against the same
namespace, so the handle layer must behave like a real kernel's file
table: two handles on one path see each other's writes, double-close is
a caught bug rather than a silent no-op, and writing past EOF zero-fills
the hole.
"""

import pytest

from repro.core.errors import InvalidOperationError
from repro.core.filesystem import LFS
from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry
from repro.vfs import FileSystemView

from tests.conftest import small_config


@pytest.fixture
def vfs():
    disk = Disk(DiskGeometry.wren4(num_blocks=4096))
    return FileSystemView(LFS.format(disk, small_config()))


class TestConcurrentHandles:
    def test_two_handles_same_path_see_writes(self, vfs):
        with vfs.open("/f", "w") as fh:
            fh.write(b"0123456789")
        writer = vfs.open("/f", "r+")
        reader = vfs.open("/f", "r")
        writer.write(b"XXXX")
        assert reader.read() == b"XXXX456789"
        writer.close()
        reader.close()

    def test_reader_sees_append_growth(self, vfs):
        with vfs.open("/f", "w") as fh:
            fh.write(b"base")
        reader = vfs.open("/f", "r")
        appender = vfs.open("/f", "a")
        assert reader.read() == b"base"
        appender.write(b"+more")
        # the reader's cursor sits at the old EOF; new bytes are visible
        assert reader.read() == b"+more"
        reader.close()
        appender.close()

    def test_size_coherent_across_handles(self, vfs):
        a = vfs.open("/f", "w")
        b = vfs.open("/f", "a")
        a.write(b"x" * 100)
        b.write(b"y")  # append mode re-seeks to live EOF
        a.close()
        b.close()
        with vfs.open("/f") as fh:
            data = fh.read()
        assert len(data) == 101
        assert data == b"x" * 100 + b"y"

    def test_interleaved_writers_last_wins_per_byte(self, vfs):
        with vfs.open("/f", "w") as fh:
            fh.write(b"." * 8)
        h1 = vfs.open("/f", "r+")
        h2 = vfs.open("/f", "r+")
        h1.write(b"AAAA")
        h2.seek(2)
        h2.write(b"BB")
        h1.close()
        h2.close()
        with vfs.open("/f") as fh:
            assert fh.read() == b"AABB...."

    def test_close_one_handle_leaves_other_usable(self, vfs):
        a = vfs.open("/f", "w")
        b = vfs.open("/f", "a")
        a.close()
        assert b.write(b"still open") == 10
        b.close()


class TestCloseDiscipline:
    def test_double_close_raises(self, vfs):
        fh = vfs.open("/f", "w")
        fh.close()
        with pytest.raises(InvalidOperationError):
            fh.close()

    def test_context_manager_then_close_raises(self, vfs):
        with vfs.open("/f", "w") as fh:
            fh.write(b"x")
        with pytest.raises(InvalidOperationError):
            fh.close()

    def test_explicit_close_inside_with_block_ok(self, vfs):
        # __exit__ must not double-close a handle the body already closed
        with vfs.open("/f", "w") as fh:
            fh.write(b"x")
            fh.close()
        assert fh.closed

    def test_close_all_skips_closed_handles(self, vfs):
        handles = [vfs.open(f"/h{i}", "w") for i in range(3)]
        handles[1].close()
        vfs.close_all()  # must not raise on the already-closed handle
        assert all(h.closed for h in handles)


class TestSparseWrites:
    def test_seek_past_eof_write_zero_fills(self, vfs):
        with vfs.open("/f", "w") as fh:
            fh.write(b"head")
            fh.seek(100)
            fh.write(b"tail")
        with vfs.open("/f") as fh:
            data = fh.read()
        assert len(data) == 104
        assert data[:4] == b"head"
        assert data[4:100] == bytes(96)
        assert data[100:] == b"tail"

    def test_hole_spanning_whole_blocks_reads_zero(self, vfs):
        bs = vfs.fs.config.block_size
        with vfs.open("/f", "w") as fh:
            fh.seek(3 * bs + 7)
            fh.write(b"z")
        with vfs.open("/f") as fh:
            data = fh.read()
        assert len(data) == 3 * bs + 8
        assert data[: 3 * bs + 7] == bytes(3 * bs + 7)
        assert data[-1:] == b"z"

    def test_sparse_file_survives_sync(self, vfs):
        with vfs.open("/f", "w") as fh:
            fh.seek(5000)
            fh.write(b"end")
        vfs.fs.sync()
        with vfs.open("/f") as fh:
            data = fh.read()
        assert data == bytes(5000) + b"end"
