"""Systematic crash-point sweep, verified by the offline checker.

The strongest recovery property the design claims: cutting power after
*any* number of durable block writes must leave a disk image that mounts,
rolls forward, and passes every lfsck invariant — no matter where in a
flush, checkpoint, or cleaning pass the cut lands. This sweep exercises
dozens of distinct cut points across a busy trace.
"""

import random

import pytest

from repro.core.filesystem import LFS
from repro.disk.device import Disk
from repro.disk.faults import DiskCrashed
from repro.disk.geometry import DiskGeometry
from repro.tools.lfsck import check_filesystem

from tests.conftest import small_config


def busy_trace(fs, rng, steps=120):
    """A trace mixing creates, overwrites, deletes, renames, and links."""
    names = [f"/t{i}" for i in range(16)]
    alive = set()
    for step in range(steps):
        op = rng.choice(["write", "write", "write", "delete", "rename", "link", "mkdir"])
        name = rng.choice(names)
        try:
            if op == "write":
                fs.write_file(name, bytes([step % 256]) * rng.randrange(200, 9000))
                alive.add(name)
            elif op == "delete" and name in alive:
                fs.unlink(name)
                alive.discard(name)
            elif op == "rename" and name in alive:
                dst = rng.choice(names)
                if dst not in alive:
                    fs.rename(name, dst)
                    alive.discard(name)
                    alive.add(dst)
            elif op == "link" and name in alive:
                dst = rng.choice(names)
                if dst not in alive:
                    fs.link(name, dst)
                    alive.add(dst)
            elif op == "mkdir":
                d = f"/dir{step}"
                fs.mkdir(d)
        except DiskCrashed:
            raise
        except Exception:
            pass  # name collisions etc. are irrelevant here


def run_to_crash(cut_after: int, seed: int) -> Disk:
    """Run the trace until the disk dies after ``cut_after`` writes."""
    disk = Disk(DiskGeometry.wren4(num_blocks=4096))
    fs = LFS.format(disk, small_config(checkpoint_interval=15.0))
    rng = random.Random(seed)
    disk.crash(after_writes=cut_after)
    try:
        busy_trace(fs, rng)
        fs.checkpoint()  # if the budget outlasted the trace, cut here
        while True:
            fs.write_file("/filler", b"f" * 8000)
            fs.checkpoint()
    except DiskCrashed:
        pass
    fs.crash()
    disk.power_on()
    return disk


@pytest.mark.parametrize("cut_after", [1, 3, 7, 15, 40, 90, 170, 333, 512, 777, 1200])
def test_any_crash_point_leaves_consistent_image(cut_after):
    disk = run_to_crash(cut_after, seed=cut_after)
    fs = LFS.mount(disk, small_config())
    # the namespace must be fully traversable
    def walk(path):
        for name in fs.readdir(path):
            child = (path.rstrip("/") + "/" + name)
            st = fs.stat(child)
            if st.is_directory:
                walk(child)
            else:
                fs.read(child)
    walk("/")
    # persist recovery's fix-ups, then every lfsck invariant must hold
    fs.unmount()
    report = check_filesystem(disk)
    assert report.ok, f"cut after {cut_after} writes:\n{report.render()}"


@pytest.mark.parametrize("seed", [11, 22, 33])
def test_double_crash_during_recovery(seed):
    """Crash again while the *recovery checkpoint* is being written."""
    disk = run_to_crash(400, seed=seed)
    disk.crash(after_writes=5)  # recovery's own writes get cut short
    try:
        LFS.mount(disk, small_config())
    except DiskCrashed:
        pass
    disk.power_on()
    fs = LFS.mount(disk, small_config())
    fs.unmount()
    report = check_filesystem(disk)
    assert report.ok, report.render()
