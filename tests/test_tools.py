"""Tests for the offline checker (lfsck) and the log inspector."""

import pytest

from repro.core.filesystem import LFS
from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry
from repro.tools.dumplog import dump_checkpoints, dump_segment, dump_superblock
from repro.tools.lfsck import check_filesystem

from tests.conftest import small_config


@pytest.fixture
def populated(disk):
    fs = LFS.format(disk, small_config())
    fs.mkdir("/d")
    fs.write_file("/d/a", b"alpha" * 1000)
    fs.write_file("/d/b", b"beta" * 4000)
    fs.write_file("/top", b"top")
    fs.link("/top", "/d/top-link")
    fs.checkpoint()
    return fs


class TestLfsckClean:
    def test_fresh_filesystem_clean(self, disk):
        fs = LFS.format(disk, small_config())
        fs.checkpoint()
        report = check_filesystem(disk)
        assert report.ok, report.render()

    def test_populated_filesystem_clean(self, populated):
        report = check_filesystem(populated.disk)
        assert report.ok, report.render()
        assert report.live_inodes == 5  # root, /d, a, b, top
        assert report.live_blocks > 4

    def test_after_churn_and_cleaning(self, disk):
        fs = LFS.format(disk, small_config())
        for r in range(8):
            for i in range(50):
                fs.write_file(f"/f{i}", bytes([r + i & 0xFF]) * 9000)
            for i in range(0, 50, 3):
                if fs.exists(f"/f{i}"):
                    fs.unlink(f"/f{i}")
        fs.clean_now(fs.usage.clean_count + 3)
        fs.checkpoint()
        report = check_filesystem(disk)
        assert report.ok, report.render()

    def test_after_crash_recovery(self, populated):
        disk = populated.disk
        populated.write_file("/d/late", b"post checkpoint")
        populated.sync()
        populated.crash()
        disk.power_on()
        LFS.mount(disk, small_config())
        report = check_filesystem(disk)
        assert report.ok, report.render()

    def test_check_does_not_advance_time(self, populated):
        t = populated.disk.clock.now
        check_filesystem(populated.disk)
        assert populated.disk.clock.now == t


class TestLfsckDetectsCorruption:
    def test_blank_disk(self):
        disk = Disk(DiskGeometry.wren4(num_blocks=4096))
        report = check_filesystem(disk)
        assert not report.ok

    def test_clobbered_superblock(self, populated):
        disk = populated.disk
        disk.corrupt_block(0, bytes(4096))
        report = check_filesystem(disk)
        assert not report.ok
        assert any("superblock" in e for e in report.errors)

    def test_clobbered_inode_block(self, populated):
        disk = populated.disk
        inum = populated.stat("/d/a").inum
        addr = populated.imap.get(inum).addr
        disk.corrupt_block(addr, bytes(4096))
        report = check_filesystem(disk)
        assert not report.ok

    def test_clobbered_both_checkpoints(self, populated):
        disk = populated.disk
        layout = populated.layout
        for start in (layout.checkpoint_a, layout.checkpoint_b):
            for i in range(layout.checkpoint_blocks):
                disk.corrupt_block(start + i, bytes(4096))
        report = check_filesystem(disk)
        assert not report.ok
        assert any("checkpoint" in e for e in report.errors)


class TestDumplog:
    def test_superblock_dump(self, populated):
        out = dump_superblock(populated.disk)
        assert "segment size" in out
        assert str(populated.config.segment_bytes) in out

    def test_checkpoint_dump(self, populated):
        out = dump_checkpoints(populated.disk)
        assert "checkpoint A" in out and "checkpoint B" in out
        assert "seq=" in out

    def test_segment_dump_shows_summaries(self, populated):
        seg = populated.writer.current_segment
        out = dump_segment(populated.disk, 0)
        assert "summary seq=" in out or "no valid summaries" in out
        # the very first segment holds the mkfs writes
        assert "segment 0" in out

    def test_segment_dump_out_of_range(self, populated):
        assert "out of range" in dump_segment(populated.disk, 10 ** 6)

    def test_dump_is_time_free(self, populated):
        t = populated.disk.clock.now
        dump_superblock(populated.disk)
        dump_checkpoints(populated.disk)
        dump_segment(populated.disk, 0)
        assert populated.disk.clock.now == t
