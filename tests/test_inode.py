"""Tests for inode serialization and inode-block packing."""

import pytest

from repro.core.constants import INODE_SIZE, NULL_ADDR, NUM_DIRECT, FileType
from repro.core.errors import CorruptionError, InvalidOperationError
from repro.core.inode import (
    Inode,
    addrs_per_indirect,
    inodes_per_block,
    max_file_blocks,
    pack_inode_block,
    unpack_inode_block,
)


def make_inode(**kw):
    defaults = dict(inum=7, version=3, ftype=FileType.REGULAR, nlink=2, size=12345,
                    mtime=1.5, ctime=0.5)
    defaults.update(kw)
    return Inode(**defaults)


class TestInodeSerialization:
    def test_roundtrip(self):
        ino = make_inode(direct=[10 + i for i in range(NUM_DIRECT)], indirect=99, dindirect=100)
        got = Inode.from_bytes(ino.to_bytes())
        assert got == ino

    def test_record_size_fixed(self):
        assert len(make_inode().to_bytes()) == INODE_SIZE

    def test_bad_file_type_raises(self):
        raw = bytearray(make_inode().to_bytes())
        raw[16] = 99  # ftype byte
        with pytest.raises(CorruptionError):
            Inode.from_bytes(bytes(raw))

    def test_truncated_raises(self):
        with pytest.raises(CorruptionError):
            Inode.from_bytes(b"\x01" * 10)

    def test_invalid_inum_rejected(self):
        with pytest.raises(InvalidOperationError):
            Inode(inum=0)

    def test_wrong_direct_count_rejected(self):
        with pytest.raises(InvalidOperationError):
            Inode(inum=1, direct=[0, 0])

    def test_copy_is_deep(self):
        ino = make_inode()
        dup = ino.copy()
        dup.direct[0] = 42
        assert ino.direct[0] == NULL_ADDR

    def test_nblocks(self):
        assert make_inode(size=0).nblocks(4096) == 0
        assert make_inode(size=1).nblocks(4096) == 1
        assert make_inode(size=4096).nblocks(4096) == 1
        assert make_inode(size=4097).nblocks(4096) == 2

    def test_is_directory(self):
        assert make_inode(ftype=FileType.DIRECTORY).is_directory
        assert not make_inode().is_directory


class TestInodeBlockPacking:
    def test_roundtrip_multiple(self):
        inodes = [make_inode(inum=i) for i in range(1, 6)]
        payload = pack_inode_block(inodes, 4096)
        got = unpack_inode_block(payload, 4096)
        assert [i.inum for i in got] == [1, 2, 3, 4, 5]

    def test_capacity(self):
        assert inodes_per_block(4096) == 4096 // INODE_SIZE

    def test_overfull_block_rejected(self):
        too_many = [make_inode(inum=i) for i in range(1, inodes_per_block(4096) + 2)]
        with pytest.raises(InvalidOperationError):
            pack_inode_block(too_many, 4096)

    def test_empty_block(self):
        assert unpack_inode_block(pack_inode_block([], 4096), 4096) == []

    def test_zero_slot_terminates(self):
        payload = pack_inode_block([make_inode(inum=3)], 4096)
        got = unpack_inode_block(payload, 4096)
        assert len(got) == 1


class TestGeometryHelpers:
    def test_addrs_per_indirect(self):
        assert addrs_per_indirect(4096) == 512

    def test_max_file_blocks(self):
        assert max_file_blocks(4096) == NUM_DIRECT + 512 + 512 * 512
