"""End-to-end integration scenarios crossing multiple subsystems."""

import random

import pytest

from repro.core.config import CleaningPolicy
from repro.core.filesystem import LFS
from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry

from tests.conftest import small_config


class TestLongLivedFilesystem:
    def test_sustained_churn_with_periodic_crashes(self):
        """Months-of-use analogue: churn, clean, crash, recover, repeat."""
        disk = Disk(DiskGeometry.wren4(num_blocks=8192))
        cfg = small_config(checkpoint_interval=20.0)
        fs = LFS.format(disk, cfg)
        rng = random.Random(77)
        model: dict[str, bytes] = {}
        for era in range(4):
            for _ in range(150):
                name = f"/e{rng.randrange(40)}"
                if rng.random() < 0.3 and name in model:
                    fs.unlink(name)
                    del model[name]
                else:
                    payload = bytes([rng.randrange(256)]) * rng.randrange(500, 15000)
                    fs.write_file(name, payload)
                    model[name] = payload
            fs.sync()
            fs.crash()
            disk.power_on()
            fs = LFS.mount(disk, cfg)
            for name, payload in model.items():
                assert fs.read(name) == payload, (era, name)
        assert fs.cleaner.stats.segments_cleaned >= 0  # survived throughout

    def test_fill_then_free_then_reuse(self):
        """Write to near capacity, delete most, and write again."""
        disk = Disk(DiskGeometry.wren4(num_blocks=8192))
        fs = LFS.format(disk, small_config())
        big = b"F" * 60000
        count = 0
        # fill to ~70%
        while fs.disk_capacity_utilization < 0.70:
            fs.write_file(f"/fill{count}", big)
            count += 1
        for i in range(0, count, 2):
            fs.unlink(f"/fill{i}")
        # second generation reuses cleaned space
        for i in range(count // 2):
            fs.write_file(f"/gen2_{i}", big)
        for i in range(count // 2):
            assert fs.read(f"/gen2_{i}") == big
        for i in range(1, count, 2):
            assert fs.read(f"/fill{i}") == big

    def test_greedy_policy_end_to_end(self):
        disk = Disk(DiskGeometry.wren4(num_blocks=8192))
        fs = LFS.format(disk, small_config(cleaning_policy=CleaningPolicy.GREEDY))
        payloads = {}
        for r in range(12):
            for i in range(70):
                payloads[f"/g{i}"] = bytes([r * 3 + i & 0xFF]) * 8000
                fs.write_file(f"/g{i}", payloads[f"/g{i}"])
        for path, want in payloads.items():
            assert fs.read(path) == want

    def test_deep_tree_survives_remount(self):
        disk = Disk(DiskGeometry.wren4(num_blocks=8192))
        cfg = small_config()
        fs = LFS.format(disk, cfg)
        path = ""
        for depth in range(12):
            path += f"/d{depth}"
            fs.mkdir(path)
        fs.write_file(path + "/leaf", b"deep")
        fs.unmount()
        fs2 = LFS.mount(disk, cfg)
        assert fs2.read(path + "/leaf") == b"deep"
        # directory chain intact at every level
        probe = ""
        for depth in range(12):
            probe += f"/d{depth}"
            assert fs2.exists(probe)

    def test_simulated_time_only_advances_with_work(self):
        disk = Disk(DiskGeometry.wren4(num_blocks=4096))
        fs = LFS.format(disk, small_config())
        t0 = disk.clock.now
        fs.exists("/nothing")  # resolves from memory: no disk traffic
        assert disk.clock.now == t0
        fs.write_file("/f", b"x" * 200000)
        fs.sync()
        assert disk.clock.now > t0


class TestTwoSystemsSameWorkload:
    def test_lfs_and_ffs_agree_on_contents(self):
        """Both file systems, same operations, identical observable state."""
        from repro.ffs.filesystem import FFS, FFSConfig

        lfs_disk = Disk(DiskGeometry.wren4(num_blocks=8192))
        lfs = LFS.format(lfs_disk, small_config())
        ffs_disk = Disk(DiskGeometry.wren4(block_size=8192, num_blocks=4096))
        ffs = FFS.format(ffs_disk, FFSConfig(max_inodes=2048))

        rng = random.Random(5)
        model = {}
        for step in range(120):
            op = rng.choice(["write", "write", "delete", "truncate"])
            name = f"/x{rng.randrange(25)}"
            if op == "write":
                payload = bytes([step % 256]) * rng.randrange(100, 30000)
                lfs.write_file(name, payload)
                ffs.write_file(name, payload)
                model[name] = payload
            elif op == "delete" and name in model:
                lfs.unlink(name)
                ffs.unlink(name)
                del model[name]
            elif op == "truncate" and name in model:
                keep = rng.randrange(len(model[name]) + 1)
                lfs.truncate(name, keep)
                ffs.truncate(name, keep)
                model[name] = model[name][:keep]
        for name, want in model.items():
            assert lfs.read(name) == want
            assert ffs.read(name) == want
        assert lfs.readdir("/") == ffs.readdir("/")
