"""Tests for the Andrew-benchmark workload."""

import pytest

from repro.workloads.andrew import TREE, run_andrew


class TestAndrew:
    @pytest.fixture(scope="class")
    def results(self):
        return {"lfs": run_andrew("lfs"), "ffs": run_andrew("ffs")}

    def test_all_phases_timed(self, results):
        for r in results.values():
            assert set(r.phase_times) == {"MakeDir", "Copy", "ScanDir", "ReadAll", "Make"}
            assert all(t >= 0 for t in r.phase_times.values())
            assert r.total == pytest.approx(sum(r.phase_times.values()), rel=0.01)

    def test_modest_overall_speedup(self, results):
        """Paper: 'only 20% faster' — far from Figure 8's 10x."""
        speedup = results["ffs"].total / results["lfs"].total
        assert 1.05 < speedup < 2.5

    def test_cpu_bound_on_lfs(self, results):
        assert results["lfs"].cpu_utilization > 0.8

    def test_speedup_lives_in_metadata_phases(self, results):
        """Copy (synchronous creates on FFS) shows the big win; the
        CPU-bound Make phase shows almost none."""
        lfs, ffs = results["lfs"], results["ffs"]
        copy_speedup = ffs.phase_times["Copy"] / lfs.phase_times["Copy"]
        make_speedup = ffs.phase_times["Make"] / lfs.phase_times["Make"]
        assert copy_speedup > 2.0
        assert make_speedup < 1.3

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            run_andrew("zfs")

    def test_tree_definition_sane(self):
        assert sum(count for count, _ in TREE) > 20
